"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 660
editable installs fail; this setup.py lets ``pip install -e .`` take the
legacy ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Pegasus/CASH reproduction: memory optimizations for spatial computation"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.__main__:main",
            "repro-telemetry = repro.__main__:telemetry_main",
            "repro-sweep = repro.orchestrate.sweeps:sweep_main",
            "repro-serve = repro.service.cli:serve_main",
            "repro-submit = repro.service.cli:submit_main",
        ],
    },
)
