"""Figure 19: speedup per optimization set and memory system.

Paper shapes asserted here:

- optimized spatial execution is at least as fast as unoptimized
  everywhere, and strictly faster somewhere on every memory system;
- the Medium set captures most of the benefit (its mean speedup is a large
  fraction of the full set's — pipelining dominates redundancy removal);
- performance improves (or holds) with more LSQ ports for the optimized
  configurations.
"""

import statistics

import pytest

from repro.harness.fig19 import LEVELS, figure19, render
from repro.sim.memsys import (
    PERFECT_MEMORY, REALISTIC_1PORT, REALISTIC_2PORT, REALISTIC_4PORT,
)

from conftest import record, record_json

KERNELS = ("adpcm_e", "adpcm_d", "ijpeg", "jpeg_d", "li", "mesa", "mpeg2_d",
           "vortex")


@pytest.fixture(scope="module")
def rows():
    return figure19(kernels=KERNELS)


def test_fig19_speedups(benchmark, rows):
    benchmark.pedantic(
        lambda: figure19(kernels=("li",), memory_systems=(REALISTIC_2PORT,)),
        rounds=1, iterations=1,
    )
    record("fig19_speedup", render(kernels=KERNELS))
    record_json("fig19_speedup", [
        {
            "kernel": row.name,
            "memsys": row.memsys,
            "baseline_cycles": row.baseline_cycles,
            "cycles": dict(row.cycles),
            "speedups": {level: round(row.speedup(level), 3)
                         for level in LEVELS},
        }
        for row in rows
    ])

    for row in rows:
        for level in LEVELS:
            assert row.speedup(level) > 0.65, (
                f"{row.name}/{row.memsys}/{level} slowed down badly"
            )
    assert any(row.speedup("full") > 1.5 for row in rows)

    # Medium captures most of the benefit (paper §7.3).
    medium_gain = statistics.geometric_mean(
        max(row.speedup("medium"), 0.01) for row in rows
    )
    full_gain = statistics.geometric_mean(
        max(row.speedup("full"), 0.01) for row in rows
    )
    assert medium_gain > 1.0
    assert medium_gain > 0.6 * full_gain


def test_fig19_bandwidth_shape(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Grouping by kernel: the optimized configuration must not get slower
    # when the LSQ gains ports.
    by_kernel = {}
    for row in rows:
        by_kernel.setdefault(row.name, {})[row.memsys] = row
    for name, group in by_kernel.items():
        one = group.get("realistic-1port")
        four = group.get("realistic-4port")
        if one and four:
            assert four.cycles["full"] <= one.cycles["full"] * 1.05, (
                f"{name}: more ports must not hurt"
            )
