"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, asserts its
qualitative shape, benchmarks a representative operation, and records the
rendered rows under ``benchmarks/results/`` (they are also printed, visible
with ``pytest -s`` / in the captured-output section on failure).

Unless the caller already chose a cache location, harness compilations
are shared through a persistent cache under ``benchmarks/.cache`` (see
:mod:`repro.pipeline.cache`), so rerunning any figure driver is
warm-cache cheap; delete the directory or set ``$REPRO_CACHE_DIR`` to
start cold.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = Path(__file__).parent / ".cache"


@pytest.fixture(scope="session", autouse=True)
def _benchmark_compile_cache():
    os.environ.setdefault("REPRO_CACHE_DIR", str(CACHE_DIR))
    yield


def record(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def record_json(name: str, payload) -> None:
    """Machine-readable sibling of :func:`record`.

    Writes ``benchmarks/results/<name>.json`` (sorted keys, trailing
    newline) so CI jobs and trend tooling can consume figures without
    scraping the rendered tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[JSON written to {path}]")
