"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, asserts its
qualitative shape, benchmarks a representative operation, and records the
rendered rows under ``benchmarks/results/`` (they are also printed, visible
with ``pytest -s`` / in the captured-output section on failure).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
