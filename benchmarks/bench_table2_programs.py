"""Table 2: statistics of the compiled programs.

Regenerates the per-benchmark rows (functions, lines, pragmas, dynamic
work) over the full suite and asserts the inventory matches the paper's
program list. Benchmarks whole-suite statistics collection.
"""

from repro.harness.table2 import render, table2
from repro.programs import all_kernels

from conftest import record, record_json


def test_table2_statistics(benchmark):
    rows = benchmark(table2, "all")
    record("table2_programs", render("all"))
    record_json("table2_programs", [
        {
            "kernel": row.name,
            "family": row.family,
            "functions": row.functions,
            "lines": row.lines,
            "pragmas": row.pragmas,
            "dynamic_instructions": row.dynamic_instructions,
            "coverage_percent": round(row.coverage_percent, 2),
        }
        for row in rows
    ])
    assert len(rows) == len(all_kernels()) == 22
    assert sum(r.pragmas for r in rows) >= 5, "suite must exercise pragmas"
    assert all(r.dynamic_instructions > 0 for r in rows)
    total_lines = sum(r.lines for r in rows)
    assert total_lines > 1500, "suite should be of kernel-suite scale"
