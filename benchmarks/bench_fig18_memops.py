"""Figure 18: static and dynamic memory operations removed.

Paper shape: up to ~28% of static loads and ~8% of static stores are
removed, with strong per-benchmark variation; dynamic memory references
drop for a subset of the programs and never increase.
"""

import pytest

from repro.harness.fig18 import figure18, render

from conftest import record, record_json


@pytest.fixture(scope="module")
def rows():
    return figure18()


def test_fig18_static_and_dynamic_reduction(benchmark, rows):
    benchmark.pedantic(lambda: figure18(kernels=("adpcm_e",)),
                       rounds=1, iterations=1)
    record("fig18_memops", render())
    record_json("fig18_memops", [
        {
            "kernel": row.name,
            "static_loads": [row.static_loads_before,
                             row.static_loads_after],
            "static_stores": [row.static_stores_before,
                              row.static_stores_after],
            "dynamic_memops": [row.dynamic_before, row.dynamic_after],
            "static_loads_removed_pct":
                round(row.static_loads_removed_pct, 2),
            "static_stores_removed_pct":
                round(row.static_stores_removed_pct, 2),
            "dynamic_removed_pct": round(row.dynamic_removed_pct, 2),
        }
        for row in rows
    ])

    # Optimization never adds memory operations.
    for row in rows:
        assert row.static_loads_after <= row.static_loads_before
        assert row.static_stores_after <= row.static_stores_before
        assert row.dynamic_after <= row.dynamic_before

    # Some programs lose static loads; the effect varies per benchmark
    # (the paper's line graphs are far from flat).
    load_cuts = [row.static_loads_removed_pct for row in rows]
    assert max(load_cuts) > 0
    assert min(load_cuts) < max(load_cuts)

    # Dynamic traffic drops for a subset of the programs (§7.3: "the
    # compiler reduces the dynamic amount of memory references for some
    # of the programs").
    assert any(row.dynamic_after < row.dynamic_before for row in rows)
