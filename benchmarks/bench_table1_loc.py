"""Table 1: lines of code per optimization.

The paper's observation: in a representation that exposes dependences
explicitly, each memory optimization is tiny (tens to a few hundred lines).
We regenerate the table against our module sizes and assert the shape —
every pass stays within small multiples of the paper's size.
"""

from repro.harness.loc import render, table1

from conftest import record, record_json


def test_table1_loc(benchmark):
    rows = benchmark(table1)
    record("table1_loc", render())
    record_json("table1_loc", [
        {
            "optimization": row.optimization,
            "paper_loc": row.paper_loc,
            "our_loc": row.our_loc,
            "modules": list(row.modules),
        }
        for row in rows
    ])
    for row in rows:
        assert row.our_loc > 0
        # Python with docstrings vs C++: allow up to ~4x the paper's count,
        # which still supports "each optimization is small".
        assert row.our_loc < max(4 * row.paper_loc, 450), (
            f"{row.optimization} ballooned to {row.our_loc} lines"
        )
