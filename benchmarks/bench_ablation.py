"""§7.3 ablation: per-optimization contribution and composition.

Asserts the paper's qualitative findings on a representative subset:

- the combined pipeline is at least as good as any single optimization;
- loop decoupling applies rarely (few classes across the suite);
- optimizations compose (for at least one benchmark, the full pipeline
  beats every individual optimization).
"""

import pytest

from repro.harness.ablation import _variants, ablate, render

from conftest import record, record_json

KERNELS = ("adpcm_e", "jpeg_d", "li", "mesa", "vortex")


@pytest.fixture(scope="module")
def rows():
    return ablate(kernels=KERNELS)


def test_ablation_composition(benchmark, rows):
    benchmark.pedantic(lambda: ablate(kernels=("li",)), rounds=1,
                       iterations=1)
    record("ablation", render(kernels=KERNELS))
    record_json("ablation", [
        {
            "kernel": row.name,
            "baseline_cycles": row.baseline_cycles,
            "variant_cycles": dict(row.cycles),
            "full_cycles": row.full_cycles,
            "full_speedup": round(row.full_speedup, 3),
            "applicability": dict(row.applicability),
        }
        for row in rows
    ])

    variants = list(_variants())
    for row in rows:
        best_single = max(row.speedup(v) for v in variants)
        assert row.full_speedup >= best_single * 0.9, (
            f"{row.name}: combined pipeline lost to a single pass"
        )
    assert any(
        row.full_speedup > max(row.speedup(v) for v in variants) + 0.05
        for row in rows
    ), "composition should beat every single optimization somewhere"


def test_ablation_decoupling_rarely_applicable(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Paper: "Loop Decoupling was applicable in only 28 loops from all the
    # programs" — across our subset it should fire seldom.
    applications = sum(row.applicability.get("decoupling.classes", 0)
                       for row in rows)
    assert applications <= 3


def test_ablation_readonly_rarely_profitable(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Paper: §6.1 "almost always not very profitable": the read-only-only
    # variant should rarely beat the monotone variant.
    wins = sum(
        1 for row in rows
        if row.speedup("readonly") > row.speedup("monotone") * 1.05
    )
    assert wins <= len(rows) // 2
