"""Service throughput: jobs/sec and latency percentiles under load.

Drives an in-process server (ephemeral port, private cache/telemetry)
with 1, 8, and 64 concurrent clients issuing warm-artifact simulation
jobs, then proves the dedup invariant at full concurrency: 64 identical
submissions cost exactly one compile execution, shown by RunRecord
provenance, with zero dropped and zero duplicated jobs.

A final ``/v1/metrics`` scrape must be Prometheus-parseable and its
request counter must equal the jobs the server says it received — the
live metrics path is exercised by the same load the bench measures.
"""

import shutil
import statistics
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.observe.metrics import parse_prometheus, sum_series
from repro.service.client import ServiceClient
from repro.service.server import CompileService, ServiceConfig

from conftest import record_json

SOURCE = """
int a[64];
int kernel(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 2; s = s + a[i]; }
    return s;
}
"""

# A distinct program for the dedup proof, so its provenance trail is
# not mixed with the throughput traffic.
DEDUP_SOURCE = SOURCE.replace("kernel", "dedup_kernel")

#: (clients, jobs) per load level.
LEVELS = ((1, 24), (8, 96), (64, 192))


@pytest.fixture(scope="module")
def service():
    tmp = Path(tempfile.mkdtemp(prefix="repro-svc-bench-"))
    config = ServiceConfig(
        port=0, name="svc-bench",
        cache_root=str(tmp / "cache"),
        telemetry_root=str(tmp / "telemetry"),
        drain_grace=15.0)
    svc = CompileService(config).start_in_thread()
    yield svc
    svc.stop(drain=True)
    shutil.rmtree(tmp, ignore_errors=True)


def run_level(service, clients: int, jobs: int) -> dict:
    """``jobs`` distinct warm-artifact simulations over ``clients``
    concurrent connections; returns throughput and latency stats."""
    latencies = []
    outcomes = []

    def one(index: int):
        n = index % 60 + 1
        client = ServiceClient(port=service.port,
                               client_id=f"bench-{clients}")
        started = time.perf_counter()
        outcome = client.simulate(SOURCE, "kernel", args=[n], wait=True)
        return time.perf_counter() - started, n, outcome

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        for latency, n, outcome in pool.map(one, range(jobs)):
            latencies.append(latency)
            outcomes.append((n, outcome))
    elapsed = time.perf_counter() - started

    # Zero dropped: every submission completed with the right answer.
    assert len(outcomes) == jobs
    for n, outcome in outcomes:
        assert outcome.value == n * (n - 1), (n, outcome.value)
    # Zero duplicated: every job kept its own request identity.
    request_ids = {outcome.request_id for _, outcome in outcomes}
    assert len(request_ids) == jobs

    centile = statistics.quantiles(latencies, n=100)
    return {
        "clients": clients,
        "jobs": jobs,
        "elapsed_s": round(elapsed, 4),
        "jobs_per_sec": round(jobs / elapsed, 2),
        "p50_ms": round(centile[49] * 1e3, 3),
        "p99_ms": round(centile[98] * 1e3, 3),
        "max_ms": round(max(latencies) * 1e3, 3),
    }


def test_service_throughput(benchmark, service):
    # Warm the artifact once so the levels measure service overhead +
    # simulation, not repeated compilation.
    warmup = ServiceClient(port=service.port, client_id="warmup")
    assert warmup.compile(SOURCE, "kernel").cache == "miss"

    levels = [run_level(service, clients, jobs)
              for clients, jobs in LEVELS]
    benchmark.pedantic(lambda: run_level(service, 1, 8),
                       rounds=1, iterations=1)

    # ------------------------------------------------------------------
    # Dedup proof at full concurrency: 64 identical submissions.
    clients = 64
    before = service.stats.compiles_executed

    def identical(i: int):
        client = ServiceClient(port=service.port, client_id=f"dup-{i}")
        return client.simulate(DEDUP_SOURCE, "dedup_kernel", args=[6],
                               wait=True)

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        outcomes = list(pool.map(identical, range(clients)))
    dedup_elapsed = time.perf_counter() - started

    assert len(outcomes) == clients
    assert {outcome.value for outcome in outcomes} == {30}
    assert len({outcome.request_id for outcome in outcomes}) == clients
    executed = service.stats.compiles_executed - before
    assert executed == 1, f"{executed} compiles for 64 identical jobs"

    # The provenance trail agrees with the counters: exactly one
    # cache_status="miss" record for the dedup kernel.
    records = service.session.records()
    misses = [record for record in records
              if record.kind == "compile" and record.entry == "dedup_kernel"
              and (record.compilation or {}).get("cache_status") == "miss"]
    assert len(misses) == 1
    answered_without_compile = [
        record for record in records
        if record.kind == "compile" and record.entry == "dedup_kernel"
        and (record.compilation or {}).get("cache_status")
        in ("deduped", "warm")]
    assert len(answered_without_compile) == clients - 1

    # ------------------------------------------------------------------
    # Live metrics under load: one scrape, standard exposition format,
    # and the request counter agrees with the server's own accounting.
    text, content_type = warmup.metrics()
    assert content_type.startswith("text/plain")
    assert "version=0.0.4" in content_type
    parsed = parse_prometheus(text)
    scraped_requests = sum_series(parsed, "repro_requests_total")
    assert scraped_requests == service.stats.received, \
        (scraped_requests, service.stats.received)
    assert parsed["repro_request_seconds_count"] == scraped_requests
    assert sum_series(parsed, "repro_requests_failed_total") == 0.0
    assert sum_series(parsed, "repro_requests_in_flight") == 0.0

    stats = service.stats.to_dict()
    payload = {
        "levels": levels,
        "dedup": {
            "clients": clients,
            "elapsed_s": round(dedup_elapsed, 4),
            "compiles_executed": executed,
            "miss_records": len(misses),
            "coalesced_records": len(answered_without_compile),
        },
        "server_stats": stats,
        "metrics_scrape": {
            "requests_total": scraped_requests,
            "request_seconds_count":
                parsed["repro_request_seconds_count"],
        },
    }
    record_json("service_throughput", payload)
    for level in levels:
        print(f"{level['clients']:3d} clients: "
              f"{level['jobs_per_sec']:8.1f} jobs/s  "
              f"p50 {level['p50_ms']:7.2f} ms  "
              f"p99 {level['p99_ms']:7.2f} ms")
    assert stats["failed"] == 0
    assert stats["rejected"] == 0
