"""Sweep orchestration: scheduler throughput, retries, and resume cost.

The orchestrator's pitch is that explicit DAGs make sweeps restartable
and parallel without making them slow. This bench puts numbers on that
over a ~200-cell synthetic sweep (cells do a small fixed amount of
arithmetic so scheduler bookkeeping is visible but not dominant):

- jobs/sec through the inline executor and through the process pool at
  1, 4, and all-core workers;
- retry accounting under injected first-attempt flakes (every 20th
  cell), which must converge with ``retries=1`` and count exactly the
  flaked cells;
- resume cost: replaying a fully-journaled sweep must be much cheaper
  than executing it (values come from the journal, not the cell fns).

Writes ``benchmarks/results/sweep_orchestration.{txt,json}``.
"""

from __future__ import annotations

import os
import time

from repro.orchestrate.dag import JobDAG
from repro.orchestrate.executors import make_executor
from repro.orchestrate.journal import Journal
from repro.orchestrate.scheduler import Scheduler
from repro.utils.tables import TextTable

from conftest import record, record_json

CELLS = 200
FLAKE_EVERY = 20  # every 20th cell fails its first attempt


def _cell(i, spin=400):
    total = 0
    for k in range(spin):
        total += (i * k) % 97
    return {"cell": i, "value": total}


def _flaky_cell(marker_dir, i):
    marker = os.path.join(marker_dir, f"attempted-{i}")
    if i % FLAKE_EVERY == 0 and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("first attempt")
        raise OSError(f"injected flake on cell {i}")
    return _cell(i)


def _gather(*, deps):
    return [row for row in deps if row is not None]


def _build(fn, *extra):
    dag = JobDAG("bench-sweep")
    for i in range(CELLS):
        dag.job(f"cell/{i}", fn, *extra, i, category="cell")
    dag.job("agg", _gather, deps=tuple(f"cell/{i}" for i in range(CELLS)),
            category="aggregate", tolerant=True, pass_deps=True,
            transient=True)
    return dag


def _timed_run(dag, **kwargs):
    journal = kwargs.pop("journal", None)
    executor = kwargs.pop("executor", None)
    started = time.perf_counter()
    sweep = Scheduler(dag, executor=executor, journal=journal,
                      **kwargs).run()
    elapsed = time.perf_counter() - started
    if executor is not None:
        executor.shutdown()
    return sweep, elapsed


def measure(tmp_root):
    results = {}

    # Throughput: inline, then the pool at increasing widths.
    configs = [("inline", None)]
    for workers in sorted({1, 4, os.cpu_count() or 1}):
        configs.append((f"process-{workers}", workers))
    throughput = []
    for label, workers in configs:
        executor = None if workers is None else \
            make_executor("process", max_workers=workers)
        sweep, elapsed = _timed_run(_build(_cell), executor=executor)
        assert sweep.ok, sweep.report()
        assert len(sweep.value("agg")) == CELLS
        throughput.append((label, CELLS / elapsed, elapsed))
    results["throughput"] = throughput

    # Retries: injected first-attempt flakes converge under retries=1.
    flake_dir = tmp_root / "flakes"
    flake_dir.mkdir(parents=True)
    sweep, elapsed = _timed_run(_build(_flaky_cell, str(flake_dir)),
                                retries=1)
    assert sweep.ok, sweep.report()
    expected_flakes = len(range(0, CELLS, FLAKE_EVERY))
    assert sweep.retries == expected_flakes, sweep.retries
    results["retry"] = {"flaked_cells": expected_flakes,
                        "retries": sweep.retries,
                        "elapsed_s": elapsed}

    # Resume: second scheduler over a complete journal replays values.
    journal_path = tmp_root / "journal"
    fresh_sweep, fresh = _timed_run(_build(_cell),
                                    journal=Journal(journal_path))
    assert fresh_sweep.ok
    resumed_sweep, resumed = _timed_run(_build(_cell),
                                        journal=Journal(journal_path))
    assert resumed_sweep.counts().get("resumed") == CELLS
    assert resumed_sweep.value("agg") == fresh_sweep.value("agg")
    results["resume"] = {"fresh_s": fresh, "resumed_s": resumed,
                         "speedup": fresh / resumed if resumed else 0.0}
    return results


def render(results) -> str:
    table = TextTable(
        ["Executor", "Jobs/sec", "Wall s"],
        title=f"Sweep orchestration: {CELLS}-cell synthetic sweep",
    )
    for label, rate, elapsed in results["throughput"]:
        table.add_row(label, f"{rate:.0f}", f"{elapsed:.2f}")
    retry = results["retry"]
    resume = results["resume"]
    lines = [
        table.render(),
        f"retries: {retry['retries']} injected flakes recovered "
        f"under retries=1 ({retry['elapsed_s']:.2f}s)",
        f"resume: fresh {resume['fresh_s']:.2f}s vs replay "
        f"{resume['resumed_s']:.2f}s ({resume['speedup']:.0f}x)",
    ]
    return "\n".join(lines)


def test_sweep_orchestration(tmp_path):
    results = measure(tmp_path)
    record("sweep_orchestration", render(results))
    record_json("sweep_orchestration", {
        "cells": CELLS,
        "throughput": [
            {"executor": label,
             "jobs_per_s": round(rate, 1),
             "wall_s": round(elapsed, 3)}
            for label, rate, elapsed in results["throughput"]
        ],
        "retry": {"flaked_cells": results["retry"]["flaked_cells"],
                  "retries": results["retry"]["retries"],
                  "wall_s": round(results["retry"]["elapsed_s"], 3)},
        "resume": {"fresh_s": round(results["resume"]["fresh_s"], 3),
                   "resumed_s": round(results["resume"]["resumed_s"], 3),
                   "speedup": round(results["resume"]["speedup"], 1)},
    })
    # Acceptance: every injected flake was retried exactly once, and
    # resuming a complete journal beats re-executing the sweep.
    assert results["retry"]["retries"] == results["retry"]["flaked_cells"]
    assert results["resume"]["resumed_s"] < results["resume"]["fresh_s"]
