"""Sweep orchestration: scheduler throughput, retries, and resume cost.

The orchestrator's pitch is that explicit DAGs make sweeps restartable
and parallel without making them slow. This bench puts numbers on that
over a ~200-cell synthetic sweep (cells do a small fixed amount of
arithmetic so scheduler bookkeeping is visible but not dominant):

- jobs/sec through the inline executor, the process pool at 1, 4, and
  all-core workers, and the remote socket worker pool at 2 workers;
- retry accounting under injected first-attempt flakes (every 20th
  cell), which must converge with ``retries=1`` and count exactly the
  flaked cells;
- resume cost: replaying a fully-journaled sweep must be much cheaper
  than executing it (values come from the journal, not the cell fns);
- the distributed failure matrix: the same 200-cell sweep on the remote
  executor with a worker SIGKILLed mid-sweep, a worker stalled past its
  wall-limit, and a connection reset mid-result-frame — each run must
  complete with rows bit-identical to the inline baseline and resume as
  200 replayed cells (no job lost, none double-counted).

Writes ``benchmarks/results/sweep_orchestration.{txt,json}``.
"""

from __future__ import annotations

import os
import time

from repro.orchestrate.dag import JobDAG
from repro.orchestrate.executors import make_executor
from repro.orchestrate.journal import Journal
from repro.orchestrate.remote import RemoteExecutor
from repro.orchestrate.scheduler import Scheduler
from repro.utils.tables import TextTable

from conftest import record, record_json

CELLS = 200
FLAKE_EVERY = 20  # every 20th cell fails its first attempt

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))

#: Shrunk failure-detection timings so the chaos matrix runs in seconds.
FAST = dict(heartbeat=0.2, lease_timeout=1.5, wall_grace=0.5)

CHAOS_ENVS = ("REPRO_WORKER_KILL_AFTER", "REPRO_WORKER_STALL",
              "REPRO_NET_DROP_AFTER")


def _cell(i, spin=400):
    total = 0
    for k in range(spin):
        total += (i * k) % 97
    return {"cell": i, "value": total}


def _flaky_cell(marker_dir, i):
    marker = os.path.join(marker_dir, f"attempted-{i}")
    if i % FLAKE_EVERY == 0 and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("first attempt")
        raise OSError(f"injected flake on cell {i}")
    return _cell(i)


def _gather(*, deps):
    return [row for row in deps if row is not None]


def _build(fn, *extra):
    dag = JobDAG("bench-sweep")
    for i in range(CELLS):
        dag.job(f"cell/{i}", fn, *extra, i, category="cell")
    dag.job("agg", _gather, deps=tuple(f"cell/{i}" for i in range(CELLS)),
            category="aggregate", tolerant=True, pass_deps=True,
            transient=True)
    return dag


def _remote_executor(chaos=None, workers=2):
    """A fast-timing RemoteExecutor whose spawned workers can unpickle
    this bench module (``BENCH_DIR`` on PYTHONPATH) and carry exactly
    the requested chaos hooks."""
    env = dict(os.environ)
    for name in CHAOS_ENVS:
        env.pop(name, None)
    env["PYTHONPATH"] = BENCH_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.update(chaos or {})
    return RemoteExecutor(workers=workers, spawn_env=env, **FAST)


def _timed_run(dag, **kwargs):
    journal = kwargs.pop("journal", None)
    executor = kwargs.pop("executor", None)
    started = time.perf_counter()
    sweep = Scheduler(dag, executor=executor, journal=journal,
                      **kwargs).run()
    elapsed = time.perf_counter() - started
    if executor is not None:
        executor.shutdown()
    return sweep, elapsed


def measure(tmp_root):
    results = {}

    # Throughput: inline, then the pool at increasing widths.
    configs = [("inline", None)]
    for workers in sorted({1, 4, os.cpu_count() or 1}):
        configs.append((f"process-{workers}", workers))
    throughput = []
    inline_rows = None
    for label, workers in configs:
        executor = None if workers is None else \
            make_executor("process", max_workers=workers)
        sweep, elapsed = _timed_run(_build(_cell), executor=executor)
        assert sweep.ok, sweep.report()
        assert len(sweep.value("agg")) == CELLS
        if label == "inline":
            inline_rows = sweep.value("agg")
        throughput.append((label, CELLS / elapsed, elapsed))
    sweep, elapsed = _timed_run(_build(_cell),
                                executor=_remote_executor())
    assert sweep.ok, sweep.report()
    assert sweep.value("agg") == inline_rows
    throughput.append(("remote-2", CELLS / elapsed, elapsed))
    results["throughput"] = throughput

    # Distributed failure matrix: each canonical partial failure
    # injected into the same sweep on the remote executor. Rows must
    # come out bit-identical to inline, and resuming the journal must
    # replay all 200 cells — nothing lost, nothing executed-and-
    # recorded twice.
    matrix = [
        ("worker-kill", {"REPRO_WORKER_KILL_AFTER": "20"}, None),
        ("worker-stall", {"REPRO_WORKER_STALL": "cell/199"}, 1.0),
        ("net-drop", {"REPRO_NET_DROP_AFTER": "30"}, None),
    ]
    distributed = []
    for mode, chaos, wall_limit in matrix:
        # One directory per mode: the journal and its worker shard dir
        # must not leak across chaos runs.
        mode_dir = tmp_root / f"chaos-{mode}"
        mode_dir.mkdir(parents=True)
        journal_path = mode_dir / "journal"
        executor = _remote_executor(chaos)
        sweep, elapsed = _timed_run(_build(_cell), executor=executor,
                                    journal=Journal(journal_path),
                                    retries=3, wall_limit=wall_limit)
        assert sweep.ok, f"{mode}: {sweep.report()}"
        assert sweep.value("agg") == inline_rows, mode
        replay = Scheduler(_build(_cell),
                           journal=Journal(journal_path)).run()
        assert replay.counts().get("resumed") == CELLS, mode
        distributed.append({
            "mode": mode, "wall_s": elapsed, "retries": sweep.retries,
            "worker_losses": executor.stats["worker_losses"],
            "revoked": executor.stats["revoked"],
            "respawns": executor.stats["respawns"],
        })
    results["distributed"] = distributed

    # Retries: injected first-attempt flakes converge under retries=1.
    flake_dir = tmp_root / "flakes"
    flake_dir.mkdir(parents=True)
    sweep, elapsed = _timed_run(_build(_flaky_cell, str(flake_dir)),
                                retries=1)
    assert sweep.ok, sweep.report()
    expected_flakes = len(range(0, CELLS, FLAKE_EVERY))
    assert sweep.retries == expected_flakes, sweep.retries
    results["retry"] = {"flaked_cells": expected_flakes,
                        "retries": sweep.retries,
                        "elapsed_s": elapsed}

    # Resume: second scheduler over a complete journal replays values.
    journal_path = tmp_root / "journal"
    fresh_sweep, fresh = _timed_run(_build(_cell),
                                    journal=Journal(journal_path))
    assert fresh_sweep.ok
    resumed_sweep, resumed = _timed_run(_build(_cell),
                                        journal=Journal(journal_path))
    assert resumed_sweep.counts().get("resumed") == CELLS
    assert resumed_sweep.value("agg") == fresh_sweep.value("agg")
    results["resume"] = {"fresh_s": fresh, "resumed_s": resumed,
                         "speedup": fresh / resumed if resumed else 0.0}
    return results


def render(results) -> str:
    table = TextTable(
        ["Executor", "Jobs/sec", "Wall s"],
        title=f"Sweep orchestration: {CELLS}-cell synthetic sweep",
    )
    for label, rate, elapsed in results["throughput"]:
        table.add_row(label, f"{rate:.0f}", f"{elapsed:.2f}")
    retry = results["retry"]
    resume = results["resume"]
    lines = [
        table.render(),
        f"retries: {retry['retries']} injected flakes recovered "
        f"under retries=1 ({retry['elapsed_s']:.2f}s)",
        f"resume: fresh {resume['fresh_s']:.2f}s vs replay "
        f"{resume['resumed_s']:.2f}s ({resume['speedup']:.0f}x)",
    ]
    for entry in results["distributed"]:
        lines.append(
            f"chaos {entry['mode']}: rows identical in "
            f"{entry['wall_s']:.2f}s ({entry['worker_losses']} workers "
            f"lost, {entry['revoked']} leases revoked, "
            f"{entry['respawns']} respawns, {entry['retries']} retries)")
    return "\n".join(lines)


def test_sweep_orchestration(tmp_path):
    results = measure(tmp_path)
    record("sweep_orchestration", render(results))
    record_json("sweep_orchestration", {
        "cells": CELLS,
        "throughput": [
            {"executor": label,
             "jobs_per_s": round(rate, 1),
             "wall_s": round(elapsed, 3)}
            for label, rate, elapsed in results["throughput"]
        ],
        "retry": {"flaked_cells": results["retry"]["flaked_cells"],
                  "retries": results["retry"]["retries"],
                  "wall_s": round(results["retry"]["elapsed_s"], 3)},
        "resume": {"fresh_s": round(results["resume"]["fresh_s"], 3),
                   "resumed_s": round(results["resume"]["resumed_s"], 3),
                   "speedup": round(results["resume"]["speedup"], 1)},
        "distributed": [
            {**entry, "wall_s": round(entry["wall_s"], 3)}
            for entry in results["distributed"]
        ],
    })
    # Acceptance: every injected flake was retried exactly once, and
    # resuming a complete journal beats re-executing the sweep.
    assert results["retry"]["retries"] == results["retry"]["flaked_cells"]
    assert results["resume"]["resumed_s"] < results["resume"]["fresh_s"]
