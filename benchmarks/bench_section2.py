"""§2 example: the seven-compiler comparison, regenerated.

Asserts the paper's headline: the full pipeline removes exactly two stores
and one load from the motivating function. Benchmarks the full compilation
of the example (the paper's Table 1 point is that these optimizations are
cheap).
"""

from repro.api import compile_minic
from repro.harness.section2 import SECTION2_SOURCE, render, section2

from conftest import record, record_json


def test_section2_example(benchmark):
    result = benchmark(section2)
    assert result.stores_removed == 2
    assert result.loads_removed == 1
    record("section2", render())
    record_json("section2", {
        "loads": [result.loads_before, result.loads_after],
        "stores": [result.stores_before, result.stores_after],
        "loads_removed": result.loads_removed,
        "stores_removed": result.stores_removed,
    })


def test_section2_compile_time(benchmark):
    benchmark(compile_minic, SECTION2_SOURCE, "f", "full")
