"""Figures 15-17: loop decoupling microbenchmark.

Regenerates the behaviour of the paper's §6.3 example: a loop with a
dependence distance of three iterations. Asserts that decoupling (a) keeps
semantics, (b) inserts exactly one tk(3), and (c) buys a large pipelining
speedup that plain monotonicity cannot.
"""

import pytest

from repro.api import compile_minic
from repro.pegasus import nodes as N
from repro.sim.memsys import MemorySystem, REALISTIC_2PORT
from repro.utils.tables import TextTable

from conftest import record, record_json

SOURCE = """
int a[512];
int f(int n) {
    int i;
    for (i = 0; i < n; i++) {
        a[i] = a[i + 3] + 1;
    }
    return a[n - 1];
}
"""

N_ITER = 400


@pytest.fixture(scope="module")
def measurements():
    rows = {}
    for level in ("none", "medium", "full"):
        program = compile_minic(SOURCE, "f", opt_level=level)
        oracle = program.run_sequential([N_ITER])
        run = program.simulate([N_ITER], memsys=MemorySystem(REALISTIC_2PORT))
        assert run.return_value == oracle.return_value
        generators = program.graph.by_kind(N.TokenGenNode)
        rows[level] = (run.cycles, generators)
    return rows


def test_fig16_decoupling(benchmark, measurements):
    program = compile_minic(SOURCE, "f", opt_level="full")
    benchmark(program.simulate, [N_ITER])

    table = TextTable(["opt level", "cycles", "token generators"],
                      title="Figure 15-17: loop decoupling (distance 3)")
    for level, (cycles, generators) in measurements.items():
        table.add_row(level, cycles,
                      ", ".join(g.label() for g in generators) or "-")
    record("fig16_decoupling", table.render())
    record_json("fig16_decoupling", {
        level: {"cycles": cycles,
                "token_generators": [g.label() for g in generators]}
        for level, (cycles, generators) in measurements.items()
    })

    none_cycles, _ = measurements["none"]
    medium_cycles, medium_gens = measurements["medium"]
    full_cycles, full_gens = measurements["full"]

    assert not medium_gens, "medium must not decouple (paper: full only)"
    assert len(full_gens) == 1 and full_gens[0].count == 3
    assert medium_cycles > none_cycles * 0.8, (
        "distance-3 dependence defeats §6.2 alone"
    )
    assert full_cycles < none_cycles / 4, "decoupling must pipeline the loop"
