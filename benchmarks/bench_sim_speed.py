"""Compiled engine vs reference interpreter: identical results, less time.

A Figure-19-style sweep (kernels x optimization levels x memory systems)
runs every cell on both dataflow executors and asserts two things:

- **equivalence** — every observable ``DataflowResult`` field matches
  bit-for-bit (the engine is a faithful accelerator, not an
  approximation);
- **speed** — the compiled engine beats the interpreter by at least 2x
  in the aggregate (it typically lands well above 3x; the 2x gate keeps
  CI robust to noisy shared runners).

Per-cell wall times and speedups land in
``benchmarks/results/sim_speed.json`` for trend tooling; the smoke test
is the one the CI ``perf-smoke`` job runs on its own.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.harness.cache import compiled
from repro.programs import get_kernel
from repro.sim.memsys import (
    MemorySystem,
    PERFECT_MEMORY,
    REALISTIC_2PORT,
)

from conftest import record_json

KERNELS = ("adpcm_e", "li", "mesa", "vortex")
LEVELS = ("none", "full")
SYSTEMS = (PERFECT_MEMORY, REALISTIC_2PORT)

#: Observable result surface compared across engines. ``memory_stats``
#: covers the memory hierarchy (accesses, hits, stalls); ``fire_counts``
#: covers per-node dynamic behavior.
RESULT_FIELDS = ("return_value", "cycles", "fired", "loads", "stores",
                 "skipped_memops", "fire_counts", "memory_stats")


def _measure(program, args, config, engine: str,
             repeats: int = 3) -> tuple[object, float]:
    """Best-of-``repeats`` wall time for one simulation cell.

    The first compiled-engine call also builds (and caches) the graph's
    ``SimPlan``; taking the best of several runs reports the warm-plan
    steady state, which is what sweeps pay.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        run = program.simulate(list(args), memsys=MemorySystem(config),
                               engine=engine)
        best = min(best, time.perf_counter() - start)
        result = run
    return result, best


def _assert_identical(interp, engine, label: str) -> None:
    for field in RESULT_FIELDS:
        got = getattr(engine, field)
        want = getattr(interp, field)
        assert got == want, (
            f"{label}: compiled engine diverged on {field}: "
            f"{got!r} != {want!r}"
        )


def _cell(name: str, level: str, config) -> dict:
    kernel = get_kernel(name)
    program = compiled(name, level).program
    interp_run, interp_s = _measure(program, kernel.args, config, "interp",
                                    repeats=2)
    engine_run, engine_s = _measure(program, kernel.args, config, "compiled")
    kernel.check(interp_run.return_value)
    _assert_identical(interp_run, engine_run,
                      f"{name}/{level}/{config.name}")
    return {
        "kernel": name,
        "level": level,
        "memsys": config.name,
        "cycles": engine_run.cycles,
        "interp_seconds": round(interp_s, 6),
        "compiled_seconds": round(engine_s, 6),
        "speedup": round(interp_s / engine_s, 3) if engine_s else 0.0,
    }


def test_sim_speed_smoke(benchmark):
    """The CI perf gate: one small kernel, exact match, >= 2x."""
    cell = benchmark.pedantic(
        lambda: _cell("adpcm_e", "full", REALISTIC_2PORT),
        rounds=1, iterations=1,
    )
    record_json("sim_speed_smoke", cell)
    assert cell["speedup"] >= 2.0, (
        f"compiled engine only {cell['speedup']}x over the interpreter"
    )


def test_sim_speed_sweep(benchmark):
    """The full sweep: every cell identical, aggregate >= 2x (typ. > 3x)."""
    cells = benchmark.pedantic(
        lambda: [_cell(name, level, config)
                 for name in KERNELS
                 for level in LEVELS
                 for config in SYSTEMS],
        rounds=1, iterations=1,
    )
    geomean = statistics.geometric_mean(
        max(cell["speedup"], 0.01) for cell in cells)
    payload = {
        "kernels": list(KERNELS),
        "levels": list(LEVELS),
        "memory_systems": [config.name for config in SYSTEMS],
        "cells": cells,
        "geomean_speedup": round(geomean, 3),
    }
    record_json("sim_speed", payload)
    assert geomean >= 2.0, (
        f"aggregate speedup {geomean:.2f}x below the 2x floor"
    )
