"""Simulation engines vs reference interpreter: identical results, less time.

A Figure-19-style sweep (kernels x optimization levels x memory systems)
runs every cell on all three dataflow executors and asserts two things:

- **equivalence** — every observable ``DataflowResult`` field matches
  bit-for-bit across interp/compiled/codegen (the engines are faithful
  accelerators, not approximations);
- **speed** — the compiled engine beats the interpreter by at least 3x
  in the aggregate (typically > 5x), and the codegen engine beats the
  compiled engine by at least 1.5x geomean on top (typically ~2x). The
  floors sit below the typical numbers to keep CI robust on noisy
  shared runners.

A separate throughput bench proves the batching win: a fig19-shaped
50-cell sweep through ``CompiledProgram.simulate_batch`` must be at
least 2x faster than the same cells run serially on the codegen engine
(one generated module, one state arena, one laid-out memory image —
reset per context instead of rebuilt).

Per-cell wall times and speedups land in
``benchmarks/results/sim_speed.json`` for trend tooling; the smoke test
is the one the CI ``perf-smoke`` job runs on its own.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.api import compile_minic
from repro.harness.cache import compiled
from repro.harness.fig19 import MEMORY_SYSTEMS
from repro.programs import get_kernel
from repro.sim.memsys import (
    MemorySystem,
    PERFECT_MEMORY,
    REALISTIC_2PORT,
)

from conftest import record_json

KERNELS = ("adpcm_e", "li", "mesa", "vortex")
LEVELS = ("none", "full")
SYSTEMS = (PERFECT_MEMORY, REALISTIC_2PORT)

#: Observable result surface compared across engines. ``memory_stats``
#: covers the memory hierarchy (accesses, hits, stalls); ``fire_counts``
#: covers per-node dynamic behavior.
RESULT_FIELDS = ("return_value", "cycles", "fired", "loads", "stores",
                 "skipped_memops", "fire_counts", "memory_stats")

#: The 50-cell batched sweep: a small kernel whose per-run setup
#: (state arena, runner, memory layout, memory system) is comparable to
#: its event count — exactly the shape where batching pays.
BATCH_SOURCE = """
int acc[64];
int cell(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) { acc[i] = i * 3 + 1; s = s + acc[i]; }
    return s;
}
"""


def _measure(program, args, config, engine: str,
             repeats: int = 3) -> tuple[object, float]:
    """Best-of-``repeats`` wall time for one simulation cell.

    The first compiled/codegen call also builds (and caches) the graph's
    ``SimPlan`` — and, for codegen, generates and compiles the
    specialized module; taking the best of several runs reports the
    warm steady state, which is what sweeps pay.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        run = program.simulate(list(args), memsys=MemorySystem(config),
                               engine=engine)
        best = min(best, time.perf_counter() - start)
        result = run
    return result, best


def _assert_identical(interp, engine, label: str) -> None:
    for field in RESULT_FIELDS:
        got = getattr(engine, field)
        want = getattr(interp, field)
        assert got == want, (
            f"{label}: engine diverged on {field}: "
            f"{got!r} != {want!r}"
        )


def _cell(name: str, level: str, config) -> dict:
    kernel = get_kernel(name)
    program = compiled(name, level).program
    label = f"{name}/{level}/{config.name}"
    interp_run, interp_s = _measure(program, kernel.args, config, "interp",
                                    repeats=2)
    engine_run, engine_s = _measure(program, kernel.args, config, "compiled")
    codegen_run, codegen_s = _measure(program, kernel.args, config, "codegen")
    kernel.check(interp_run.return_value)
    _assert_identical(interp_run, engine_run, label + "/compiled")
    _assert_identical(interp_run, codegen_run, label + "/codegen")
    return {
        "kernel": name,
        "level": level,
        "memsys": config.name,
        "cycles": engine_run.cycles,
        "interp_seconds": round(interp_s, 6),
        "compiled_seconds": round(engine_s, 6),
        "codegen_seconds": round(codegen_s, 6),
        "speedup": round(interp_s / engine_s, 3) if engine_s else 0.0,
        "codegen_speedup": (round(interp_s / codegen_s, 3)
                            if codegen_s else 0.0),
        "codegen_vs_compiled": (round(engine_s / codegen_s, 3)
                                if codegen_s else 0.0),
    }


def test_sim_speed_smoke(benchmark):
    """The CI perf gate: one small kernel, exact 3-way match, floors."""
    cell = benchmark.pedantic(
        lambda: _cell("adpcm_e", "full", REALISTIC_2PORT),
        rounds=1, iterations=1,
    )
    record_json("sim_speed_smoke", cell)
    assert cell["speedup"] >= 2.0, (
        f"compiled engine only {cell['speedup']}x over the interpreter"
    )
    assert cell["codegen_vs_compiled"] >= 1.2, (
        f"codegen only {cell['codegen_vs_compiled']}x over the "
        "compiled engine"
    )


def test_sim_speed_sweep(benchmark):
    """The full sweep: every cell identical on all three engines;
    compiled >= 3x geomean over interp, codegen >= 1.5x over compiled."""
    cells = benchmark.pedantic(
        lambda: [_cell(name, level, config)
                 for name in KERNELS
                 for level in LEVELS
                 for config in SYSTEMS],
        rounds=1, iterations=1,
    )
    geomean = statistics.geometric_mean(
        max(cell["speedup"], 0.01) for cell in cells)
    codegen_geomean = statistics.geometric_mean(
        max(cell["codegen_speedup"], 0.01) for cell in cells)
    codegen_vs_compiled = statistics.geometric_mean(
        max(cell["codegen_vs_compiled"], 0.01) for cell in cells)
    payload = {
        "kernels": list(KERNELS),
        "levels": list(LEVELS),
        "memory_systems": [config.name for config in SYSTEMS],
        "cells": cells,
        "geomean_speedup": round(geomean, 3),
        "codegen_geomean_speedup": round(codegen_geomean, 3),
        "codegen_vs_compiled_geomean": round(codegen_vs_compiled, 3),
    }
    record_json("sim_speed", payload)
    assert geomean >= 3.0, (
        f"compiled aggregate speedup {geomean:.2f}x below the 3x floor"
    )
    assert codegen_vs_compiled >= 1.5, (
        f"codegen aggregate {codegen_vs_compiled:.2f}x over compiled, "
        "below the 1.5x floor"
    )


def test_batched_throughput(benchmark):
    """Batched >= 2x serial codegen on a fig19-shaped 50-cell sweep.

    The grid is (arg value x memory system) with fresh per-cell memory
    systems, exactly what ``figure19(batch=True)`` and the differential
    fault matrix run. The batch path executes the same events — the win
    is pure amortization of per-cell construction.
    """
    program = compile_minic(BATCH_SOURCE, "cell")
    grid = [(n, config)
            for n in range(13)
            for config in MEMORY_SYSTEMS][:50]
    assert len(grid) == 50
    arg_sets = [[n] for n, _ in grid]
    configs = [config for _, config in grid]

    def serial():
        return [program.simulate([n], memsys=MemorySystem(config),
                                 engine="codegen", telemetry=False)
                for n, config in grid]

    def batched():
        return program.simulate_batch(
            arg_sets, memsys=list(configs), engine="codegen",
            telemetry=False)

    serial(), batched()  # warm: plan, generated module, compile cache
    start = time.perf_counter()
    serial_runs = serial()
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    batched_runs = benchmark.pedantic(batched, rounds=1, iterations=1)
    batched_s = time.perf_counter() - start

    for want, got in zip(serial_runs, batched_runs):
        _assert_identical(want, got, "batched sweep")
    speedup = serial_s / batched_s if batched_s else 0.0
    record_json("sim_batched_throughput", {
        "cells": len(grid),
        "serial_seconds": round(serial_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(speedup, 3),
    })
    assert speedup >= 2.0, (
        f"batched execution only {speedup:.2f}x over serial codegen"
    )
