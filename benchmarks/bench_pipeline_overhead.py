"""Pipeline overhead: what verification policy and caching actually cost.

Two claims the staged driver makes measurable:

- running ``verify_graph`` after every pass of the ``full`` pipeline
  (the test-suite policy) is a real compile-time tax; the harness policy
  ``final`` checks once and compiles the same graph faster;
- the persistent content-addressed cache turns figure regeneration from
  recompiling every kernel into unpickling it — warm recompilation of the
  default subset must be at least 5x faster than cold.

Since sweeps now route through :mod:`repro.orchestrate`, the JSON
payload also records the inline scheduler's per-job dispatch overhead,
so a regression in orchestration bookkeeping shows up here.

Writes ``benchmarks/results/pipeline_overhead.txt``.
"""

from __future__ import annotations

import time

from repro.pipeline import CompilationCache, CompilerDriver, PipelineConfig
from repro.programs import get_kernel
from repro.utils.tables import TextTable

from conftest import record, record_json

KERNELS = ("adpcm_e", "adpcm_d", "compress", "ijpeg", "jpeg_e", "jpeg_d",
           "li", "mesa", "mpeg2_d", "vortex")
LEVEL = "full"


def _compile_once(kernel, verify: str, cache=None):
    config = PipelineConfig.make(opt_level=LEVEL, verify=verify)
    started = time.perf_counter()
    program = CompilerDriver(config, cache=cache).compile(kernel.source,
                                                          kernel.entry)
    return time.perf_counter() - started, program


def measure(tmp_root):
    rows = []
    totals = {"every-pass": 0.0, "final": 0.0, "cold": 0.0, "warm": 0.0}
    cache = CompilationCache(tmp_root)
    for name in KERNELS:
        kernel = get_kernel(name)
        strict, _ = _compile_once(kernel, "every-pass")
        relaxed, _ = _compile_once(kernel, "final")
        cold, _ = _compile_once(kernel, "final", cache=cache)
        warm, program = _compile_once(kernel, "final", cache=cache)
        assert program.report.cache_status == "hit"
        totals["every-pass"] += strict
        totals["final"] += relaxed
        totals["cold"] += cold
        totals["warm"] += warm
        rows.append((name, strict, relaxed, cold, warm))
    return rows, totals


def _noop(i):
    return i


def measure_scheduler_overhead(jobs: int = 300):
    """Per-job cost of routing work through the inline scheduler.

    Times ``jobs`` no-op jobs dispatched by a Scheduler against the same
    calls made directly; the difference is pure orchestration tax
    (topological bookkeeping, result finalization, journal-less path).
    """
    from repro.orchestrate.dag import JobDAG
    from repro.orchestrate.scheduler import Scheduler

    started = time.perf_counter()
    for i in range(jobs):
        _noop(i)
    direct = time.perf_counter() - started

    dag = JobDAG("overhead")
    for i in range(jobs):
        dag.job(f"n{i}", _noop, i)
    started = time.perf_counter()
    sweep = Scheduler(dag).run()
    scheduled = time.perf_counter() - started
    assert sweep.ok
    return {
        "jobs": jobs,
        "direct_s": round(direct, 5),
        "scheduled_s": round(scheduled, 5),
        "overhead_us_per_job": round((scheduled - direct) / jobs * 1e6, 1),
    }


def render(rows, totals) -> str:
    table = TextTable(
        ["Kernel", "every-pass ms", "final ms", "cold+cache ms", "warm ms",
         "verify tax", "warm speedup"],
        title="Pipeline overhead: verification policy and compilation "
              "cache (full pipeline)",
    )
    for name, strict, relaxed, cold, warm in rows:
        table.add_row(name, f"{strict * 1e3:.1f}", f"{relaxed * 1e3:.1f}",
                      f"{cold * 1e3:.1f}", f"{warm * 1e3:.1f}",
                      f"{strict / relaxed:.2f}x" if relaxed else "-",
                      f"{cold / warm:.0f}x" if warm else "-")
    table.add_row("TOTAL", f"{totals['every-pass'] * 1e3:.1f}",
                  f"{totals['final'] * 1e3:.1f}",
                  f"{totals['cold'] * 1e3:.1f}",
                  f"{totals['warm'] * 1e3:.1f}",
                  f"{totals['every-pass'] / totals['final']:.2f}x",
                  f"{totals['cold'] / totals['warm']:.0f}x")
    return table.render()


def test_pipeline_overhead(tmp_path):
    rows, totals = measure(tmp_path / "cache")
    scheduler = measure_scheduler_overhead()
    record("pipeline_overhead", render(rows, totals))
    record_json("pipeline_overhead", {
        "kernels": [
            {"kernel": name,
             "every_pass_s": round(strict, 4),
             "final_s": round(relaxed, 4),
             "cold_s": round(cold, 4),
             "warm_s": round(warm, 4)}
            for name, strict, relaxed, cold, warm in rows
        ],
        "totals": {key: round(value, 4)
                   for key, value in totals.items()},
        "scheduler_overhead": scheduler,
    })
    # Acceptance: the warm cache is >= 5x cheaper than cold compilation
    # over the default subset, and the relaxed verification policy does
    # not cost more than the strict one (it skips ~35 verifier runs).
    assert totals["cold"] >= 5 * totals["warm"], (totals["cold"],
                                                  totals["warm"])
    assert totals["final"] <= totals["every-pass"], (totals["final"],
                                                     totals["every-pass"])
