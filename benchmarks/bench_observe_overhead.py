"""Observability overhead: probes must be free when nobody listens.

The probe-bus contract (see :mod:`repro.observe.probes`) is that an
unobserved simulation pays one ``is None`` test per hook site and
nothing else — an empty bus takes the exact same branches as no bus at
all. This bench holds the line the CI profile-smoke job enforces, on
**both** executors (the plan-compiled engine and the reference
interpreter): the no-probe simulation wall time stays within 5% of the
pre-probe-bus baseline, approximated here as min-of-N with an empty
:class:`ProbeBus` attached (machine-identical code path) versus
``probes=None``.

Telemetry recording (an ambient :class:`TelemetrySession` persisting a
RunRecord per simulation) is held to the same line: it happens after
the run finishes, so its cost is one record build plus one appended
JSONL line, amortized to noise on any non-trivial kernel.

Distributed tracing and live metrics are held to the same contract
from the other side: with a :class:`Tracer` active the simulation pays
one ``run:<entry>`` span (two shard appends), and with a metrics
registry enabled it pays one counter increment and one histogram
observation — both must stay within the 5% line. (When neither is
enabled the cost is one ``is None`` test per site, the same guard the
probe bus holds.)

It also reports what full observation actually costs (profiler +
critical path + trace collector), which is allowed to be expensive —
that path is opt-in.

Writes ``benchmarks/results/observe_overhead_<engine>.{txt,json}``.
"""

from __future__ import annotations

import time

from repro.harness.cache import compiled, get_kernel
from repro.observe import Observation, ProbeBus, TelemetrySession
from repro.observe.metrics import disable_metrics, enable_metrics
from repro.observe.store import TelemetryStore
from repro.observe.tracing import Tracer
from repro.sim.memsys import MemorySystem, REALISTIC_MEMORY

import pytest

from repro.utils.tables import TextTable

from conftest import record, record_json

KERNELS = ("adpcm_e", "gsm_e", "li")
ENGINES = ("compiled", "interp")
REPEATS = 5
#: The CI guard: empty-bus must stay within 5% of no-bus. Min-of-N
#: timing still jitters on shared runners; the assertion adds margin on
#: top of the contract the docstring states.
GUARD = 1.05
ASSERT_CEILING = 1.15


def _run(entry, args, memsys, probes=None, profile=False,
         engine=None, telemetry=None):
    started = time.perf_counter()
    result = entry.program.simulate(list(args), memsys=memsys,
                                    probes=probes, profile=profile,
                                    engine=engine, telemetry=telemetry)
    return time.perf_counter() - started, result


def _min_of(repeats, thunk):
    return min(thunk()[0] for _ in range(repeats))


def measure(engine: str, store: TelemetryStore, trace_dir):
    rows = []
    for name in KERNELS:
        kernel = get_kernel(name)
        entry = compiled(name, "full")

        def bare():
            return _run(entry, kernel.args, MemorySystem(REALISTIC_MEMORY),
                        engine=engine)

        def empty_bus():
            return _run(entry, kernel.args, MemorySystem(REALISTIC_MEMORY),
                        probes=ProbeBus(), engine=engine)

        def recorded():
            # The session is ambient, so the timed simulate() call pays
            # the full --record path: build_run_record + store append.
            with TelemetrySession(store=store, label=f"bench-{engine}"):
                return _run(entry, kernel.args,
                            MemorySystem(REALISTIC_MEMORY), engine=engine)

        def traced():
            # One run:<entry> span per simulation: two appended shard
            # lines, no per-cycle work.
            with Tracer(trace_dir):
                return _run(entry, kernel.args,
                            MemorySystem(REALISTIC_MEMORY), engine=engine)

        def metered():
            registry = enable_metrics()
            try:
                return _run(entry, kernel.args,
                            MemorySystem(REALISTIC_MEMORY), engine=engine)
            finally:
                disable_metrics(registry)

        def observed():
            return _run(entry, kernel.args, MemorySystem(REALISTIC_MEMORY),
                        profile=Observation(trace=True), engine=engine)

        base = _min_of(REPEATS, bare)
        idle = _min_of(REPEATS, empty_bus)
        telem = _min_of(REPEATS, recorded)
        spans = _min_of(REPEATS, traced)
        meters = _min_of(REPEATS, metered)
        full = _min_of(REPEATS, observed)
        rows.append((name, base, idle, telem, spans, meters, full))
    return rows


def render(engine, rows) -> str:
    table = TextTable(
        ["Kernel", "no probes ms", "idle ratio", "record ratio",
         "traced ratio", "metrics ratio", "observed ms",
         "observed ratio"],
        title=f"Observability overhead, {engine} engine (min of "
              f"{REPEATS}, realistic memory, guard {GUARD:.2f}x)",
    )
    for name, base, idle, telem, spans, meters, full in rows:
        table.add_row(name, f"{base * 1e3:.1f}", f"{idle / base:.3f}",
                      f"{telem / base:.3f}", f"{spans / base:.3f}",
                      f"{meters / base:.3f}", f"{full * 1e3:.1f}",
                      f"{full / base:.2f}")
    return table.render()


@pytest.mark.parametrize("engine", ENGINES)
def test_unobserved_simulation_is_free(benchmark, engine, tmp_path):
    store = TelemetryStore(tmp_path / "telemetry")
    trace_dir = tmp_path / "traces"
    rows = measure(engine, store, trace_dir)
    record(f"observe_overhead_{engine}", render(engine, rows))
    record_json(f"observe_overhead_{engine}", [
        {"kernel": name,
         "no_probes_s": round(base, 5),
         "empty_bus_s": round(idle, 5),
         "recorded_s": round(telem, 5),
         "traced_s": round(spans, 5),
         "metrics_s": round(meters, 5),
         "observed_s": round(full, 5),
         "idle_ratio": round(idle / base, 4),
         "record_ratio": round(telem / base, 4),
         "traced_ratio": round(spans / base, 4),
         "metrics_ratio": round(meters / base, 4),
         "observed_ratio": round(full / base, 4)}
        for name, base, idle, telem, spans, meters, full in rows
    ])
    for name, base, idle, telem, spans, meters, _full in rows:
        assert idle <= base * ASSERT_CEILING, \
            f"{name}: empty probe bus costs {idle / base:.2f}x (> guard)"
        assert telem <= base * ASSERT_CEILING, \
            f"{name}: telemetry recording costs {telem / base:.2f}x " \
            f"(> guard)"
        assert spans <= base * ASSERT_CEILING, \
            f"{name}: tracing costs {spans / base:.2f}x (> guard)"
        assert meters <= base * ASSERT_CEILING, \
            f"{name}: metrics cost {meters / base:.2f}x (> guard)"
    # Every recorded() repeat persisted one run record, and every
    # traced() repeat left its run span in a shard.
    assert len(store.index()) >= len(KERNELS)
    assert list(trace_dir.glob("shard-*.jsonl"))

    kernel = get_kernel(KERNELS[0])
    entry = compiled(KERNELS[0], "full")
    benchmark(lambda: entry.program.simulate(
        list(kernel.args), memsys=MemorySystem(REALISTIC_MEMORY),
        engine=engine))
