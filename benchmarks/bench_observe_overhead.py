"""Observability overhead: probes must be free when nobody listens.

The probe-bus contract (see :mod:`repro.observe.probes`) is that an
unobserved simulation pays one ``is None`` test per hook site and
nothing else — an empty bus takes the exact same branches as no bus at
all. This bench holds the line the CI profile-smoke job enforces: the
no-probe simulation wall time stays within 5% of the pre-probe-bus
baseline, approximated here as min-of-N with an empty :class:`ProbeBus`
attached (machine-identical code path) versus ``probes=None``.

It also reports what full observation actually costs (profiler +
critical path + trace collector), which is allowed to be expensive —
that path is opt-in.

Writes ``benchmarks/results/observe_overhead.txt``.
"""

from __future__ import annotations

import time

from repro.harness.cache import compiled, get_kernel
from repro.observe import Observation, ProbeBus
from repro.sim.memsys import MemorySystem, REALISTIC_MEMORY
from repro.utils.tables import TextTable

from conftest import record

KERNELS = ("adpcm_e", "gsm_e", "li")
REPEATS = 5
#: The CI guard: empty-bus must stay within 5% of no-bus. Min-of-N
#: timing still jitters on shared runners; the assertion adds margin on
#: top of the contract the docstring states.
GUARD = 1.05
ASSERT_CEILING = 1.15


def _run(entry, args, memsys, probes=None, profile=False):
    started = time.perf_counter()
    result = entry.program.simulate(list(args), memsys=memsys,
                                    probes=probes, profile=profile)
    return time.perf_counter() - started, result


def _min_of(repeats, thunk):
    return min(thunk()[0] for _ in range(repeats))


def measure():
    rows = []
    for name in KERNELS:
        kernel = get_kernel(name)
        entry = compiled(name, "full")

        def bare():
            return _run(entry, kernel.args, MemorySystem(REALISTIC_MEMORY))

        def empty_bus():
            return _run(entry, kernel.args, MemorySystem(REALISTIC_MEMORY),
                        probes=ProbeBus())

        def observed():
            return _run(entry, kernel.args, MemorySystem(REALISTIC_MEMORY),
                        profile=Observation(trace=True))

        base = _min_of(REPEATS, bare)
        idle = _min_of(REPEATS, empty_bus)
        full = _min_of(REPEATS, observed)
        rows.append((name, base, idle, full))
    return rows


def render(rows) -> str:
    table = TextTable(
        ["Kernel", "no probes ms", "empty bus ms", "idle ratio",
         "observed ms", "observed ratio"],
        title=f"Observability overhead (min of {REPEATS}, realistic "
              f"memory, guard {GUARD:.2f}x)",
    )
    for name, base, idle, full in rows:
        table.add_row(name, f"{base * 1e3:.1f}", f"{idle * 1e3:.1f}",
                      f"{idle / base:.3f}", f"{full * 1e3:.1f}",
                      f"{full / base:.2f}")
    return table.render()


def test_unobserved_simulation_is_free(benchmark):
    rows = measure()
    record("observe_overhead", render(rows))
    for name, base, idle, _full in rows:
        assert idle <= base * ASSERT_CEILING, \
            f"{name}: empty probe bus costs {idle / base:.2f}x (> guard)"

    kernel = get_kernel(KERNELS[0])
    entry = compiled(KERNELS[0], "full")
    benchmark(lambda: entry.program.simulate(
        list(kernel.args), memsys=MemorySystem(REALISTIC_MEMORY)))
