"""§7.2 — static IR size stability.

The paper: "independent of which memory optimizations were turned on or
off, the size of the IR never varied by more than 3%" (the worry was that
fine-grained token edges might blow up quadratically — they don't). Our
graphs are far smaller than CASH's whole-program circuits, so the same
absolute node deltas make bigger percentages; the shape asserted is the
paper's point: optimization levels change IR size only marginally (well
under tens of percent), never quadratically.
"""

import pytest

from repro.harness.cache import compiled
from repro.utils.tables import TextTable

from conftest import record, record_json

KERNELS = ("adpcm_e", "compress", "ijpeg", "jpeg_d", "li", "mesa",
           "mpeg2_d", "vortex")


@pytest.fixture(scope="module")
def sizes():
    table = {}
    for name in KERNELS:
        table[name] = {
            level: len(compiled(name, level).program.graph)
            for level in ("none", "medium", "full")
        }
    return table


def test_ir_size_stability(benchmark, sizes):
    benchmark.pedantic(lambda: len(compiled("li", "none").program.graph),
                       rounds=3, iterations=1)
    table = TextTable(["Benchmark", "nodes none", "nodes medium",
                       "nodes full", "max delta %"],
                      title="IR size across optimization levels (paper "
                            "7.2: varies <3% in CASH)")
    worst = 0.0
    for name, row in sizes.items():
        base = row["none"]
        delta = max(abs(row[l] - base) / base * 100
                    for l in ("medium", "full"))
        worst = max(worst, delta)
        table.add_row(name, row["none"], row["medium"], row["full"],
                      f"{delta:.1f}")
    record("ir_size", table.render())
    record_json("ir_size", {name: dict(row)
                            for name, row in sizes.items()})
    # No blow-up: optimization may shrink or slightly grow the graph
    # (generator/collector circuits), never quadratically.
    assert worst < 35.0
    for name, row in sizes.items():
        assert row["full"] < 4 * row["none"]
