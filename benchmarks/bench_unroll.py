"""Loop unrolling × memory optimization synergy.

CASH runs loop unrolling among its scalar optimizations (§7.1). Unrolling
turns induction expressions into literal addresses, which the symbolic
disambiguation (§4.3) and the redundancy eliminations (§5) then optimize
across former iteration boundaries. This bench quantifies that composition
on a small blocked kernel.
"""

import pytest

from repro.api import compile_minic
from repro.sim.memsys import MemorySystem, REALISTIC_2PORT
from repro.utils.tables import TextTable

from conftest import record, record_json

SOURCE = """
int coeff[4];
int samples[64];
int out[64];

int fir(int n)
{
    int i; int k;
    long checksum = 0;
    for (i = 0; i < 64; i++) samples[i] = (i * 37) & 255;
    coeff[0] = 3; coeff[1] = -1; coeff[2] = 4; coeff[3] = 2;
    for (i = 0; i + 4 <= n; i++) {
        int acc = 0;
        for (k = 0; k < 4; k++) acc += coeff[k] * samples[i + k];
        out[i] = acc >> 2;
    }
    for (i = 0; i + 4 <= n; i++) checksum += out[i] ^ i;
    return (int)(checksum & 0x7fffffff);
}
"""

ARGS = [60]


@pytest.fixture(scope="module")
def variants():
    results = {}
    expected = None
    for label, kwargs in (
        ("rolled", {}),
        ("unrolled", {"unroll_limit": 8}),
    ):
        program = compile_minic(SOURCE, "fir", opt_level="full", **kwargs)
        run = program.simulate(ARGS, memsys=MemorySystem(REALISTIC_2PORT))
        oracle = program.run_sequential(ARGS)
        assert run.return_value == oracle.return_value
        if expected is None:
            expected = run.return_value
        assert run.return_value == expected
        results[label] = run
    return results


def test_unroll_synergy(benchmark, variants):
    program = compile_minic(SOURCE, "fir", opt_level="full", unroll_limit=8)
    benchmark(program.simulate, ARGS)

    table = TextTable(["variant", "cycles", "dyn loads", "dyn stores"],
                      title="Ablation: inner-loop unrolling x memory opts "
                            "(4-tap FIR, realistic 2-port)")
    for label, run in variants.items():
        table.add_row(label, run.cycles, run.loads, run.stores)
    record("unroll_synergy", table.render())
    record_json("unroll_synergy", {
        label: {"cycles": run.cycles, "loads": run.loads,
                "stores": run.stores}
        for label, run in variants.items()
    })

    rolled = variants["rolled"]
    unrolled = variants["unrolled"]
    # The unrolled inner loop exposes the four coefficient loads to
    # loop-invariant motion/merging and removes inner-loop control.
    assert unrolled.cycles < rolled.cycles
