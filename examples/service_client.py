"""Drive the compile service end to end, in one process.

Starts an in-process server on an ephemeral port (exactly what
``repro serve`` runs), then walks the client library through the
service's guarantees:

- first compile is a miss, the identical one is answered warm from the
  shared artifact store;
- eight concurrent identical simulations coalesce onto one execution
  (watch ``compiles_executed`` stay at 1);
- the warmth probe never compiles;
- shutdown drains cleanly.

Run with::

    PYTHONPATH=src python examples/service_client.py

The ``__main__`` guard matters: the server's process pool uses a
forkserver context whose workers re-import the main module.
"""

import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.service.client import ServiceClient
from repro.service.server import CompileService, ServiceConfig

SOURCE = """
int a[64];
int kernel(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 2; s = s + a[i]; }
    return s;
}
"""


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-service-demo-") as tmp:
        service = CompileService(ServiceConfig(
            port=0, name="demo-service",
            cache_root=f"{tmp}/cache",
            telemetry_root=f"{tmp}/telemetry")).start_in_thread()
        try:
            client = ServiceClient(port=service.port, client_id="demo")

            print("-- compile: miss, then warm")
            first = client.compile(SOURCE, "kernel")
            print(f"   {first.key[:16]}  cache={first.cache}  "
                  f"{first.compile['wall_time'] * 1e3:.0f} ms")
            again = client.compile(SOURCE, "kernel")
            print(f"   {again.key[:16]}  cache={again.cache}")

            print("-- 8 identical concurrent simulations, one execution")
            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(
                    lambda i: ServiceClient(
                        port=service.port, client_id=f"demo-{i}"
                    ).simulate(SOURCE, "kernel", args=[20], wait=True),
                    range(8)))
            values = {outcome.value for outcome in outcomes}
            stats = client.health()["stats"]
            print(f"   8 results, values={values}, "
                  f"cycles={outcomes[0].result['cycles']}")
            print(f"   compiles_executed={stats['compiles_executed']}  "
                  f"sims_executed={stats['sims_executed']}  "
                  f"sim_deduped={stats['sim_deduped']}")

            print("-- warmth probe (never compiles)")
            probe = client.cache_stat(SOURCE, "kernel")
            print(f"   {probe['key'][:16]}  warm={probe['warm']}")

            print("-- provenance: one miss record for all that traffic")
            misses = [record for record in service.session.records()
                      if record.kind == "compile"
                      and (record.compilation or {}).get("cache_status")
                      == "miss"]
            print(f"   cache_status=miss records: {len(misses)}")

            print("-- drained shutdown")
            client.shutdown(drain=True)
        finally:
            service.stop(drain=True)
        print(f"   done: {service.stats.completed} jobs completed, "
              f"{service.stats.failed} failed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
