"""Loop pipelining with fine-grained synchronization (paper §6, Figure 10).

The classic producer/consumer loop: read a source array, compute, write a
destination array. With one token circuit per memory object (Figure 11),
splitting the synchronization lets the source reads run several iterations
ahead of the destination writes, filling the computation pipeline — the
Figure 10(b) vs 10(c) contrast, measured here across the paper's memory
systems.

Run with:  python examples/memory_pipelining.py
"""

from repro import compile_minic
from repro.sim.memsys import (
    PERFECT_MEMORY,
    REALISTIC_1PORT,
    REALISTIC_2PORT,
    REALISTIC_4PORT,
)

SOURCE = """
int src[512];
int dst[512];

int transform(int n)
{
    int i;
    for (i = 0; i < n; i++) {
        dst[i] = (src[i] * 13 + 7) >> 2;
    }
    return dst[n - 1];
}
"""


def main() -> None:
    systems = [PERFECT_MEMORY, REALISTIC_1PORT, REALISTIC_2PORT,
               REALISTIC_4PORT]
    print(f"{'memory system':16s}" + "".join(f"{lvl:>10s}" for lvl in
                                             ("none", "medium", "full")))
    for config in systems:
        cells = []
        for level in ("none", "medium", "full"):
            program = compile_minic(SOURCE, "transform", opt_level=level)
            oracle = program.run_sequential([400])
            run = program.simulate([400], memsys=config)
            assert run.return_value == oracle.return_value
            cells.append(run.cycles)
        print(f"{config.name:16s}" + "".join(f"{c:10d}" for c in cells))
    print()
    print("The medium set already pipelines both arrays (monotone addresses,")
    print("§6.2): ~6x on the realistic hierarchy, where serialized iterations")
    print("pay the full memory latency each. This loop issues about one")
    print("access per cycle, so extra LSQ ports change little — the paper's")
    print("observation that even small amounts of bandwidth are used")
    print("effectively by the compiler.")


if __name__ == "__main__":
    main()
