"""Quickstart: compile a MiniC function to a spatial dataflow circuit.

Run with:  python examples/quickstart.py

Shows the complete round trip: MiniC source -> Pegasus graph -> dataflow
simulation, validated against the sequential (program-order) oracle.
"""

from repro import compile_minic
from repro.sim.memsys import REALISTIC_MEMORY

SOURCE = """
int histogram[16];

int build_histogram(int n)
{
    int i;
    int peak = 0;
    unsigned seed = 2026;
    for (i = 0; i < 16; i++) histogram[i] = 0;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        histogram[(seed >> 16) & 15] += 1;
    }
    for (i = 0; i < 16; i++) {
        if (histogram[i] > peak) peak = histogram[i];
    }
    return peak;
}
"""


def main() -> None:
    for level in ("none", "medium", "full"):
        program = compile_minic(SOURCE, "build_histogram", opt_level=level)

        # The oracle: execute the CFG in program order.
        oracle = program.run_sequential([500])

        # Spatial execution on the paper's realistic memory hierarchy.
        spatial = program.simulate([500], memsys=REALISTIC_MEMORY)

        assert spatial.return_value == oracle.return_value
        counts = program.static_counts()
        print(f"opt={level:7s} result={spatial.return_value:3d} "
              f"cycles={spatial.cycles:6d} "
              f"dynamic-memops={spatial.memory_operations:5d} "
              f"graph-nodes={counts['nodes']:4d} "
              f"(loads={counts['loads']}, stores={counts['stores']})")
    print("\nThe histogram updates alias unpredictably (seed-driven index),")
    print("so the middle loop stays serialized; the init and scan loops")
    print("pipeline, which is where the cycle reduction comes from.")


if __name__ == "__main__":
    main()
