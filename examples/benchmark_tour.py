"""A tour of the benchmark suite: Table 2 / Figure 18 / Figure 19 in small.

Compiles a handful of the Table-2 kernels, validates their self-checks at
every optimization level, and prints the per-kernel static/dynamic memory
reduction and speedups — the same quantities the full benchmark harness
(`pytest benchmarks/ --benchmark-only`) regenerates for the whole suite.

Run with:  python examples/benchmark_tour.py
"""

from repro import compile_minic
from repro.programs import get_kernel
from repro.sim.memsys import REALISTIC_2PORT

TOUR = ("adpcm_e", "jpeg_d", "compress", "li")


def main() -> None:
    print(f"{'kernel':10s} {'family':34s} {'none':>9s} {'medium':>9s} "
          f"{'full':>9s} {'memops':>13s}")
    for name in TOUR:
        kernel = get_kernel(name)
        cycles = {}
        memops = {}
        for level in ("none", "medium", "full"):
            program = compile_minic(kernel.source, kernel.entry,
                                    opt_level=level)
            run = program.simulate(list(kernel.args), memsys=REALISTIC_2PORT)
            kernel.check(run.return_value)  # the built-in self-check
            cycles[level] = run.cycles
            memops[level] = run.memory_operations
        print(f"{kernel.name:10s} {kernel.family:34s} "
              f"{cycles['none']:9d} {cycles['medium']:9d} {cycles['full']:9d} "
              f"{memops['none']:6d}->{memops['full']:<6d}")
    print("\nEvery run passed its golden self-check at every level.")


if __name__ == "__main__":
    main()
