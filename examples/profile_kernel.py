"""Profiling a kernel: where did the cycles actually go?

A cycle count alone cannot distinguish "the memory system is the
bottleneck" from "the loop-carried recurrence is the bottleneck". The
observability subsystem answers that: ``simulate(profile=True)`` runs
the profiler and the dynamic critical-path analysis over the probe bus
and attaches a :class:`~repro.observe.ProfileReport` to the result.

This example profiles a reduction loop under perfect and realistic
memory. The attribution shifts exactly as the paper's §7 argument
predicts: with perfect memory the critical path is the compute
recurrence; with a real two-level hierarchy the memory category takes
over.

Run with:  python examples/profile_kernel.py
"""

from repro import compile_minic
from repro.observe import Observation
from repro.sim.memsys import PERFECT_MEMORY, REALISTIC_MEMORY

SOURCE = """
int data[256];

int checksum(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) data[i] = (i * 7) & 255;
    for (i = 0; i < n; i++) s = (s + data[i]) & 65535;
    return s;
}
"""


def profile(memsys, label: str) -> None:
    program = compile_minic(SOURCE, "checksum", opt_level="full")
    result = program.simulate([200], memsys=memsys, profile=True)
    report = result.profile
    print(f"--- {label}: {result.cycles} cycles")
    print(report.render(top=5))
    critical = report.critical_path
    print(f"memory share of the critical path: "
          f"{100.0 * critical.share('memory'):.1f}%")
    print()


def export_traces() -> None:
    """The same run, exported for interactive viewers."""
    program = compile_minic(SOURCE, "checksum", opt_level="full")
    observation = Observation(trace=True)
    program.simulate([200], memsys=REALISTIC_MEMORY, profile=observation)
    observation.export_trace(program.graph, "checksum_trace.json")
    observation.export_vcd(program.graph, "checksum_waves.vcd")
    print("wrote checksum_trace.json  (open at https://ui.perfetto.dev)")
    print("wrote checksum_waves.vcd   (open with GTKWave)")


def main() -> None:
    profile(PERFECT_MEMORY, "perfect memory")
    profile(REALISTIC_MEMORY, "realistic 2-level hierarchy")
    export_traces()
    print()
    print("The same numbers are available from the command line:")
    print("  python -m repro kernel.c --entry checksum --args 200 \\")
    print("      --memory realistic --profile --trace-out run.json")


if __name__ == "__main__":
    main()
