"""Loop decoupling and the token generator (paper §6.3, Figures 15-17).

The loop below carries a dependence at distance 3: iteration i reads
a[i+3], which iteration i+3 overwrites. Loop decoupling slices the loop
into two independent token loops — the a[i+3] reads run free, the a[i]
writes draw issue tokens from a tk(3) token generator that holds three
credits and gains one whenever a read completes. The writes can therefore
run at most 3 iterations ahead of the reads, which is exactly the legal
maximum.

Run with:  python examples/loop_decoupling.py
"""

from repro import compile_minic
from repro.pegasus import nodes as N
from repro.sim.memsys import REALISTIC_MEMORY

SOURCE = """
int a[512];

int decoupled(int n)
{
    int i;
    for (i = 0; i < n; i++) {
        a[i] = a[i + 3] + 1;
    }
    return a[n - 1];
}
"""


def main() -> None:
    results = {}
    for level in ("none", "medium", "full"):
        program = compile_minic(SOURCE, "decoupled", opt_level=level)
        oracle = program.run_sequential([400])
        spatial = program.simulate([400], memsys=REALISTIC_MEMORY)
        assert spatial.return_value == oracle.return_value
        generators = program.graph.by_kind(N.TokenGenNode)
        results[level] = spatial.cycles
        print(f"opt={level:7s} cycles={spatial.cycles:6d} "
              f"token-generators={[g.label() for g in generators]}")

    print()
    print(f"decoupling speedup over serialized iterations: "
          f"{results['none'] / results['full']:.1f}x")
    print("medium shows no gain: the distance-3 dependence defeats plain")
    print("monotonicity (§6.2); only decoupling (§6.3) with its tk(3)")
    print("bound can overlap these iterations safely.")


if __name__ == "__main__":
    main()
