"""The paper's Section 2 motivating example, reproduced.

The program uses a[i] as a temporary; of seven 2003-era compilers only
CASH and IBM's AIX cc removed all the useless accesses (two stores and one
load). This example compiles the same function through this repository's
pipeline and shows the same removal, then demonstrates that behaviour is
preserved by running both simulators on a driver.

Run with:  python examples/section2_example.py
"""

from repro import compile_minic
from repro.harness.section2 import render, SECTION2_SOURCE

DRIVER = SECTION2_SOURCE + """
unsigned buffer[8];
unsigned value = 5;

unsigned drive(int i, int use_p)
{
    int k;
    for (k = 0; k < 8; k++) buffer[k] = k + 1;
    f(use_p ? &value : (unsigned*)0, buffer, i);
    return buffer[i];
}
"""


def main() -> None:
    print(render())
    print()

    program = compile_minic(DRIVER, "drive", opt_level="full")
    for args in ([3, 1], [3, 0], [0, 1]):
        oracle = program.run_sequential(list(args))
        spatial = program.simulate(list(args))
        assert oracle.return_value == spatial.return_value
        print(f"drive{tuple(args)} = {spatial.return_value} "
              f"(oracle agrees; {spatial.cycles} cycles)")


if __name__ == "__main__":
    main()
