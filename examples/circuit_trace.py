"""Watching a spatial circuit execute: the activity timeline.

Pipelining is visible directly in the firing pattern: serialized loops
show one lonely memory access at a time; after the §6 transformations the
load and store strips fill in densely. This example traces the Figure-10
copy loop before and after optimization.

Run with:  python examples/circuit_trace.py
"""

from repro import compile_minic
from repro.sim.dataflow import DataflowSimulator
from repro.sim.memsys import MemorySystem, REALISTIC_2PORT
from repro.sim.trace import TraceRecorder, busiest_nodes, render_timeline

SOURCE = """
int src[128];
int dst[128];

int copyloop(int n)
{
    int i;
    for (i = 0; i < n; i++) dst[i] = src[i] * 3 + 1;
    return dst[n - 1];
}
"""


def trace(level: str) -> None:
    program = compile_minic(SOURCE, "copyloop", opt_level=level)
    simulator = DataflowSimulator(program.graph,
                                  memory=program.new_memory(),
                                  memsys=MemorySystem(REALISTIC_2PORT))
    recorder = TraceRecorder.attach(simulator)
    result = simulator.run([100])
    print(f"--- opt={level}: {result.cycles} cycles, "
          f"{result.loads} loads / {result.stores} stores")
    print(render_timeline(recorder, program.graph, width=64, top=8))
    print("busiest operators:",
          ", ".join(f"{node.label()}#{node.id} x{count}"
                    for node, count in busiest_nodes(recorder,
                                                     program.graph, 4)))
    print()


def main() -> None:
    for level in ("none", "medium"):
        trace(level)
    print("In the serialized run the whole timeline is stretched out; in")
    print("the pipelined one every strip is packed to the left — the same")
    print("work finishing in a fraction of the cycles.")


if __name__ == "__main__":
    main()
