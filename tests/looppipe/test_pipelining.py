"""§6 loop pipelining: read-only split, monotonicity, decoupling."""

import pytest

from repro import compile_minic
from repro.pegasus import nodes as N
from repro.sim.memsys import MemorySystem, REALISTIC_MEMORY


def cycles(source, entry, args, level, memsys=None):
    program = compile_minic(source, entry, opt_level=level)
    run = program.simulate(list(args),
                          memsys=MemorySystem(memsys or REALISTIC_MEMORY))
    oracle = program.run_sequential(list(args))
    assert run.return_value == oracle.return_value
    assert run.memory.snapshot() == oracle.memory.snapshot()
    return run.cycles


READONLY = """
int tbl[64];
int f(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i++) s += tbl[(i * 7) & 63];
    return s;
}
"""

MONOTONE = """
int src[256]; int dst[256];
int f(int n) {
    int i;
    for (i = 0; i < n; i++) dst[i] = src[i] * 3 + 1;
    return dst[n-1];
}
"""

DECOUPLE = """
int a[300];
int f(int n) {
    int i;
    for (i = 0; i < n; i++) a[i] = a[i+3] + 1;
    return a[n-1];
}
"""

CONFLICTING = """
int a[300];
int f(int n) {
    int i;
    for (i = 1; i < n; i++) a[i] = a[i-1] + 1;
    return a[n-1];
}
"""


class TestReadOnlySplit:
    def test_random_access_reads_pipeline_at_full(self):
        serialized = cycles(READONLY, "f", [100], "none")
        pipelined = cycles(READONLY, "f", [100], "full")
        assert pipelined < serialized / 2

    def test_medium_does_not_apply_readonly(self):
        # (i*7)&63 is not monotone, so §6.2 cannot catch it; §6.1 is a
        # full-level optimization, exactly as in the paper's "Medium" set.
        medium = cycles(READONLY, "f", [100], "medium")
        serialized = cycles(READONLY, "f", [100], "none")
        assert medium == pytest.approx(serialized, rel=0.1)


class TestMonotone:
    def test_copy_loop_pipelines_at_medium(self):
        serialized = cycles(MONOTONE, "f", [100], "none")
        medium = cycles(MONOTONE, "f", [100], "medium")
        assert medium < serialized / 3

    def test_loop_carried_dependence_blocks_monotone(self):
        # a[i] = a[i-1] + 1 is a genuine recurrence: distance 1, no
        # transformation may overlap iterations.
        serialized = cycles(CONFLICTING, "f", [100], "none")
        full = cycles(CONFLICTING, "f", [100], "full")
        assert full > serialized / 2, "the recurrence must stay serialized"

    def test_downward_loop(self):
        source = """
        int dst[128];
        int f(int n) {
            int i;
            for (i = n; i > 0; i--) dst[i-1] = i * 2;
            return dst[0];
        }
        """
        serialized = cycles(source, "f", [100], "none")
        medium = cycles(source, "f", [100], "medium")
        assert medium < serialized


class TestDecoupling:
    def test_token_generator_inserted(self):
        program = compile_minic(DECOUPLE, "f", opt_level="full")
        generators = program.graph.by_kind(N.TokenGenNode)
        assert len(generators) == 1
        assert generators[0].count == 3

    def test_decoupling_speedup_and_correctness(self):
        serialized = cycles(DECOUPLE, "f", [200], "none")
        full = cycles(DECOUPLE, "f", [200], "full")
        assert full < serialized / 4

    def test_medium_leaves_distance_loops_alone(self):
        program = compile_minic(DECOUPLE, "f", opt_level="medium")
        assert not program.graph.by_kind(N.TokenGenNode)

    def test_negative_direction_distance(self):
        source = """
        int a[300];
        int f(int n) {
            int i;
            for (i = n; i >= 4; i--) a[i] = a[i-4] + 1;
            return a[n];
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        oracle = program.run_sequential([250])
        run = program.simulate([250])
        assert run.return_value == oracle.return_value
        assert run.memory.snapshot() == oracle.memory.snapshot()

    def test_three_offset_groups_not_decoupled(self, differential):
        source = """
        int a[300];
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) a[i] = a[i+3] + a[i+6];
            return a[n-1];
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        assert not program.graph.by_kind(N.TokenGenNode)
        differential(source, "f", [100])


class TestSlipBound:
    def test_tk_limits_slip(self):
        """The constrained group must never run more than n ahead."""
        from repro.sim import dataflow as dfm

        program = compile_minic(DECOUPLE, "f", opt_level="full")
        stores = [n.id for n in program.graph.by_kind(N.StoreNode)]
        loads = [n.id for n in program.graph.by_kind(N.LoadNode)
                 if n.hyperblock in program.build.loop_predicates]
        assert len(stores) == 1 and len(loads) == 1
        store_id, load_id = stores[0], loads[0]

        progress = {"store": 0, "load": 0, "max_ahead": -10}
        orig_store = dfm.DataflowSimulator._fire_store
        orig_load = dfm.DataflowSimulator._fire_load

        def spy_store(self, node, values, time):
            if node.id == store_id and values[2]:
                progress["store"] += 1
                ahead = progress["store"] - progress["load"]
                progress["max_ahead"] = max(progress["max_ahead"], ahead)
            return orig_store(self, node, values, time)

        def spy_load(self, node, values, time):
            if node.id == load_id and values[1]:
                progress["load"] += 1
            return orig_load(self, node, values, time)

        dfm.DataflowSimulator._fire_store = spy_store
        dfm.DataflowSimulator._fire_load = spy_load
        try:
            # The spies hook the interpreter's fire methods, so pin
            # the engine (the slip bound itself is engine-agnostic;
            # tests/sim/test_engine.py proves identical trajectories).
            program.simulate([200], engine="interp")
        finally:
            dfm.DataflowSimulator._fire_store = orig_store
            dfm.DataflowSimulator._fire_load = orig_load
        # a[i] (the write) may issue at most 3 iterations ahead of a[i+3].
        assert progress["max_ahead"] <= 3
        assert progress["store"] == 200
