"""Utility modules: ordered set, id allocation, text tables."""

import pytest
from hypothesis import given, strategies as st

from repro.utils import IdAllocator, OrderedSet, TextTable
from repro.utils.tables import render_series


class TestOrderedSet:
    def test_insertion_order_preserved(self):
        items = OrderedSet([3, 1, 2, 1])
        assert list(items) == [3, 1, 2]

    def test_set_semantics(self):
        items = OrderedSet([1, 2])
        items.add(2)
        assert len(items) == 2
        items.discard(5)  # no error
        items.remove(1)
        assert list(items) == [2]
        with pytest.raises(KeyError):
            items.remove(99)

    def test_pop_first(self):
        items = OrderedSet("abc")
        assert items.pop_first() == "a"
        assert list(items) == ["b", "c"]

    def test_operators(self):
        a = OrderedSet([1, 2, 3])
        b = OrderedSet([3, 4])
        assert list(a | b) == [1, 2, 3, 4]
        assert list(a & b) == [3]
        assert list(a - b) == [1, 2]

    def test_equality_with_set(self):
        assert OrderedSet([1, 2]) == {2, 1}
        assert OrderedSet([1]) != OrderedSet([2])

    @given(st.lists(st.integers()))
    def test_matches_dict_fromkeys(self, values):
        assert list(OrderedSet(values)) == list(dict.fromkeys(values))


class TestIdAllocator:
    def test_sequence(self):
        ids = IdAllocator()
        assert [ids.allocate() for _ in range(3)] == [0, 1, 2]
        assert ids.peek() == 3

    def test_reserve(self):
        ids = IdAllocator(10)
        block = ids.reserve(4)
        assert list(block) == [10, 11, 12, 13]
        assert ids.allocate() == 14


class TestTextTable:
    def test_alignment(self):
        table = TextTable(["name", "value"], title="T")
        table.add_row("a", 1)
        table.add_row("longer", 123)
        lines = table.render().splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_arity_checked(self):
        table = TextTable(["one"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_float_formatting(self):
        table = TextTable(["x"])
        table.add_row(1.23456)
        assert "1.235" in table.render()

    def test_render_series(self):
        text = render_series("speed", [("a", 1.0), ("b", 2.0)])
        assert "speed:" in text and "a -> 1.000" in text
