"""Dominators, loops, hyperblocks, liveness, and the inliner."""

import pytest

from repro.errors import InlineError
from repro.frontend import parse_program
from repro.cfg import ir
from repro.cfg.lower import lower_program, LoweredProgram
from repro.cfg.dominators import DominatorTree
from repro.cfg.loops import LoopInfo
from repro.cfg.liveness import Liveness
from repro.cfg.hyperblocks import form_hyperblocks
from repro.cfg.inline import inline_program
from repro.sim.sequential import SequentialInterpreter

DIAMOND = """
int f(int x) {
    int r;
    if (x > 0) r = 1; else r = 2;
    return r + x;
}
"""

LOOP = """
int f(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i++) s += i;
    return s;
}
"""

NESTED = """
int f(int n) {
    int i; int j; int s = 0;
    for (i = 0; i < n; i++)
        for (j = 0; j < i; j++)
            s += j;
    return s;
}
"""


def lower(source: str) -> ir.Function:
    return lower_program(parse_program(source)).function("f")


class TestDominators:
    def test_entry_dominates_everything(self):
        func = lower(DIAMOND)
        dom = DominatorTree(func)
        for block in func.reachable_blocks():
            assert dom.dominates(func.entry, block)

    def test_branch_arms_do_not_dominate_join(self):
        func = lower(DIAMOND)
        dom = DominatorTree(func)
        exit_block = next(b for b in func.blocks
                          if isinstance(b.terminator, ir.Ret))
        branch = next(b for b in func.blocks
                      if isinstance(b.terminator, ir.Branch))
        arms = branch.successors()
        for arm in arms:
            if arm is not exit_block:
                assert not dom.dominates(arm, exit_block)
        assert dom.dominates(branch, exit_block)


class TestLoops:
    def test_single_loop_found(self):
        info = LoopInfo(lower(LOOP))
        assert len(info.loops) == 1
        assert len(info.loops[0].latches) == 1

    def test_nested_loops_have_parents(self):
        info = LoopInfo(lower(NESTED))
        assert len(info.loops) == 2
        depths = sorted(loop.depth for loop in info.loops)
        assert depths == [1, 2]
        inner = max(info.loops, key=lambda l: l.depth)
        assert inner.parent is not None

    def test_straight_line_has_no_loops(self):
        info = LoopInfo(lower(DIAMOND))
        assert info.loops == []


class TestHyperblocks:
    def test_diamond_collapses_to_one_hyperblock(self):
        partition = form_hyperblocks(lower(DIAMOND))
        # entry(+diamond) should form a single hyperblock plus none extra
        # reachable from other regions: the diamond joins back.
        assert len(partition.hyperblocks) == 1

    def test_loop_body_is_separate_hyperblock(self):
        partition = form_hyperblocks(lower(LOOP))
        loop_hbs = [hb for hb in partition.hyperblocks if hb.is_loop_body]
        assert len(loop_hbs) == 1

    def test_hyperblocks_never_span_loops(self):
        partition = form_hyperblocks(lower(NESTED))
        for hb in partition.hyperblocks:
            loops = {partition.loop_info.loop_of(b) for b in hb.blocks}
            assert len(loops) == 1

    def test_inter_hyperblock_edges_target_entries(self):
        partition = form_hyperblocks(lower(NESTED))
        for hb in partition.hyperblocks:
            for _, target_block, target_hb in partition.successors(hb):
                assert target_block is target_hb.entry


class TestLiveness:
    def test_loop_variable_live_around_loop(self):
        func = lower(LOOP)
        liveness = Liveness(func)
        info = LoopInfo(func)
        header = info.loops[0].header
        # The accumulator and counter temps must be live into the header.
        assert len(liveness.live_in[header]) >= 2

    def test_return_value_live_or_local(self):
        func = lower(DIAMOND)
        liveness = Liveness(func)
        exit_block = next(b for b in func.blocks
                          if isinstance(b.terminator, ir.Ret))
        ret_value = exit_block.terminator.value
        defined_here = {i.defs() for i in exit_block.instrs}
        assert (ret_value in liveness.live_in[exit_block]
                or ret_value in defined_here)

    def test_nothing_live_out_of_exit(self):
        func = lower(DIAMOND)
        liveness = Liveness(func)
        exit_block = next(b for b in func.blocks
                          if isinstance(b.terminator, ir.Ret))
        assert liveness.live_out[exit_block] == frozenset()


class TestInliner:
    def test_flattens_call_chain(self):
        source = """
        int h(int x) { return x + 1; }
        int g(int x) { return h(x) * 2; }
        int f(int x) { return g(x) + h(x); }
        """
        lowered = lower_program(parse_program(source))
        flat = inline_program(lowered, "f")
        assert all(not isinstance(i, ir.Call) for _, i in flat.instructions())
        result = SequentialInterpreter(
            LoweredProgram({"f": flat}, lowered.globals)
        ).run("f", [10])
        assert result.return_value == (10 + 1) * 2 + (10 + 1)

    def test_per_site_stack_objects(self):
        source = """
        int scratch(int x) { int t[2]; t[0] = x; t[1] = x * 2; return t[0] + t[1]; }
        int f(int x) { return scratch(x) + scratch(x + 1); }
        """
        lowered = lower_program(parse_program(source))
        flat = inline_program(lowered, "f")
        names = [s.name for s in flat.stack_objects]
        assert len(names) == 2 and len(set(names)) == 2

    def test_recursion_rejected(self):
        source = "int f(int n) { if (n <= 1) return 1; return n * f(n - 1); }"
        lowered = lower_program(parse_program(source))
        with pytest.raises(InlineError):
            inline_program(lowered, "f")

    def test_mutual_recursion_rejected(self):
        source = """
        int g(int n);
        int f(int n) { if (n <= 0) return 0; return g(n - 1); }
        int g(int n) { return f(n); }
        """
        lowered = lower_program(parse_program(source))
        with pytest.raises(InlineError):
            inline_program(lowered, "f")

    def test_undefined_callee_rejected(self):
        source = "int g(int); int f(void) { return g(1); }"
        lowered = lower_program(parse_program(source))
        with pytest.raises(InlineError):
            inline_program(lowered, "f")
