"""AST -> CFG lowering tests, validated through the sequential oracle."""

import pytest

from repro.errors import LoweringError
from repro.frontend import parse_program
from repro.cfg import ir
from repro.cfg.lower import lower_program
from repro.sim.sequential import SequentialInterpreter


def run(source: str, entry: str, args: list):
    lowered = lower_program(parse_program(source))
    return SequentialInterpreter(lowered).run(entry, args).return_value


class TestScalars:
    def test_arithmetic(self):
        assert run("int f(int a, int b) { return a * b + a - b; }",
                   "f", [7, 3]) == 25

    def test_register_promotion(self):
        source = "int f(void) { int a = 1; a += 2; a *= 3; return a; }"
        lowered = lower_program(parse_program(source))
        func = lowered.function("f")
        # A local scalar whose address is never taken produces no memory ops.
        memops = [i for _, i in func.instructions()
                  if isinstance(i, (ir.Load, ir.Store))]
        assert memops == []
        assert run(source, "f", []) == 9

    def test_address_taken_scalar_spills(self):
        source = "int f(void) { int a = 5; int *p = &a; *p = 9; return a; }"
        lowered = lower_program(parse_program(source))
        func = lowered.function("f")
        assert func.stack_objects, "address-taken local must live in memory"
        assert run(source, "f", []) == 9

    def test_wrapping_semantics(self):
        assert run("int f(void) { char c = 127; c += 1; return c; }",
                   "f", []) == -128
        assert run("unsigned f(void) { unsigned u = 0; u -= 1; return u; }",
                   "f", []) == 2**32 - 1

    def test_division_truncates_toward_zero(self):
        assert run("int f(int a, int b) { return a / b; }", "f", [-7, 2]) == -3
        assert run("int f(int a, int b) { return a % b; }", "f", [-7, 2]) == -1

    def test_shift_semantics(self):
        assert run("int f(int a) { return a >> 1; }", "f", [-8]) == -4
        assert run("unsigned f(unsigned a) { return a >> 1; }",
                   "f", [2**32 - 8]) == (2**32 - 8) >> 1


class TestControlFlow:
    def test_if_else(self):
        src = "int f(int x) { if (x > 0) return 1; else return -1; }"
        assert run(src, "f", [5]) == 1
        assert run(src, "f", [-5]) == -1

    def test_short_circuit_and_skips_rhs(self):
        src = """
        int g_count = 0;
        int bump(void) { g_count += 1; return 1; }
        int f(int x) { if (x && bump()) return g_count; return g_count; }
        """
        assert run(src, "f", [0]) == 0
        assert run(src, "f", [1]) == 1

    def test_short_circuit_or(self):
        src = """
        int g_count = 0;
        int bump(void) { g_count += 1; return 0; }
        int f(int x) { if (x || bump()) return 100; return g_count; }
        """
        assert run(src, "f", [1]) == 100
        assert run(src, "f", [0]) == 1

    def test_ternary(self):
        src = "int f(int x) { return x ? 10 : 20; }"
        assert run(src, "f", [1]) == 10
        assert run(src, "f", [0]) == 20

    def test_nested_loops_with_break_continue(self):
        src = """
        int f(int n) {
            int s = 0; int i; int j;
            for (i = 0; i < n; i++) {
                for (j = 0; j < n; j++) {
                    if (j == i) continue;
                    if (j > 3) break;
                    s += 1;
                }
            }
            return s;
        }
        """
        expected = sum(
            1 for i in range(6) for j in range(6) if j != i and j <= 3
        )
        assert run(src, "f", [6]) == expected

    def test_do_while_executes_once(self):
        src = "int f(void) { int n = 0; do { n++; } while (0); return n; }"
        assert run(src, "f", []) == 1

    def test_fall_off_end_returns_zero(self):
        assert run("int f(void) { }", "f", []) == 0


class TestMemory:
    def test_array_roundtrip(self):
        src = """
        int a[4];
        int f(void) { a[0] = 1; a[1] = 2; a[3] = a[0] + a[1]; return a[3]; }
        """
        assert run(src, "f", []) == 3

    def test_pointer_walk(self):
        src = """
        int a[5];
        int f(void) {
            int *p = a; int i; int s = 0;
            for (i = 0; i < 5; i++) *p++ = i * i;
            for (i = 0; i < 5; i++) s += a[i];
            return s;
        }
        """
        assert run(src, "f", []) == sum(i * i for i in range(5))

    def test_narrow_store_truncates(self):
        src = """
        unsigned char b[2];
        int f(void) { b[0] = 300; return b[0]; }
        """
        assert run(src, "f", []) == 300 % 256

    def test_local_array_initializer(self):
        src = "int f(void) { int t[3] = { 4, 5, 6 }; return t[0]+t[1]+t[2]; }"
        assert run(src, "f", []) == 15

    def test_compound_assign_through_pointer_single_address_eval(self):
        src = """
        int a[4];
        int g_idx = 0;
        int next(void) { g_idx += 1; return g_idx - 1; }
        int f(void) { a[next()] += 5; return a[0] * 100 + g_idx; }
        """
        # next() must be evaluated once: a[0] == 5, g_idx == 1.
        assert run(src, "f", []) == 501


class TestCalls:
    def test_recursion_supported_sequentially(self):
        src = "int fact(int n) { if (n <= 1) return 1; return n * fact(n-1); }"
        assert run(src, "fact", [6]) == 720

    def test_void_call(self):
        src = """
        int g_x = 0;
        void set(int v) { g_x = v; }
        int f(void) { set(42); return g_x; }
        """
        assert run(src, "f", []) == 42
