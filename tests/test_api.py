"""Public API surface: compile_minic, CompiledProgram, the CLI."""

import subprocess
import sys

import pytest

from repro import compile_minic, CompiledProgram, OPT_LEVELS, ReproError
from repro.errors import FrontendError, InlineError

SOURCE = """
int a[8];
int f(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 2; s += a[i]; }
    return s;
}
"""


class TestCompileMinic:
    def test_levels_exposed(self):
        assert OPT_LEVELS == ("none", "basic", "medium", "full")

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            compile_minic(SOURCE, "f", opt_level="turbo")

    def test_unknown_entry_rejected(self):
        with pytest.raises(InlineError):
            compile_minic(SOURCE, "nosuch")

    def test_frontend_errors_propagate(self):
        with pytest.raises(FrontendError):
            compile_minic("int f( {", "f")

    def test_compiled_program_fields(self):
        program = compile_minic(SOURCE, "f", opt_level="medium")
        assert isinstance(program, CompiledProgram)
        assert program.entry == "f"
        assert program.opt_level == "medium"
        assert len(program.graph) > 0

    def test_static_counts_keys(self):
        counts = compile_minic(SOURCE, "f").static_counts()
        for key in ("nodes", "loads", "stores", "muxes", "combines",
                    "token_generators"):
            assert key in counts

    def test_fresh_memory_per_simulation(self):
        program = compile_minic(SOURCE, "f")
        first = program.simulate([4])
        second = program.simulate([4])
        assert first.return_value == second.return_value
        assert first.memory is not second.memory

    def test_memory_reuse_when_passed(self):
        program = compile_minic(SOURCE, "f")
        image = program.new_memory()
        result = program.simulate([4], memory=image)
        assert result.memory is image


class TestCli:
    def run_cli(self, tmp_path, *argv):
        path = tmp_path / "prog.c"
        path.write_text(SOURCE)
        return subprocess.run(
            [sys.executable, "-m", "repro", str(path), *argv],
            capture_output=True, text=True,
        )

    def test_basic_run(self, tmp_path):
        proc = self.run_cli(tmp_path, "--entry", "f", "--args", "4")
        assert proc.returncode == 0, proc.stderr
        assert "result  : 12" in proc.stdout

    def test_compare_flag(self, tmp_path):
        proc = self.run_cli(tmp_path, "--entry", "f", "--args", "5",
                            "--compare")
        assert proc.returncode == 0
        assert "MATCH" in proc.stdout

    def test_dump_graph(self, tmp_path):
        out = tmp_path / "g.dot"
        proc = self.run_cli(tmp_path, "--entry", "f", "--args", "1",
                            "--dump-graph", str(out))
        assert proc.returncode == 0
        assert out.read_text().startswith("digraph")

    def test_missing_file(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", str(tmp_path / "nope.c")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 2
        assert "error:" in proc.stderr


class TestPrinter:
    def test_text_dump_mentions_every_node(self):
        from repro.pegasus.printer import dump_text
        program = compile_minic(SOURCE, "f")
        text = dump_text(program.graph)
        assert f"({len(program.graph)} nodes)" in text

    def test_dot_dump_is_graphviz(self):
        from repro.pegasus.printer import dump_dot
        program = compile_minic(SOURCE, "f")
        dot = dump_dot(program.graph)
        assert dot.startswith("digraph")
        assert "subgraph cluster_" in dot
        assert dot.rstrip().endswith("}")
