"""CompilationReport schema: every stage and pass is accounted for."""

from __future__ import annotations

import json

from repro.pipeline import CompilerDriver, PipelineConfig
from repro.pipeline.report import IRSnapshot

SOURCE = """
int a[16];

int f(int n)
{
    int i;
    for (i = 0; i < n; i++) a[i] = a[i] + a[i];
    a[0] = a[0];
    return a[n - 1];
}
"""


def _full_report():
    config = PipelineConfig.make(opt_level="full", verify="every-pass")
    return CompilerDriver(config).compile(SOURCE, "f").report


class TestPassRecords:
    def test_every_pass_has_timing_and_deltas(self):
        report = _full_report()
        assert len(report.passes) > 10  # the full pipeline, incl. fixpoint rounds
        for record in report.passes:
            assert record.wall_time >= 0.0
            assert isinstance(record.changes, int) and record.changes >= 0
            assert isinstance(record.before, IRSnapshot)
            assert isinstance(record.after, IRSnapshot)
            # Deltas derive from real snapshots on both sides.
            assert record.after.nodes - record.before.nodes == record.nodes_delta
            assert record.verified  # every-pass policy

    def test_fixpoint_rounds_are_qualified(self):
        report = _full_report()
        grouped = [r for r in report.passes if r.group == "redundancy"]
        assert grouped, "the full pipeline contains the redundancy fixpoint"
        assert all(r.name.startswith("redundancy[") for r in grouped)
        rounds = {r.name.split("[")[1].split("]")[0] for r in grouped}
        assert "0" in rounds

    def test_deltas_sum_to_stage_totals(self):
        report = _full_report()
        built = report.stage("build").after.nodes
        final = report.stage("optimize").after.nodes
        assert built + sum(r.nodes_delta for r in report.passes) == final


class TestStageRecords:
    def test_all_stages_timed(self):
        report = _full_report()
        for record in report.stages:
            assert record.wall_time >= 0.0
        assert report.total_wall_time >= sum(
            r.wall_time for r in report.stages) * 0.5

    def test_verify_accounting(self):
        report = _full_report()
        # Post-build verify + one per pass + the closing check.
        assert report.verify_calls == len(report.passes) + 2
        assert report.verify_time > 0.0


class TestCountersAndSerialization:
    def test_counters_are_the_pass_statistics(self):
        report = _full_report()
        # The §2-style removals above must register applicability counts.
        assert report.counters, "full pipeline on a redundant kernel counts"
        assert all(isinstance(v, int) for v in report.counters.values())

    def test_to_dict_is_json_serializable(self):
        report = _full_report()
        payload = json.dumps(report.to_dict())
        decoded = json.loads(payload)
        assert decoded["opt_level"] == "full"
        assert decoded["verify"] == "every-pass"
        assert len(decoded["passes"]) == len(report.passes)
        assert len(decoded["stages"]) == 8

    def test_render_mentions_stages_and_passes(self):
        text = _full_report().render()
        assert "stages" in text and "optimization passes" in text
        assert "Δnodes" in text
        assert "verifier runs" in text
