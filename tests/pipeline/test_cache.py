"""Persistent compilation cache: hits, misses, invalidation, collisions."""

from __future__ import annotations

import pytest

from repro.pegasus.printer import dump_text
from repro.pipeline import CompilationCache, CompilerDriver, PipelineConfig

SOURCE = """
int buf[8];

int g(int n)
{
    int i;
    for (i = 0; i < 4; i++) buf[i] = i + n;
    return buf[0] + buf[3];
}
"""


@pytest.fixture
def cache(tmp_path):
    return CompilationCache(tmp_path / "cc")


class TestHitMiss:
    def test_first_compile_misses_then_hits(self, cache):
        config = PipelineConfig.make(opt_level="full", verify="final")
        first = CompilerDriver(config, cache=cache).compile(SOURCE, "g")
        assert first.report.cache_status == "miss"
        assert cache.stats()["entries"] == 1
        second = CompilerDriver(config, cache=cache).compile(SOURCE, "g")
        assert second.report.cache_status == "hit"
        assert second is not first  # a fresh unpickled object...
        assert dump_text(second.graph) == dump_text(first.graph)  # ...same graph

    def test_cached_program_still_runs(self, cache):
        config = PipelineConfig.make(opt_level="full", verify="final")
        CompilerDriver(config, cache=cache).compile(SOURCE, "g")
        cached = CompilerDriver(config, cache=cache).compile(SOURCE, "g")
        assert cached.simulate([5]).return_value == \
            cached.run_sequential([5]).return_value

    def test_without_cache_report_is_uncached(self):
        program = CompilerDriver().compile(SOURCE, "g")
        assert program.report.cache_status == "uncached"


class TestKeying:
    def test_source_change_invalidates(self, cache):
        config = PipelineConfig.make()
        a = cache.key(SOURCE, "g", config)
        b = cache.key(SOURCE.replace("i + n", "i * n"), "g", config)
        assert a != b

    def test_every_output_relevant_knob_is_in_the_key(self, cache):
        base = PipelineConfig.make(opt_level="full")
        variants = [
            PipelineConfig.make(opt_level="medium"),
            PipelineConfig.make(opt_level="full", unroll_limit=8),
            PipelineConfig.make(opt_level="full",
                                entry_points_to={"p": ["buf"]}),
        ]
        keys = {cache.key(SOURCE, "g", cfg) for cfg in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_verify_policy_and_filename_do_not_fragment_the_cache(self, cache):
        strict = PipelineConfig.make(verify="every-pass", filename="a.c")
        relaxed = PipelineConfig.make(verify="final", filename="b.c")
        assert cache.key(SOURCE, "g", strict) == cache.key(SOURCE, "g", relaxed)


class TestRobustness:
    def test_corrupt_entry_is_a_miss_and_removed(self, cache):
        config = PipelineConfig.make()
        key = cache.key(SOURCE, "g", config)
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()

    def test_clear_removes_everything(self, cache):
        config = PipelineConfig.make(verify="final")
        CompilerDriver(config, cache=cache).compile(SOURCE, "g")
        assert cache.stats()["entries"] == 1
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0


class TestHarnessCacheRegression:
    """The old harness cache keyed only (name, level): two configurations
    of the same kernel silently shared one artifact.  The fingerprint
    must separate them."""

    @pytest.fixture(autouse=True)
    def _isolated(self, tmp_path, monkeypatch):
        from repro.harness import cache as harness_cache
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "hc"))
        harness_cache.clear_memory()
        yield
        harness_cache.clear_memory()

    def test_unroll_limit_distinguishes_compilations(self):
        from repro.harness.cache import compiled
        rolled = compiled("adpcm_e", "full")
        unrolled = compiled("adpcm_e", "full", unroll_limit=8)
        assert rolled.program is not unrolled.program
        # And repeated lookups still share within each configuration.
        assert compiled("adpcm_e", "full").program is rolled.program
        assert compiled("adpcm_e", "full",
                        unroll_limit=8).program is unrolled.program

    def test_points_to_distinguishes_compilations(self):
        from repro.harness.cache import compile_source_cached
        source = """
        int table[16];
        int h(int *p, int n) { table[n] = *p + 1; return table[n]; }
        """
        plain = compile_source_cached(source, "h", level="medium")
        annotated = compile_source_cached(source, "h", level="medium",
                                          entry_points_to={"p": ["table"]})
        assert plain is not annotated
        # Same config again: in-process layer returns the same object.
        assert compile_source_cached(source, "h", level="medium") is plain

    def test_in_process_layer_survives_disk_layer(self):
        from repro.harness.cache import compiled
        first = compiled("li", "none")
        second = compiled("li", "none")
        assert first.program is second.program


class TestParallelCompile:
    def test_sequential_fallback_populates_cache(self, cache):
        from repro.pipeline.parallel import compile_kernels
        results = compile_kernels(["li", "adpcm_e"], levels=("none",),
                                  cache=cache, parallel=False)
        assert set(results) == {("li", "none"), ("adpcm_e", "none")}
        assert all(p is not None for p in results.values())
        assert cache.stats()["entries"] == 2

    def test_warm_results_load_from_cache(self, cache):
        from repro.pipeline.parallel import compile_kernels
        compile_kernels(["li"], levels=("none",), cache=cache,
                        parallel=False)
        hits_before = cache.hits
        again = compile_kernels(["li"], levels=("none",), cache=cache,
                                parallel=False)
        assert cache.hits > hits_before
        assert again[("li", "none")] is not None
