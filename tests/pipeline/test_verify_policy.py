"""Verification-policy matrix: when does verify_graph actually run?

The report's ``verify_calls`` counter is incremented by every policy-
driven ``verify_graph`` invocation (post-build stage check, per-pass
checks, the closing check), so it is the observable for this matrix.
"""

from __future__ import annotations

import pytest

from repro.pegasus.printer import dump_text
from repro.pipeline import CompilerDriver, PipelineConfig

SOURCE = """
int v[8];

int f(int n)
{
    int i;
    for (i = 0; i < n; i++) v[i] = v[i] * 2 + 1;
    return v[0];
}
"""


def _compile(policy: str, level: str = "full"):
    config = PipelineConfig.make(opt_level=level, verify=policy)
    return CompilerDriver(config).compile(SOURCE, "f")


class TestPolicyMatrix:
    def test_off_never_verifies(self):
        report = _compile("off").report
        assert report.verify_calls == 0
        assert report.verify_time == 0.0

    def test_final_verifies_exactly_once(self):
        report = _compile("final").report
        assert report.verify_calls == 1

    def test_final_at_level_none_checks_the_built_graph(self):
        report = _compile("final", level="none").report
        assert report.verify_calls == 1
        assert report.stage("verify").detail["ran"] is True

    def test_every_pass_verifies_after_each_execution(self):
        report = _compile("every-pass").report
        # Post-build check + one per pass execution + the closing check.
        assert report.verify_calls == len(report.passes) + 2
        assert all(record.verified for record in report.passes)

    def test_levels_sits_between_final_and_every_pass(self):
        levels = _compile("levels").report
        every = _compile("every-pass").report
        assert 1 < levels.verify_calls < every.verify_calls
        # Inner fixpoint executions are not individually verified.
        fixpoint_runs = [r for r in levels.passes if r.group is not None]
        assert fixpoint_runs
        assert not any(r.verified for r in fixpoint_runs)

    @pytest.mark.parametrize("policy", ("off", "final", "levels"))
    def test_relaxed_policies_produce_the_same_graph(self, policy):
        assert dump_text(_compile(policy).graph) == \
            dump_text(_compile("every-pass").graph)

    def test_policy_is_not_part_of_the_cache_identity(self):
        strict = PipelineConfig.make(verify="every-pass")
        relaxed = PipelineConfig.make(verify="final")
        assert strict.fingerprint(SOURCE, "f") == \
            relaxed.fingerprint(SOURCE, "f")


class TestPolicyCost:
    def test_verification_time_is_only_paid_when_asked(self):
        every = _compile("every-pass").report
        off = _compile("off").report
        assert every.verify_time > 0.0
        assert off.verify_time == 0.0
        # The strict policy runs the verifier tens of times on the full
        # pipeline; its accounted cost must exceed the single final check.
        final = _compile("final").report
        assert every.verify_calls > 10 * final.verify_calls
