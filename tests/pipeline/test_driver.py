"""CompilerDriver: stage ordering and equivalence with compile_minic."""

from __future__ import annotations

import pytest

from repro import compile_minic
from repro.api import OPT_LEVELS
from repro.pegasus.printer import dump_text
from repro.pipeline import STAGE_NAMES, CompilerDriver, PipelineConfig
from repro.pipeline.config import ConfigError

SOURCE = """
int data[32];

int kernel(int n)
{
    int i; int total = 0;
    for (i = 0; i < n; i++) data[i] = i * 3;
    for (i = 0; i < n; i++) total += data[i];
    return total;
}
"""


class TestStages:
    def test_declared_stage_order(self):
        assert STAGE_NAMES == ("parse", "unroll", "lower", "inline",
                               "hyperblocks", "build", "verify", "optimize")

    def test_report_records_every_stage_in_order(self):
        program = CompilerDriver().compile(SOURCE, "kernel")
        assert program.report.stage_names == list(STAGE_NAMES)

    def test_stage_details(self):
        program = CompilerDriver().compile(SOURCE, "kernel")
        report = program.report
        assert report.stage("parse").detail["functions"] == 1
        assert report.stage("hyperblocks").detail["hyperblocks"] >= 3
        assert report.stage("build").after is not None
        assert report.stage("optimize").after.nodes == len(program.graph)

    def test_unroll_stage_applies_only_with_limit(self):
        plain = CompilerDriver().compile(SOURCE, "kernel")
        assert plain.report.stage("unroll").detail["applied"] is False
        config = PipelineConfig.make(unroll_limit=8)
        unrolled = CompilerDriver(config).compile(SOURCE, "kernel")
        assert unrolled.report.stage("unroll").detail["applied"] is True

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            PipelineConfig.make(opt_level="extreme")
        with pytest.raises(ConfigError):
            PipelineConfig.make(verify="sometimes")


class TestCompileMinicEquivalence:
    """compile_minic is a wrapper over the driver: graphs must be
    node-for-node identical at every optimization level, and the driver's
    relaxed verification policies must not change the graph either."""

    @pytest.mark.parametrize("level", OPT_LEVELS)
    def test_driver_matches_compile_minic(self, level):
        wrapper = compile_minic(SOURCE, "kernel", opt_level=level)
        config = PipelineConfig.make(opt_level=level, verify="every-pass")
        direct = CompilerDriver(config).compile(SOURCE, "kernel")
        assert dump_text(wrapper.graph) == dump_text(direct.graph)

    @pytest.mark.parametrize("level", OPT_LEVELS)
    @pytest.mark.parametrize("policy", ("levels", "final", "off"))
    def test_verification_policy_never_changes_the_graph(self, level, policy):
        strict = compile_minic(SOURCE, "kernel", opt_level=level)
        config = PipelineConfig.make(opt_level=level, verify=policy)
        relaxed = CompilerDriver(config).compile(SOURCE, "kernel")
        assert dump_text(strict.graph) == dump_text(relaxed.graph)

    def test_compile_minic_signature_unchanged(self):
        program = compile_minic(SOURCE, "kernel", opt_level="medium",
                                entry_points_to=None, filename="<t>",
                                unroll_limit=0)
        oracle = program.run_sequential([10])
        spatial = program.simulate([10])
        assert spatial.return_value == oracle.return_value

    def test_compile_minic_rejects_bad_level(self):
        with pytest.raises(ValueError):
            compile_minic(SOURCE, "kernel", opt_level="aggressive")


class TestEventLimitPlumbing:
    def test_explicit_zero_event_limit_is_honored(self):
        from repro.errors import SimulationError
        program = compile_minic(SOURCE, "kernel", opt_level="none")
        with pytest.raises(SimulationError):
            program.simulate([4], event_limit=0)

    def test_default_event_limit_still_applies(self):
        program = compile_minic(SOURCE, "kernel")
        result = program.simulate([4])
        assert result.return_value == program.run_sequential([4]).return_value
