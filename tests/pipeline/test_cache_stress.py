"""Multi-process hammer on the compilation cache's publish path.

Several worker processes concurrently ``put``/``get`` a small shared
key set into one store root. The atomic same-directory rename publish
must guarantee that readers only ever observe complete artifacts (a
torn pickle would unpickle to garbage or fail), that racing warmers of
an existing key skip the rewrite, and that no ``*.tmp`` droppings
survive a clean run.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

from repro.pipeline.cache import CompilationCache

SRC = str(Path(__file__).resolve().parents[2] / "src")

WORKERS = 4
ROUNDS = 60
KEYS = 8

# Each payload is self-validating: a reader that ever saw a torn or
# mixed write would fail the digest check.
WORKER_SCRIPT = """\
import hashlib
import sys

from repro.pipeline.cache import CompilationCache

root, worker = sys.argv[1], int(sys.argv[2])
rounds, keys = int(sys.argv[3]), int(sys.argv[4])
cache = CompilationCache(root)
for i in range(rounds):
    slot = (worker + i) % keys
    key = hashlib.sha256(f"stress-{slot}".encode()).hexdigest()
    blob = f"w{worker}-r{i}-" + "x" * 8192
    cache.put(key, {"slot": slot, "blob": blob,
                    "digest": hashlib.sha256(blob.encode()).hexdigest()})
    got = cache.get(key)
    assert got is not None, f"round {i}: {key[:12]} vanished"
    assert got["slot"] == slot, f"round {i}: wrong artifact under key"
    assert hashlib.sha256(got["blob"].encode()).hexdigest() \\
        == got["digest"], f"round {i}: torn artifact"
print(f"worker {worker}: {rounds} rounds ok")
"""


def test_concurrent_put_get_stress(tmp_path):
    script = tmp_path / "worker.py"
    script.write_text(WORKER_SCRIPT)
    root = tmp_path / "store"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    procs = [
        subprocess.Popen(
            [sys.executable, str(script), str(root), str(worker),
             str(ROUNDS), str(KEYS)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        for worker in range(WORKERS)
    ]
    for proc in procs:
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == 0, out

    cache = CompilationCache(root)
    # Every key holds exactly one complete, self-consistent artifact.
    assert cache.stats()["entries"] == KEYS
    for slot in range(KEYS):
        key = hashlib.sha256(f"stress-{slot}".encode()).hexdigest()
        got = cache.get(key)
        assert got is not None
        assert got["slot"] == slot
        assert hashlib.sha256(got["blob"].encode()).hexdigest() \
            == got["digest"]
    # No interrupted-write droppings from a clean run.
    assert cache.stale_tmp() == []


def test_put_skips_rewrite_of_existing_key(tmp_path):
    cache = CompilationCache(tmp_path / "store")
    key = hashlib.sha256(b"skip").hexdigest()
    path = cache.put(key, {"v": 1})
    before = path.stat().st_mtime_ns
    again = cache.put(key, {"v": 2})
    assert again == path
    # Content-addressed: an existing entry is never rewritten, so N
    # racing warmers cost one write.
    assert path.stat().st_mtime_ns == before
    assert cache.get(key) == {"v": 1}


def test_interrupted_write_leaves_recoverable_droppings(tmp_path):
    cache = CompilationCache(tmp_path / "store")
    key = hashlib.sha256(b"torn").hexdigest()
    cache.put(key, {"v": 1})
    # Simulate a writer killed between mkstemp and rename.
    dropping = cache.path(key).parent / "deadbeef.tmp"
    dropping.write_bytes(b"partial")
    assert cache.stale_tmp() == [dropping]
    # The published artifact is unaffected.
    assert cache.get(key) == {"v": 1}
    cache.clear()
    assert cache.stale_tmp() == []
