"""Parallel kernel compilation: per-job isolation and failure reporting."""

import os

import pytest

from repro.errors import ParallelCompilationError
from repro.pipeline.cache import CompilationCache
from repro.pipeline.parallel import compile_kernels, run_jobs
from repro.programs import Kernel

GOOD_SOURCE = """
int f(int n) { return n * 3 + 1; }
"""

# Parses, but `return` disagrees with the declared void type: the
# compiler rejects it deterministically (a ReproError, not a crash).
BAD_SOURCE = """
void f(int n) { return n; }
"""


def fake_registry(monkeypatch):
    kernels = {
        "goodk": Kernel(name="goodk", family="synthetic",
                        source=GOOD_SOURCE, entry="f"),
        "badk": Kernel(name="badk", family="synthetic",
                       source=BAD_SOURCE, entry="f"),
    }

    def get_kernel(name):
        return kernels[name]

    monkeypatch.setattr("repro.programs.get_kernel", get_kernel)
    return kernels


class TestBatchCompletion:
    def test_all_good_kernels_compile(self, monkeypatch, tmp_path):
        fake_registry(monkeypatch)
        results = compile_kernels(["goodk"], levels=("none", "full"),
                                  cache=CompilationCache(tmp_path),
                                  parallel=False)
        assert set(results) == {("goodk", "none"), ("goodk", "full")}
        assert results[("goodk", "none")].graph is not None

    def test_one_bad_kernel_does_not_abort_the_batch(self, monkeypatch,
                                                     tmp_path):
        fake_registry(monkeypatch)
        cache = CompilationCache(tmp_path)
        with pytest.raises(ParallelCompilationError) as info:
            compile_kernels(["goodk", "badk"], levels=("none",),
                            cache=cache, parallel=False)
        error = info.value
        # Only the bad kernel failed, and it is named with its level.
        assert set(error.failures) == {("badk", "none")}
        assert "badk/none" in str(error)
        # The batch drained: the good kernel's artifact landed in cache,
        # so a retry without the bad kernel is warm.
        results = compile_kernels(["goodk"], levels=("none",),
                                  cache=cache, parallel=False)
        assert ("goodk", "none") in results

    def test_failures_carry_the_original_exception(self, monkeypatch,
                                                   tmp_path):
        fake_registry(monkeypatch)
        with pytest.raises(ParallelCompilationError) as info:
            compile_kernels(["badk"], levels=("none",),
                            cache=CompilationCache(tmp_path),
                            parallel=False)
        ((key, cause),) = info.value.failures.items()
        assert key == ("badk", "none")
        assert isinstance(cause, Exception)
        assert str(cause) in str(info.value)

    def test_warm_cache_short_circuits(self, monkeypatch, tmp_path):
        fake_registry(monkeypatch)
        cache = CompilationCache(tmp_path)
        first = compile_kernels(["goodk"], levels=("none",), cache=cache,
                                parallel=False)
        second = compile_kernels(["goodk"], levels=("none",), cache=cache,
                                 parallel=False)
        assert first.keys() == second.keys()


class TestRealRegistryParallel:
    def test_parallel_matches_serial(self, tmp_path):
        # A real (tiny) kernel through the pool path; in sandboxes
        # without process primitives this transparently falls back to
        # in-process compilation — the result dict must be identical.
        cache = CompilationCache(tmp_path)
        parallel = compile_kernels(["mpeg2_d", "ijpeg"], levels=("none",),
                                   cache=cache, parallel=True,
                                   max_workers=2)
        serial = compile_kernels(["mpeg2_d", "ijpeg"], levels=("none",),
                                 cache=cache, parallel=False)
        assert parallel.keys() == serial.keys()
        assert set(parallel) == {("mpeg2_d", "none"), ("ijpeg", "none")}


def _square(x):
    return x * x


def _touch_and_maybe_fail(workdir, index, bad):
    """Records its execution, then fails when ``index == bad``."""
    with open(os.path.join(workdir, f"ran-{index}"), "a") as handle:
        handle.write("x")
    if index == bad:
        raise ValueError(f"job {index} is bad")
    return index


class TestRunJobs:
    def test_results_in_input_order(self):
        assert run_jobs(_square, [(3,), (1,), (2,)],
                        max_workers=2) == [9, 1, 4]

    def test_serial_fallback_matches(self):
        jobs = [(i,) for i in range(5)]
        assert run_jobs(_square, jobs, parallel=False) == \
            run_jobs(_square, jobs, max_workers=2)

    def test_failed_jobs_execute_exactly_once(self, tmp_path):
        """A worker-raised job is reported, never re-run in-process.

        The old wrapper re-executed every failed job serially, so a
        deterministic failure ran twice; the marker files count actual
        executions.
        """
        jobs = [(str(tmp_path), index, 2) for index in range(4)]
        with pytest.raises(ValueError, match="job 2 is bad"):
            run_jobs(_touch_and_maybe_fail, jobs, max_workers=2)
        for index in range(4):
            marker = tmp_path / f"ran-{index}"
            assert marker.read_text() == "x", \
                f"job {index} executed {len(marker.read_text())} times"

    def test_failure_raises_but_batch_drains_first(self, tmp_path):
        jobs = [(str(tmp_path), index, 0) for index in range(4)]
        with pytest.raises(ValueError, match="job 0 is bad"):
            run_jobs(_touch_and_maybe_fail, jobs, max_workers=2)
        # Every job after the failing one still ran (no aborted tail).
        for index in range(4):
            assert (tmp_path / f"ran-{index}").exists()

    def test_serial_path_raises_too(self, tmp_path):
        jobs = [(str(tmp_path), index, 1) for index in range(2)]
        with pytest.raises(ValueError, match="job 1 is bad"):
            run_jobs(_touch_and_maybe_fail, jobs, parallel=False)


class TestCompileFailuresNotRerun:
    def test_worker_compile_failure_not_recompiled_in_process(
            self, tmp_path, monkeypatch):
        """A kernel that failed in a worker is reported, not re-run.

        The pool stage is stubbed to report ``badk`` as a worker-raised
        failure; the in-process drain must then compile only ``goodk``
        and surface the worker's original exception for ``badk``.
        """
        fake_registry(monkeypatch)
        import repro.pipeline.parallel as parallel_module
        from repro.errors import ReproError

        worker_error = ReproError("failed inside the worker")
        in_process = []
        real = parallel_module._compile_job

        def fake_pool(pending, workers):
            return {("badk", "none"): worker_error}

        def counting(job):
            in_process.append(job[:2])
            return real(job)

        monkeypatch.setattr(parallel_module, "_compile_in_pool", fake_pool)
        monkeypatch.setattr(parallel_module, "_compile_job", counting)
        cache = CompilationCache(tmp_path)
        with pytest.raises(ParallelCompilationError) as info:
            compile_kernels(["goodk", "badk"], levels=("none",),
                            cache=cache, parallel=True, max_workers=2)
        assert info.value.failures[("badk", "none")] is worker_error
        # badk was never handed to the in-process compile path.
        assert in_process == [("goodk", "none")]


class TestErrorFormatting:
    def test_message_lists_every_failure(self):
        error = ParallelCompilationError({
            ("go", "full"): ValueError("boom"),
            ("li", "none"): RuntimeError("bang"),
        })
        text = str(error)
        assert "2 kernel compilations failed" in text
        assert "go/full: boom" in text
        assert "li/none: bang" in text
        assert error.failures[("go", "full")].args == ("boom",)
