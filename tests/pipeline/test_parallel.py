"""Parallel kernel compilation: per-job isolation and failure reporting."""

import pytest

from repro.errors import ParallelCompilationError
from repro.pipeline.cache import CompilationCache
from repro.pipeline.parallel import compile_kernels
from repro.programs import Kernel

GOOD_SOURCE = """
int f(int n) { return n * 3 + 1; }
"""

# Parses, but `return` disagrees with the declared void type: the
# compiler rejects it deterministically (a ReproError, not a crash).
BAD_SOURCE = """
void f(int n) { return n; }
"""


def fake_registry(monkeypatch):
    kernels = {
        "goodk": Kernel(name="goodk", family="synthetic",
                        source=GOOD_SOURCE, entry="f"),
        "badk": Kernel(name="badk", family="synthetic",
                       source=BAD_SOURCE, entry="f"),
    }

    def get_kernel(name):
        return kernels[name]

    monkeypatch.setattr("repro.programs.get_kernel", get_kernel)
    return kernels


class TestBatchCompletion:
    def test_all_good_kernels_compile(self, monkeypatch, tmp_path):
        fake_registry(monkeypatch)
        results = compile_kernels(["goodk"], levels=("none", "full"),
                                  cache=CompilationCache(tmp_path),
                                  parallel=False)
        assert set(results) == {("goodk", "none"), ("goodk", "full")}
        assert results[("goodk", "none")].graph is not None

    def test_one_bad_kernel_does_not_abort_the_batch(self, monkeypatch,
                                                     tmp_path):
        fake_registry(monkeypatch)
        cache = CompilationCache(tmp_path)
        with pytest.raises(ParallelCompilationError) as info:
            compile_kernels(["goodk", "badk"], levels=("none",),
                            cache=cache, parallel=False)
        error = info.value
        # Only the bad kernel failed, and it is named with its level.
        assert set(error.failures) == {("badk", "none")}
        assert "badk/none" in str(error)
        # The batch drained: the good kernel's artifact landed in cache,
        # so a retry without the bad kernel is warm.
        results = compile_kernels(["goodk"], levels=("none",),
                                  cache=cache, parallel=False)
        assert ("goodk", "none") in results

    def test_failures_carry_the_original_exception(self, monkeypatch,
                                                   tmp_path):
        fake_registry(monkeypatch)
        with pytest.raises(ParallelCompilationError) as info:
            compile_kernels(["badk"], levels=("none",),
                            cache=CompilationCache(tmp_path),
                            parallel=False)
        ((key, cause),) = info.value.failures.items()
        assert key == ("badk", "none")
        assert isinstance(cause, Exception)
        assert str(cause) in str(info.value)

    def test_warm_cache_short_circuits(self, monkeypatch, tmp_path):
        fake_registry(monkeypatch)
        cache = CompilationCache(tmp_path)
        first = compile_kernels(["goodk"], levels=("none",), cache=cache,
                                parallel=False)
        second = compile_kernels(["goodk"], levels=("none",), cache=cache,
                                 parallel=False)
        assert first.keys() == second.keys()


class TestRealRegistryParallel:
    def test_parallel_matches_serial(self, tmp_path):
        # A real (tiny) kernel through the pool path; in sandboxes
        # without process primitives this transparently falls back to
        # in-process compilation — the result dict must be identical.
        cache = CompilationCache(tmp_path)
        parallel = compile_kernels(["mpeg2_d", "ijpeg"], levels=("none",),
                                   cache=cache, parallel=True,
                                   max_workers=2)
        serial = compile_kernels(["mpeg2_d", "ijpeg"], levels=("none",),
                                 cache=cache, parallel=False)
        assert parallel.keys() == serial.keys()
        assert set(parallel) == {("mpeg2_d", "none"), ("ijpeg", "none")}


class TestErrorFormatting:
    def test_message_lists_every_failure(self):
        error = ParallelCompilationError({
            ("go", "full"): ValueError("boom"),
            ("li", "none"): RuntimeError("bang"),
        })
        text = str(error)
        assert "2 kernel compilations failed" in text
        assert "go/full: boom" in text
        assert "li/none: bang" in text
        assert error.failures[("go", "full")].args == ("boom",)
