"""Hand-built Pegasus graphs that wedge deterministically.

Shared by the forensics tests and the CI smoke test: small synthetic
circuits whose deadlock shape (starved chain vs circular wait) is known
by construction, so assertions can name the exact starved port and stuck
producer the report must identify.
"""

from __future__ import annotations

from repro.frontend import types as ty
from repro.pegasus import nodes as N
from repro.pegasus.graph import Graph


def starved_chain_graph():
    """A linear token chain whose only token dies in a false-predicate eta.

    ``init -> eta(pred=0) -> combine(held, eta) -> return``: the eta
    consumes the start token and drops it (predicate is constant false),
    so the combine holds its other token forever and the return starves.
    Returns ``(graph, nodes)`` with the named nodes for assertions.
    """
    graph = Graph("starved-chain")
    init = graph.add(N.InitialTokenNode())
    held = graph.add(N.InitialTokenNode())
    pred = graph.add(N.ConstNode(0, ty.INT))
    eta = graph.add(N.EtaNode(None, None, None, value_class=N.TOKEN))
    graph.set_input(eta, 0, init.out())
    graph.set_input(eta, 1, pred.out())
    combine = graph.add(N.CombineNode([None, None]))
    graph.set_input(combine, 0, held.out())
    graph.set_input(combine, 1, eta.out())
    ret = graph.add(N.ReturnNode(None, None, None))
    graph.set_input(ret, 0, combine.out())
    graph.return_node = ret
    return graph, {"init": init, "held": held, "eta": eta,
                   "combine": combine, "ret": ret}


def cyclic_wait_graph():
    """Two token merges waiting on each other: a circular wait.

    Merge ``a`` (entry from a never-firing eta, back edge from ``b``) and
    merge ``b`` (fed only by ``a``) form a cycle in the wait-for graph;
    neither ever receives a value because the eta drops the start token.
    Returns ``(graph, nodes)``.
    """
    graph = Graph("cyclic-wait")
    init = graph.add(N.InitialTokenNode())
    pred = graph.add(N.ConstNode(0, ty.INT))
    eta = graph.add(N.EtaNode(None, None, None, value_class=N.TOKEN))
    graph.set_input(eta, 0, init.out())
    graph.set_input(eta, 1, pred.out())
    a = graph.add(N.MergeNode(None, 2, value_class=N.TOKEN))
    a.back_inputs.add(1)
    graph.set_input(a, 0, eta.out())
    b = graph.add(N.MergeNode(None, 1, value_class=N.TOKEN))
    graph.set_input(b, 0, a.out())
    graph.set_input(a, 1, b.out())
    ret = graph.add(N.ReturnNode(None, None, None))
    graph.set_input(ret, 0, b.out())
    graph.return_node = ret
    return graph, {"eta": eta, "a": a, "b": b, "ret": ret}
