"""Deadlock forensics: wait-for analysis, reports, post-mortems."""

import json

import pytest

from repro import compile_minic
from repro.errors import DeadlockError, EventLimitError
from repro.resilience.forensics import (
    BlockedNode,
    DeadlockReport,
    build_deadlock_report,
    dump_postmortem,
)
from repro.sim.dataflow import DataflowSimulator

from tests.resilience.fixtures import cyclic_wait_graph, starved_chain_graph


def wedge(graph) -> DeadlockError:
    with pytest.raises(DeadlockError) as info:
        DataflowSimulator(graph).run([])
    return info.value


class TestStarvedChain:
    def test_report_attached_to_the_error(self):
        graph, _ = starved_chain_graph()
        error = wedge(graph)
        assert isinstance(error.report, DeadlockReport)
        assert error.report.graph_name == "starved-chain"
        assert error.report.events_drained

    def test_pending_is_structured(self):
        graph, nodes = starved_chain_graph()
        error = wedge(graph)
        assert error.pending and all(isinstance(entry, BlockedNode)
                                     for entry in error.pending)
        assert {entry.node_id for entry in error.pending} \
            >= {nodes["combine"].id, nodes["ret"].id}

    def test_names_starved_port_and_stuck_producer(self):
        # The acceptance criterion: the combine is starved on in1, and the
        # producer that never delivered is the false-predicate eta.
        graph, nodes = starved_chain_graph()
        report = wedge(graph).report
        entry = report.blocked_by_id(nodes["combine"].id)
        assert entry is not None
        (missing,) = entry.missing
        assert missing.slot == 1
        assert missing.kind == "token"
        assert missing.producer_id == nodes["eta"].id
        assert missing.producer_label == "eta"

    def test_empty_port_nodes_are_reported(self):
        # The old DeadlockError.pending only showed nodes with non-empty
        # queues; the actual blocker (the drained eta) has none.
        graph, nodes = starved_chain_graph()
        report = wedge(graph).report
        entry = report.blocked_by_id(nodes["eta"].id)
        assert entry is not None
        assert entry.queued == ()
        assert entry.missing[0].producer_label == "*"

    def test_holders_report_their_queues(self):
        graph, nodes = starved_chain_graph()
        report = wedge(graph).report
        entry = report.blocked_by_id(nodes["combine"].id)
        assert entry.queued == ((0, 1),)  # the held initial token

    def test_provenance_walks_to_the_root_cause(self):
        graph, nodes = starved_chain_graph()
        report = wedge(graph).report
        ids = [node_id for node_id, _, _ in report.provenance]
        assert ids == [nodes["ret"].id, nodes["combine"].id,
                       nodes["eta"].id]

    def test_no_cycle_in_a_starved_chain(self):
        graph, _ = starved_chain_graph()
        report = wedge(graph).report
        assert report.stuck_cycle == []
        assert "starved chain" in report.render()

    def test_render_is_human_readable(self):
        graph, _ = starved_chain_graph()
        error = wedge(graph)
        text = error.report.render()
        assert "deadlock forensics for 'starved-chain'" in text
        assert "blocked nodes" in text
        assert "provenance" in text
        assert "eta#" in text
        # The exception message itself stays useful without the report.
        assert "waiting nodes:" in str(error)


class TestCircularWait:
    def test_cycle_is_detected_and_minimal(self):
        graph, nodes = cyclic_wait_graph()
        report = wedge(graph).report
        assert sorted(report.stuck_cycle) \
            == sorted([nodes["a"].id, nodes["b"].id])

    def test_render_shows_the_cycle(self):
        graph, _ = cyclic_wait_graph()
        text = wedge(graph).report.render()
        assert "stuck cycle: " in text
        assert " -> " in text

    def test_any_input_merges_note_their_semantics(self):
        graph, nodes = cyclic_wait_graph()
        report = wedge(graph).report
        entry = report.blocked_by_id(nodes["a"].id)
        assert entry.note == "any input suffices"
        assert len(entry.missing) == 2


class TestBuildReportDirectly:
    def test_report_on_a_live_simulator(self):
        # build_deadlock_report is read-only: running it mid-simulation
        # (before anything fired) must not disturb the simulator.
        graph, _ = starved_chain_graph()
        simulator = DataflowSimulator(graph)
        report = build_deadlock_report(simulator)
        assert report.fired == 0
        wedge_report = wedge(graph).report
        assert wedge_report.fired > 0


class TestProbeHistory:
    def wedge_with_history(self, graph):
        from repro.observe import HistoryRing, ProbeBus
        bus = ProbeBus()
        bus.subscribe(HistoryRing(64))
        with pytest.raises(DeadlockError) as info:
            DataflowSimulator(graph, probes=bus).run([])
        return info.value.report

    def test_report_reuses_the_probe_history(self):
        # With a HistoryRing on the bus the report shows what the circuit
        # did just before the wedge, not only what is stuck now.
        graph, nodes = starved_chain_graph()
        report = self.wedge_with_history(graph)
        assert report.recent_fires
        assert nodes["eta"].id in report.last_fired
        text = report.render()
        assert "last activity before the wedge" in text
        assert "(last fired @" in text and "(never fired)" in text

    def test_json_includes_the_history(self):
        graph, _ = starved_chain_graph()
        report = self.wedge_with_history(graph)
        payload = report.to_json()
        assert payload["recent_fires"] and payload["last_fired"]

    def test_no_bus_means_empty_history(self):
        graph, _ = starved_chain_graph()
        report = wedge(graph).report
        assert report.recent_fires == []
        assert "last activity" not in report.render()


class TestPostmortem:
    def test_json_artifact_roundtrips(self, tmp_path):
        graph, nodes = starved_chain_graph()
        report = wedge(graph).report
        path = tmp_path / "wedge.json"
        dump_postmortem(report, path, graph=graph)
        payload = json.loads(path.read_text())
        assert payload["graph"] == "starved-chain"
        assert payload["events_drained"] is True
        blocked_ids = {entry["id"] for entry in payload["blocked"]}
        assert nodes["combine"].id in blocked_ids
        slice_ids = {entry["id"] for entry in payload["graph_slice"]}
        # The slice covers blocked nodes plus their stuck producers.
        assert nodes["eta"].id in slice_ids
        assert nodes["init"].id in slice_ids

    def test_to_json_without_graph_slice(self, tmp_path):
        graph, _ = starved_chain_graph()
        report = wedge(graph).report
        path = tmp_path / "bare.json"
        dump_postmortem(report, path)
        payload = json.loads(path.read_text())
        assert "graph_slice" not in payload
        assert payload["provenance"]


class TestErrorFormatting:
    def test_deadlock_message_truncates_after_eight(self):
        entries = [BlockedNode(node_id=index, label=f"n{index}",
                               hyperblock=0, missing=(), queued=())
                   for index in range(12)]
        error = DeadlockError("g: wedged", 5, pending=entries)
        assert "... (4 more)" in str(error)
        assert len(error.pending) == 12  # structured data is untruncated

    def test_event_limit_reports_hot_nodes(self):
        source = """
        int f(int n) {
            int i; int s = 0;
            for (i = 0; i < n; i++) s += i;
            return s;
        }
        """
        program = compile_minic(source, "f", opt_level="none")
        with pytest.raises(EventLimitError) as info:
            program.simulate([1000000], event_limit=2000)
        error = info.value
        assert error.event_limit == 2000
        assert error.hot_nodes
        assert all(count > 0 for _, count in error.hot_nodes)
        # Sorted hottest-first, labelled "label#id".
        counts = [count for _, count in error.hot_nodes]
        assert counts == sorted(counts, reverse=True)
        assert "hottest nodes:" in str(error)
