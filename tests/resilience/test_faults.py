"""FaultPlan / FaultInjector: determinism, bounds, FIFO preservation."""

import pytest

from repro.resilience.faults import (
    LATENCY_ONLY,
    REORDER_ONLY,
    SHAKE_EVERYTHING,
    FaultPlan,
    default_plans,
)
from repro.sim.memsys import MemorySystem, REALISTIC_MEMORY


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.perturbs_timing
        assert "no-op" in plan.describe()
        injector = plan.injector()
        assert injector.memory_extra("l1") == 0
        assert injector.lsq_stall() == 0
        assert injector.reorder_key(1, 0, 5) == 5

    def test_with_seed_replaces_only_the_seed(self):
        plan = SHAKE_EVERYTHING.with_seed(42)
        assert plan.seed == 42
        assert plan.mem_jitter == SHAKE_EVERYTHING.mem_jitter
        assert plan.reorder_window == SHAKE_EVERYTHING.reorder_window

    def test_plans_are_hashable_cache_keys(self):
        assert len({SHAKE_EVERYTHING, LATENCY_ONLY, REORDER_ONLY,
                    SHAKE_EVERYTHING}) == 3

    def test_default_plans_rotate_seeds(self):
        plans = default_plans(4, base_seed=10)
        assert [plan.seed for plan in plans] == [10, 11, 12, 13]
        assert all(plan.mem_jitter == SHAKE_EVERYTHING.mem_jitter
                   for plan in plans)

    def test_variant_presets(self):
        assert LATENCY_ONLY.reorder_window == 0
        assert LATENCY_ONLY.perturbs_timing
        assert REORDER_ONLY.reorder_window > 0
        assert REORDER_ONLY.l1_jitter == 0

    def test_describe_names_active_families(self):
        text = SHAKE_EVERYTHING.describe()
        for token in ("mem_jitter", "reorder_window", "spike", "lsq_stall"):
            assert token in text


class TestDeterminism:
    def draws(self, plan, count=200):
        injector = plan.injector()
        return ([injector.memory_extra("mem") for _ in range(count)],
                [injector.lsq_stall() for _ in range(count)],
                [injector.reorder_key(7, 0, seq) for seq in range(count)])

    def test_same_seed_replays_exactly(self):
        assert self.draws(SHAKE_EVERYTHING) == self.draws(SHAKE_EVERYTHING)

    def test_different_seeds_diverge(self):
        assert (self.draws(SHAKE_EVERYTHING)
                != self.draws(SHAKE_EVERYTHING.with_seed(1)))

    def test_injector_is_fresh_per_call(self):
        plan = SHAKE_EVERYTHING
        assert plan.injector() is not plan.injector()


class TestLatencyFaults:
    def test_jitter_is_bounded(self):
        plan = FaultPlan(mem_jitter=5)
        injector = plan.injector()
        extras = [injector.memory_extra("mem") for _ in range(500)]
        assert all(0 <= extra <= 5 for extra in extras)
        assert any(extras), "jitter of 5 must inject something in 500 draws"

    def test_spikes_add_on_top_of_jitter(self):
        plan = FaultPlan(mem_jitter=3, spike_rate=1.0, spike_cycles=100)
        injector = plan.injector()
        extra = injector.memory_extra("mem")
        assert 100 <= extra <= 103

    def test_injected_latency_counter_accrues(self):
        injector = FaultPlan(mem_jitter=50).injector()
        total = sum(injector.memory_extra("mem") for _ in range(50))
        assert injector.injected_latency == total

    def test_levels_are_independent(self):
        injector = FaultPlan(l1_jitter=9).injector()
        assert injector.memory_extra("mem") == 0
        assert injector.memory_extra("tlb") == 0

    def test_unknown_level_is_an_error(self):
        with pytest.raises(KeyError):
            FaultPlan().injector().memory_extra("l9")


class TestLsqStalls:
    def test_certain_stall_is_bounded_and_positive(self):
        injector = FaultPlan(lsq_stall_rate=1.0,
                             lsq_stall_cycles=7).injector()
        stalls = [injector.lsq_stall() for _ in range(100)]
        assert all(1 <= stall <= 7 for stall in stalls)
        assert injector.injected_stalls == sum(stalls)

    def test_zero_rate_never_stalls(self):
        injector = FaultPlan(lsq_stall_cycles=7).injector()
        assert all(injector.lsq_stall() == 0 for _ in range(100))


class TestReorderKeys:
    def test_window_zero_is_identity(self):
        injector = FaultPlan().injector()
        assert [injector.reorder_key(3, 0, seq) for seq in range(10)] \
            == list(range(10))

    def test_same_producer_same_cycle_stays_fifo(self):
        # The soundness property: a producer's same-cycle emissions must
        # keep their relative order (merge semantics read channel FIFOs).
        injector = FaultPlan(reorder_window=16, seed=3).injector()
        keys = [injector.reorder_key(42, 100, seq) for seq in range(200)]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_new_timestamp_resets_the_clamp(self):
        injector = FaultPlan(reorder_window=4, seed=1).injector()
        injector.reorder_key(8, 0, 0)
        # At a later timestamp the key may legally drop back to ~seq.
        key = injector.reorder_key(8, 50, 1)
        assert 1 <= key <= 5

    def test_cross_producer_reordering_happens(self):
        injector = FaultPlan(reorder_window=8, seed=0).injector()
        for seq in range(100):
            injector.reorder_key(seq % 7, 0, seq)
        assert injector.reordered_events > 0


class TestMemorySystemIntegration:
    def test_faulty_system_accounts_injected_cycles(self):
        injector = FaultPlan(mem_jitter=20, l1_jitter=20, tlb_jitter=20,
                             seed=5).injector()
        memsys = MemorySystem(REALISTIC_MEMORY, faults=injector)
        now = 0
        for index in range(200):
            _, done = memsys.issue(now, 0x2000 + 8 * index, 4, False)
            now = max(now, done)
        assert memsys.stats.injected_cycles > 0
        assert memsys.stats.injected_cycles == (
            injector.injected_latency + injector.injected_stalls)

    def test_clean_system_reports_zero_injection(self):
        memsys = MemorySystem(REALISTIC_MEMORY)
        for index in range(20):
            memsys.issue(0, 0x2000 + 8 * index, 4, False)
        assert memsys.stats.injected_cycles == 0
