"""Differential checking over perturbed schedules.

``TestKernelMatrix`` is the PR's acceptance property: five benchmark
kernels, both an unoptimized and a fully optimized graph, each executed
under three seeded shake-everything schedules (plus the unperturbed one)
— every schedule must agree with the sequential oracle on return value
and final memory image, and with the unperturbed run on which memory
operations executed.
"""

import pytest

from repro import compile_minic
from repro.resilience.differential import (
    check_kernel,
    check_matrix,
    differential_check,
)
from repro.resilience.faults import REORDER_ONLY, FaultPlan, default_plans
from repro.sim.memsys import REALISTIC_2PORT

# The five cheapest kernels by simulation cost: the matrix stays a
# seconds-scale test while still covering five distinct benchmarks.
MATRIX_KERNELS = ("mpeg2_d", "ijpeg", "mesa", "li", "vortex")

TINY_SOURCE = """
int acc[16];
int f(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i++) acc[i & 15] += i;
    for (i = 0; i < n; i++) s += acc[i & 15];
    return s;
}
"""


class TestKernelMatrix:
    @pytest.mark.parametrize("name", MATRIX_KERNELS)
    def test_kernel_is_timing_robust(self, name):
        for result in check_kernel(name, levels=("none", "full"), seeds=3):
            assert result.ok, result.summary()
            assert len(result.schedules) == 4  # unperturbed + 3 seeds

    def test_check_matrix_flattens_kernels_and_levels(self):
        results = check_matrix(["mpeg2_d"], levels=("none",), seeds=2)
        assert len(results) == 1
        assert results[0].level == "none"
        assert results[0].ok


class TestDifferentialCheck:
    def test_schedules_genuinely_diverge_in_time(self):
        program = compile_minic(TINY_SOURCE, "f", opt_level="full")
        result = differential_check(program, [12], seeds=3,
                                    memsys=REALISTIC_2PORT)
        assert result.ok, result.summary()
        cycles = {outcome.cycles for outcome in result.schedules}
        assert len(cycles) > 1, "fault plans must actually perturb timing"

    def test_reorder_only_plans(self):
        program = compile_minic(TINY_SOURCE, "f", opt_level="medium")
        plans = [REORDER_ONLY.with_seed(seed) for seed in range(3)]
        result = differential_check(program, [9], plans=plans)
        assert result.ok, result.summary()

    def test_oracle_fields_are_recorded(self):
        program = compile_minic(TINY_SOURCE, "f", opt_level="none")
        oracle = program.run_sequential([6])
        result = differential_check(program, [6], seeds=1)
        assert result.oracle_return == oracle.return_value
        assert result.oracle_loads == oracle.loads
        assert result.oracle_stores == oracle.stores

    def test_schedule_errors_are_recorded_not_raised(self):
        program = compile_minic(TINY_SOURCE, "f", opt_level="none")
        result = differential_check(program, [8], seeds=1, event_limit=20)
        assert not result.ok
        assert any("EventLimitError" in mismatch
                   for mismatch in result.mismatches)
        assert "MISMATCH" in result.summary()

    def test_inert_plan_matches_reference_exactly(self):
        program = compile_minic(TINY_SOURCE, "f", opt_level="full")
        result = differential_check(program, [10], plans=[FaultPlan()])
        assert result.ok
        reference, inert = result.schedules
        assert inert.cycles == reference.cycles
        assert inert.loads == reference.loads

    def test_summary_reports_spread_and_status(self):
        program = compile_minic(TINY_SOURCE, "f", opt_level="full")
        result = differential_check(program, [10], seeds=2)
        text = result.summary()
        assert text.startswith("f/full: OK over 3 schedules")
        assert "cycles" in text


class TestApiEntryPoint:
    def test_check_timing_robustness_on_compiled_program(self):
        program = compile_minic(TINY_SOURCE, "f", opt_level="full")
        result = program.check_timing_robustness([7], seeds=2)
        assert result.ok, result.summary()
        assert result.entry == "f"

    def test_default_plan_count_matches_seeds(self):
        program = compile_minic(TINY_SOURCE, "f", opt_level="basic")
        result = program.check_timing_robustness([5], seeds=4)
        assert len(result.schedules) == 5

    def test_explicit_plans_override_seeds(self):
        program = compile_minic(TINY_SOURCE, "f", opt_level="basic")
        result = program.check_timing_robustness(
            [5], plans=default_plans(2, base_seed=77))
        assert [outcome.seed for outcome in result.schedules] \
            == [None, 77, 78]
