"""ExperimentRunner and Checkpoint: timeouts, retries, resume."""

import pickle

import pytest

from repro.errors import ReproError, SimulationTimeout, WorkloadError
from repro.resilience.harness import Checkpoint, ExperimentRunner, JobOutcome


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "runs" / "fig.ckpt"
        checkpoint = Checkpoint(path)
        checkpoint.record("fig18/mesa", {"cycles": 100})
        reloaded = Checkpoint(path)
        assert "fig18/mesa" in reloaded
        assert reloaded.get("fig18/mesa") == {"cycles": 100}
        assert len(reloaded) == 1

    def test_records_accumulate(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "a.ckpt")
        checkpoint.record("one", 1)
        checkpoint.record("two", 2)
        assert len(Checkpoint(tmp_path / "a.ckpt")) == 2

    def test_corrupt_journal_starts_fresh(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"\x80\x04 definitely not a pickle")
        checkpoint = Checkpoint(path)
        assert len(checkpoint) == 0
        checkpoint.record("key", "value")  # and it heals on next write
        assert Checkpoint(path).get("key") == "value"

    def test_non_dict_payload_ignored(self, tmp_path):
        path = tmp_path / "odd.ckpt"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        assert len(Checkpoint(path)) == 0

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "gone.ckpt"
        checkpoint = Checkpoint(path)
        checkpoint.record("key", 1)
        checkpoint.clear()
        assert not path.exists()
        assert "key" not in Checkpoint(path)

    def test_no_stray_temp_files(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "neat.ckpt")
        for index in range(5):
            checkpoint.record(f"k{index}", index)
        assert [p.name for p in tmp_path.iterdir()] == ["neat.ckpt"]


class TestRunnerStatuses:
    def test_ok_job(self):
        runner = ExperimentRunner()
        outcome = runner.run("job", lambda: 41 + 1)
        assert outcome.ok and outcome.value == 42
        assert outcome.status == "ok" and outcome.attempts == 1
        assert not runner.degraded

    def test_repro_error_is_not_retried(self):
        calls = []

        def job():
            calls.append(1)
            raise WorkloadError("golden mismatch")

        runner = ExperimentRunner(retries=3)
        outcome = runner.run("job", job)
        assert outcome.status == "error"
        assert "WorkloadError" in outcome.error
        assert len(calls) == 1, "deterministic failures must not retry"

    def test_environmental_flake_is_retried(self):
        calls = []

        def job():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("spurious")
            return "recovered"

        runner = ExperimentRunner(retries=2)
        outcome = runner.run("job", job)
        assert outcome.ok and outcome.value == "recovered"
        assert outcome.attempts == 3

    def test_retries_are_bounded(self):
        calls = []

        def job():
            calls.append(1)
            raise OSError("always")

        outcome = ExperimentRunner(retries=2).run("job", job)
        assert outcome.status == "error"
        assert len(calls) == 3

    def test_timeout_short_circuits_retries(self):
        calls = []

        def job():
            calls.append(1)
            raise SimulationTimeout("wedged", 1.0, 2.0)

        outcome = ExperimentRunner(retries=5).run("job", job)
        assert outcome.status == "timeout"
        assert len(calls) == 1, "a cooperative timeout will time out again"
        assert "TIMEOUT" in outcome.describe()


class TestWallLimitInjection:
    def test_jobs_that_accept_wall_limit_receive_it(self):
        seen = {}

        def job(wall_limit=None):
            seen["wall_limit"] = wall_limit
            return 1

        ExperimentRunner(wall_limit=2.5).run("job", job)
        assert seen["wall_limit"] == 2.5

    def test_var_keyword_jobs_receive_it(self):
        seen = {}

        def job(**kwargs):
            seen.update(kwargs)
            return 1

        ExperimentRunner(wall_limit=1.0).run("job", job)
        assert seen["wall_limit"] == 1.0

    def test_plain_jobs_are_left_alone(self):
        outcome = ExperimentRunner(wall_limit=1.0).run("job", lambda: 7)
        assert outcome.value == 7


class TestResume:
    def test_completed_jobs_resume_from_checkpoint(self, tmp_path):
        path = tmp_path / "fig.ckpt"
        calls = []

        def job():
            calls.append(1)
            return "computed"

        first = ExperimentRunner(checkpoint=path)
        assert first.run("fig/k", job).status == "ok"
        second = ExperimentRunner(checkpoint=path)
        outcome = second.run("fig/k", job)
        assert outcome.status == "resumed"
        assert outcome.value == "computed"
        assert outcome.ok
        assert len(calls) == 1
        assert "resumed" in outcome.describe()

    def test_failed_jobs_are_not_checkpointed(self, tmp_path):
        path = tmp_path / "fig.ckpt"
        runner = ExperimentRunner(checkpoint=path)

        def bad():
            raise ReproError("boom")

        runner.run("fig/bad", bad)
        assert "fig/bad" not in Checkpoint(path)

    def test_checkpoint_accepts_instance(self, tmp_path):
        checkpoint = Checkpoint(tmp_path / "x.ckpt")
        runner = ExperimentRunner(checkpoint=checkpoint)
        assert runner.checkpoint is checkpoint


class TestReporting:
    def test_degraded_and_report(self):
        runner = ExperimentRunner()
        runner.run("good", lambda: 1)

        def bad():
            raise ReproError("deadlock")

        runner.run("bad", bad)
        assert [outcome.key for outcome in runner.degraded] == ["bad"]
        report = runner.report()
        assert "good: ok" in report
        assert "bad: ERROR" in report
        assert "1/2 jobs completed, 1 degraded" in report

    def test_outcome_describe_variants(self):
        assert "ok in" in JobOutcome("k", "ok", elapsed=0.5).describe()
        assert "resumed" in JobOutcome("k", "resumed").describe()
        described = JobOutcome("k", "error", error="x",
                               attempts=2).describe()
        assert "2 attempts" in described
