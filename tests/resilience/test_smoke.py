"""CI fault-injection smoke: fast evidence the resilience stack works.

Run by the dedicated CI job (see ``.github/workflows/ci.yml``): two cheap
kernels through the full differential check at three seeds, plus one
forced deadlock through the forensics pipeline. Budget: well under two
minutes on a cold cache.
"""

import pytest

from repro.errors import DeadlockError
from repro.resilience.differential import check_kernel
from repro.sim.dataflow import DataflowSimulator

from tests.resilience.fixtures import starved_chain_graph

SMOKE_KERNELS = ("mpeg2_d", "ijpeg")


@pytest.mark.parametrize("name", SMOKE_KERNELS)
def test_differential_smoke(name):
    for result in check_kernel(name, levels=("none", "full"), seeds=3):
        assert result.ok, result.summary()


def test_forced_deadlock_produces_forensics():
    graph, nodes = starved_chain_graph()
    with pytest.raises(DeadlockError) as info:
        DataflowSimulator(graph).run([])
    report = info.value.report
    assert report is not None
    entry = report.blocked_by_id(nodes["combine"].id)
    assert entry.missing[0].producer_id == nodes["eta"].id
    assert report.provenance[0][0] == nodes["ret"].id
    assert "eta#" in report.render()
