"""Type-system unit tests."""

import pytest

from repro.frontend import types as ty


class TestIntTypes:
    def test_sizes_and_bits(self):
        assert ty.CHAR.size == 1 and ty.CHAR.bits == 8
        assert ty.SHORT.bits == 16
        assert ty.INT.bits == 32
        assert ty.LONG.bits == 64

    def test_signed_ranges(self):
        assert ty.CHAR.min_value == -128 and ty.CHAR.max_value == 127
        assert ty.UCHAR.min_value == 0 and ty.UCHAR.max_value == 255
        assert ty.INT.max_value == 2**31 - 1

    def test_wrap_signed(self):
        assert ty.CHAR.wrap(130) == -126
        assert ty.CHAR.wrap(-129) == 127
        assert ty.INT.wrap(2**31) == -(2**31)

    def test_wrap_unsigned(self):
        assert ty.UCHAR.wrap(256) == 0
        assert ty.UINT.wrap(-1) == 2**32 - 1

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ty.IntType(3, signed=True)


class TestCompositeTypes:
    def test_pointer_size(self):
        assert ty.PointerType(ty.CHAR).size == 8

    def test_array_size(self):
        assert ty.ArrayType(ty.INT, 10).size == 40
        assert ty.ArrayType(ty.SHORT, None).size == 0

    def test_array_decay(self):
        arr = ty.ArrayType(ty.INT, 4, const=True)
        decayed = arr.decay()
        assert decayed == ty.PointerType(ty.INT, const=True)

    def test_scalar_decay_is_identity(self):
        assert ty.INT.decay() == ty.INT

    def test_str_forms(self):
        assert str(ty.UINT) == "unsigned int"
        assert str(ty.PointerType(ty.CHAR)) == "char*"
        assert str(ty.ArrayType(ty.INT, 3)) == "int[3]"


class TestPromotion:
    def test_narrow_ints_promote_to_int(self):
        assert ty.promote(ty.CHAR) == ty.INT
        assert ty.promote(ty.USHORT) == ty.INT

    def test_wide_types_unchanged(self):
        assert ty.promote(ty.UINT) == ty.UINT
        assert ty.promote(ty.DOUBLE) == ty.DOUBLE


class TestUsualArithmetic:
    def test_same_types(self):
        assert ty.usual_arithmetic(ty.INT, ty.INT) == ty.INT

    def test_wider_wins(self):
        assert ty.usual_arithmetic(ty.INT, ty.LONG) == ty.LONG

    def test_unsigned_wins_at_same_width(self):
        assert ty.usual_arithmetic(ty.INT, ty.UINT) == ty.UINT

    def test_wider_signed_beats_narrower_unsigned(self):
        assert ty.usual_arithmetic(ty.LONG, ty.UINT) == ty.LONG

    def test_float_dominates(self):
        assert ty.usual_arithmetic(ty.INT, ty.FLOAT) == ty.FLOAT
        assert ty.usual_arithmetic(ty.FLOAT, ty.DOUBLE) == ty.DOUBLE

    def test_char_pair_promotes(self):
        assert ty.usual_arithmetic(ty.CHAR, ty.UCHAR) == ty.INT

    def test_non_arithmetic_rejected(self):
        with pytest.raises(TypeError):
            ty.usual_arithmetic(ty.PointerType(ty.INT), ty.INT)


class TestAssignability:
    def test_arithmetic_cross_assign(self):
        assert ty.assignable(ty.CHAR, ty.LONG)
        assert ty.assignable(ty.DOUBLE, ty.INT)

    def test_same_pointer(self):
        p = ty.PointerType(ty.INT)
        assert ty.assignable(p, p)

    def test_void_pointer_both_ways(self):
        void_p = ty.PointerType(ty.VOID)
        int_p = ty.PointerType(ty.INT)
        assert ty.assignable(void_p, int_p)
        assert ty.assignable(int_p, void_p)

    def test_const_pointee_drop_allowed(self):
        const_p = ty.PointerType(ty.INT, const=True)
        plain_p = ty.PointerType(ty.INT)
        assert ty.assignable(plain_p, const_p)

    def test_incompatible_pointers(self):
        assert not ty.assignable(ty.PointerType(ty.INT),
                                 ty.PointerType(ty.SHORT))

    def test_array_decays_on_assign(self):
        assert ty.assignable(ty.PointerType(ty.INT), ty.ArrayType(ty.INT, 5))

    def test_int_not_assignable_to_pointer(self):
        assert not ty.assignable(ty.PointerType(ty.INT), ty.INT)
