"""Semantic analysis tests: scoping, typing, lvalues, annotations."""

import pytest

from repro.errors import SemanticError
from repro.frontend import parse_program
from repro.frontend import ast
from repro.frontend import types as ty


def analyze(source: str) -> ast.Program:
    return parse_program(source)


class TestScoping:
    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError):
            analyze("int f(void) { return missing; }")

    def test_redefinition_in_same_scope(self):
        with pytest.raises(SemanticError):
            analyze("int f(void) { int a; int a; return 0; }")

    def test_shadowing_in_nested_scope_ok(self):
        program = analyze("int f(void) { int a = 1; { int a = 2; } return a; }")
        assert program.function("f")

    def test_block_scope_does_not_leak(self):
        with pytest.raises(SemanticError):
            analyze("int f(void) { { int a = 1; } return a; }")

    def test_duplicate_global(self):
        with pytest.raises(SemanticError):
            analyze("int x; int x;")

    def test_unique_ids_assigned(self):
        program = analyze("int x; int f(int y) { int z; return x + y + z; }")
        ids = [program.globals[0].unique_id,
               program.function("f").params[0].unique_id]
        assert len(set(ids)) == len(ids)
        assert all(i >= 0 for i in ids)


class TestTyping:
    def test_expression_types_annotated(self):
        program = analyze("int f(int a) { return a + 1; }")
        ret = program.function("f").body.stmts[0]
        assert ret.value.type == ty.INT

    def test_comparison_yields_int(self):
        program = analyze("int f(long a) { return a < 3; }")
        ret = program.function("f").body.stmts[0]
        assert ret.value.type == ty.INT

    def test_implicit_widening_cast_inserted(self):
        program = analyze("long f(int a) { long b = a; return b; }")
        decl = program.function("f").body.stmts[0]
        assert isinstance(decl.init, ast.Cast)
        assert decl.init.implicit

    def test_pointer_plus_int(self):
        program = analyze("int* f(int *p) { return p + 2; }")
        ret = program.function("f").body.stmts[0]
        assert ret.value.type == ty.PointerType(ty.INT)

    def test_pointer_minus_pointer_is_long(self):
        program = analyze("long f(int *p, int *q) { return p - q; }")
        ret = program.function("f").body.stmts[0]
        assert ret.value.type == ty.LONG

    def test_sizeof_folded(self):
        program = analyze("int f(void) { return sizeof(long); }")
        ret = program.function("f").body.stmts[0]
        value = ret.value
        while isinstance(value, ast.Cast):
            value = value.operand
        assert isinstance(value, ast.IntLit)
        assert value.value == 8

    def test_string_literal_becomes_global(self):
        program = analyze('int f(void) { return "ab"[0]; }')
        names = [g.name for g in program.globals]
        assert any(name.startswith("__str") for name in names)

    def test_deref_non_pointer_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int f(int a) { return *a; }")

    def test_void_deref_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int f(void *p) { return *p; }")

    def test_modulo_requires_integers(self):
        with pytest.raises(SemanticError):
            analyze("double f(double a) { return a % 2.0; }")

    def test_call_arity_checked(self):
        with pytest.raises(SemanticError):
            analyze("int g(int a) { return a; } int f(void) { return g(); }")

    def test_call_argument_converted(self):
        program = analyze(
            "long g(long a) { return a; } long f(int x) { return g(x); }"
        )
        call = program.function("f").body.stmts[0].value
        assert isinstance(call.args[0], ast.Cast)

    def test_null_pointer_constant(self):
        program = analyze("int f(int *p) { return p == 0; }")
        assert program.function("f")


class TestLvalues:
    def test_assign_to_rvalue_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int f(int a) { a + 1 = 2; return a; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int a[3]; void f(int b[3]) { a = b; }")

    def test_address_of_rvalue_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int* f(int a) { return &(a + 1); }")

    def test_incdec_requires_lvalue(self):
        with pytest.raises(SemanticError):
            analyze("int f(int a) { (a+1)++; return a; }")


class TestAnnotations:
    def test_address_taken_flag(self):
        program = analyze("int f(void) { int a = 1; int *p = &a; return *p; }")
        decl = program.function("f").body.stmts[0]
        assert decl.symbol.address_taken

    def test_address_not_taken_by_default(self):
        program = analyze("int f(void) { int a = 1; return a; }")
        decl = program.function("f").body.stmts[0]
        assert not decl.symbol.address_taken

    def test_written_flag(self):
        program = analyze("int f(void) { int a = 1; a = 2; return a; }")
        decl = program.function("f").body.stmts[0]
        assert decl.symbol.is_written

    def test_pragma_resolves_to_params(self):
        program = analyze(
            "void f(int *p, int *q) {\n#pragma independent p q\n}"
        )
        pairs = program.function("f").independent_pairs
        assert len(pairs) == 1
        assert {s.name for s in pairs[0]} == {"p", "q"}

    def test_pragma_unknown_name_rejected(self):
        with pytest.raises(SemanticError):
            analyze("void f(int *p) {\n#pragma independent p nosuch\n}")


class TestControlChecks:
    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            analyze("void f(void) { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError):
            analyze("void f(void) { continue; }")

    def test_return_value_from_void(self):
        with pytest.raises(SemanticError):
            analyze("void f(void) { return 1; }")

    def test_missing_return_value(self):
        with pytest.raises(SemanticError):
            analyze("int f(void) { return; }")


class TestInitializers:
    def test_global_init_must_be_constant(self):
        with pytest.raises(SemanticError):
            analyze("int g(void); int x = g();")

    def test_constant_expression_folding(self):
        program = analyze("int x = 3 * 4 + (1 << 2);")
        assert program.globals[0].init_values == [16]

    def test_string_array_init(self):
        program = analyze('const char m[] = "ok";')
        symbol = program.globals[0]
        assert symbol.type.length == 3  # includes NUL
        assert symbol.init_values == [111, 107, 0]

    def test_array_initializer_sets_length(self):
        program = analyze("int t[] = { 5, 6, 7 };")
        assert program.globals[0].type.length == 3
