"""Loop unrolling and its synergy with the memory optimizations."""

import pytest

from repro import compile_minic
from repro.frontend import parse_program
from repro.frontend.unroll import unroll_program
from repro.frontend import ast


def unrolled(source: str, limit: int = 16):
    program = parse_program(source)
    stats = unroll_program(program, limit)
    return program, stats


class TestEligibility:
    def test_simple_counted_loop_unrolls(self):
        program, stats = unrolled("""
        int a[8];
        void f(void) { int i; for (i = 0; i < 4; i++) a[i] = i; }
        """)
        assert stats.unrolled == 1
        assert stats.copies == 4

    def test_le_and_ne_bounds(self):
        _, le_stats = unrolled(
            "int s; void f(void){ int i; for (i = 1; i <= 3; i++) s += i; }")
        assert le_stats.copies == 3
        _, ne_stats = unrolled(
            "int s; void f(void){ int i; for (i = 0; i != 4; i += 2) s += i; }")
        assert ne_stats.copies == 2

    def test_downward_loop(self):
        _, stats = unrolled(
            "int s; void f(void){ int i; for (i = 3; i > 0; i--) s += i; }")
        assert stats.copies == 3

    def test_declared_counter(self):
        _, stats = unrolled(
            "int s; void f(void){ for (int i = 0; i < 3; i++) s += i; }")
        assert stats.copies == 3

    def test_over_limit_kept(self):
        _, stats = unrolled(
            "int s; void f(void){ int i; for (i = 0; i < 100; i++) s += i; }",
            limit=8)
        assert stats.unrolled == 0

    def test_dynamic_bound_kept(self):
        _, stats = unrolled(
            "int s; void f(int n){ int i; for (i = 0; i < n; i++) s += i; }")
        assert stats.unrolled == 0

    def test_counter_written_in_body_kept(self):
        _, stats = unrolled("""
        int s;
        void f(void){ int i; for (i = 0; i < 4; i++) { s += i; i += 1; } }
        """)
        assert stats.unrolled == 0

    def test_break_kept(self):
        _, stats = unrolled("""
        int s;
        void f(void){ int i; for (i = 0; i < 4; i++) { if (s) break; s++; } }
        """)
        assert stats.unrolled == 0

    def test_nested_constant_loops_unroll_inside_out(self):
        _, stats = unrolled("""
        int s;
        void f(void){
            int i; int j;
            for (i = 0; i < 2; i++)
                for (j = 0; j < 3; j++)
                    s += i * j;
        }
        """)
        # The inner loop unrolls first (1), then the outer over the
        # resulting block (1): both loops flattened.
        assert stats.unrolled == 2
        assert stats.copies == 3 + 2


class TestSemantics:
    CASES = [
        ("""
         int a[8];
         int f(int x) {
             int i;
             for (i = 0; i < 6; i++) a[i] = i * x;
             {
                 int s = 0;
                 for (i = 0; i < 6; i++) s += a[i];
                 return s;
             }
         }
         """, [3]),
        ("""
         int s;
         int f(int x) {
             int i;
             s = 0;
             for (i = 2; i <= 10; i += 3) { int t = i * i; s += t - x; }
             return s + i;
         }
         """, [4]),
    ]

    @pytest.mark.parametrize("source,args", CASES)
    def test_unrolled_matches_oracle(self, source, args):
        rolled = compile_minic(source, "f", opt_level="full")
        unrolled_prog = compile_minic(source, "f", opt_level="full",
                                      unroll_limit=16)
        r1 = rolled.run_sequential(list(args))
        r2 = unrolled_prog.run_sequential(list(args))
        r3 = unrolled_prog.simulate(list(args))
        assert r1.return_value == r2.return_value == r3.return_value
        assert r2.memory.snapshot() == r3.memory.snapshot()

    def test_exit_value_of_counter_preserved(self):
        source = """
        int f(void) {
            int i;
            for (i = 0; i < 5; i++) ;
            return i;
        }
        """
        program = compile_minic(source, "f", unroll_limit=8)
        assert program.simulate([]).return_value == 5


class TestSynergy:
    def test_unrolling_enables_cross_iteration_forwarding(self):
        # Rolled: the load of a[i] in each iteration must hit memory.
        # Unrolled with constant indexes, load-after-store forwarding and
        # store elimination collapse the traffic.
        source = """
        int a[4];
        int f(int x) {
            int i;
            for (i = 0; i < 4; i++) a[i] = x + i;
            return a[0] + a[1] + a[2] + a[3];
        }
        """
        rolled = compile_minic(source, "f", opt_level="full")
        flat = compile_minic(source, "f", opt_level="full", unroll_limit=8)
        rolled_run = rolled.simulate([5])
        flat_run = flat.simulate([5])
        assert flat_run.return_value == rolled_run.return_value
        assert flat_run.loads < rolled_run.loads, (
            "constant indexes let §5.3 forward the stored values"
        )
