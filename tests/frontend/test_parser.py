"""Parser structure tests."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend import types as ty
from repro.frontend.parser import parse_source


def first_function(source: str) -> ast.FuncDef:
    return parse_source(source).functions[0]


def first_stmt(body_src: str) -> ast.Stmt:
    func = first_function("void f(void) { %s }" % body_src)
    return func.body.stmts[0]


def expr_of(source_expr: str) -> ast.Expr:
    stmt = first_stmt(f"{source_expr};")
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.expr


class TestDeclarations:
    def test_global_scalar_with_init(self):
        program = parse_source("int x = 3;")
        assert program.globals[0].name == "x"
        assert program.globals[0].type == ty.INT

    def test_global_array(self):
        program = parse_source("short a[10];")
        symbol = program.globals[0]
        assert isinstance(symbol.type, ty.ArrayType)
        assert symbol.type.length == 10
        assert symbol.type.element == ty.SHORT

    def test_extern_unsized_array(self):
        program = parse_source("extern int a[];")
        assert program.globals[0].type.length is None

    def test_const_array_initializer(self):
        program = parse_source("const int t[3] = { 1, 2, 3 };")
        symbol = program.globals[0]
        assert symbol.type.const
        assert len(symbol.init_values) == 3

    def test_pointer_declarations(self):
        func = first_function("void f(int *p, unsigned *q) {}")
        assert func.params[0].type == ty.PointerType(ty.INT)
        assert func.params[1].type == ty.PointerType(ty.UINT)

    def test_array_param_decays(self):
        func = first_function("void f(int a[]) {}")
        assert func.params[0].type == ty.PointerType(ty.INT)

    def test_multi_declarator_statement(self):
        stmt = first_stmt("int a = 1, b = 2;")
        assert isinstance(stmt, ast.DeclGroup)
        assert [d.symbol.name for d in stmt.decls] == ["a", "b"]

    def test_unsigned_spellings(self):
        program = parse_source("unsigned u; unsigned int v; unsigned long w;")
        types = [g.type for g in program.globals]
        assert types == [ty.UINT, ty.UINT, ty.ULONG]

    def test_prototype_is_not_a_definition(self):
        program = parse_source("int g(int); int f(void) { return 1; }")
        assert [f.name for f in program.functions] == ["f"]


class TestStatements:
    def test_if_else(self):
        stmt = first_stmt("if (1) ; else ;")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        stmt = first_stmt("if (1) if (2) ; else ;")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is None
        inner = stmt.then
        assert isinstance(inner, ast.If)
        assert inner.otherwise is not None

    def test_while(self):
        assert isinstance(first_stmt("while (1) ;"), ast.While)

    def test_do_while(self):
        assert isinstance(first_stmt("do ; while (0);"), ast.DoWhile)

    def test_for_with_declaration(self):
        stmt = first_stmt("for (int i = 0; i < 3; i++) ;")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_all_parts_optional(self):
        stmt = first_stmt("for (;;) break;")
        assert isinstance(stmt, ast.For)
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue(self):
        stmt = first_stmt("while (1) { break; }")
        body = stmt.body
        assert isinstance(body.stmts[0], ast.Break)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = expr_of("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"

    def test_precedence_shift_vs_compare(self):
        expr = expr_of("1 << 2 < 3")
        assert expr.op == "<"
        assert expr.lhs.op == "<<"

    def test_assignment_right_associative(self):
        func = first_function("void f(void) { int a; int b; a = b = 1; }")
        expr = func.body.stmts[2].expr
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_conditional_expression(self):
        expr = expr_of("1 ? 2 : 3")
        assert isinstance(expr, ast.Conditional)

    def test_unary_chain(self):
        expr = expr_of("- - 1")
        assert isinstance(expr, ast.Unary) and isinstance(expr.operand, ast.Unary)

    def test_prefix_and_postfix_incdec(self):
        pre = expr_of("++x") if False else None
        func = first_function("void f(void) { int x; ++x; x++; }")
        pre = func.body.stmts[1].expr
        post = func.body.stmts[2].expr
        assert isinstance(pre, ast.IncDec) and pre.is_prefix
        assert isinstance(post, ast.IncDec) and not post.is_prefix

    def test_cast_vs_parenthesized_expr(self):
        cast = expr_of("(int)1")
        assert isinstance(cast, ast.Cast)
        grouped = expr_of("(1)")
        assert isinstance(grouped, ast.IntLit)

    def test_index_chains(self):
        expr = expr_of("a[1]")
        assert isinstance(expr, ast.Index)

    def test_call_with_args(self):
        expr = expr_of("g(1, 2)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 2

    def test_sizeof_type_and_expr(self):
        assert isinstance(expr_of("sizeof(int)"), ast.SizeOf)
        assert isinstance(expr_of("sizeof x"), ast.SizeOf)

    def test_comma_expression(self):
        expr = expr_of("(1, 2)")
        assert isinstance(expr, ast.Comma)

    def test_address_and_deref(self):
        expr = expr_of("*&x")
        assert isinstance(expr, ast.Unary) and expr.op == "*"
        assert expr.operand.op == "&"


class TestPragmas:
    def test_pragma_inside_function(self):
        func = first_function(
            "void f(int *p, int *q) {\n#pragma independent p q\n}"
        )
        assert func.pragma_names == [("p", "q")]

    def test_pragma_three_names_makes_three_pairs(self):
        source = "void f(int *a, int *b, int *c) {\n#pragma independent a b c\n}"
        from repro.frontend import parse_program
        func = parse_program(source).functions[0]
        assert len(func.independent_pairs) == 3


class TestParseErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_source("void f(void) { int a = 1 }")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_source("void f(void) { g(1; }")

    def test_bad_top_level(self):
        with pytest.raises(ParseError):
            parse_source("42;")

    def test_array_size_must_be_literal(self):
        with pytest.raises(ParseError):
            parse_source("int n; int a[n];")
