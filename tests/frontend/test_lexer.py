"""Lexer and micro-preprocessor tests."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)][:-1]  # drop EOF


class TestBasics:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier_and_keyword(self):
        tokens = tokenize("int foo")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT
        assert tokens[1].text == "foo"

    def test_decimal_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT_LIT
        assert token.value == (42, "")

    def test_hex_literal(self):
        token = tokenize("0xff")[0]
        assert token.value == (255, "")

    def test_suffixed_literal(self):
        token = tokenize("7ul")[0]
        assert token.value == (7, "ul")

    def test_float_literal(self):
        token = tokenize("2.5")[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.value == 2.5

    def test_float_exponent(self):
        token = tokenize("1e3")[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.value == 1000.0

    def test_char_literal(self):
        token = tokenize("'a'")[0]
        assert token.kind is TokenKind.CHAR_LIT
        assert token.value == ord("a")

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == ord("\n")
        assert tokenize(r"'\0'")[0].value == 0

    def test_string_literal(self):
        token = tokenize('"hi there"')[0]
        assert token.kind is TokenKind.STRING_LIT
        assert token.value == "hi there"

    def test_maximal_munch_punctuators(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("x >= y") == ["x", ">=", "y"]
        assert texts("p -> q") == ["p", "->", "q"]
        assert texts("i++ + ++j") == ["i", "++", "+", "++", "j"]

    def test_line_positions(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestPreprocessor:
    def test_define_constant(self):
        tokens = tokenize("#define N 16\nint a[N];")
        values = [t.value for t in tokens if t.kind is TokenKind.INT_LIT]
        assert values == [(16, "")]

    def test_define_expands_to_expression(self):
        assert texts("#define TWO (1 + 1)\nTWO") == ["(", "1", "+", "1", ")"]

    def test_nested_defines(self):
        src = "#define A B\n#define B 3\nA"
        token = tokenize(src)[0]
        assert token.value == (3, "")

    def test_recursive_define_rejected(self):
        with pytest.raises(LexError):
            tokenize("#define A A\nA")

    def test_include_ignored(self):
        assert texts("#include <stdio.h>\nx") == ["x"]

    def test_pragma_independent(self):
        tokens = tokenize("#pragma independent p q\n")
        assert tokens[0].kind is TokenKind.PRAGMA_INDEPENDENT
        assert tokens[0].names == ("p", "q")

    def test_pragma_independent_needs_two_names(self):
        with pytest.raises(LexError):
            tokenize("#pragma independent p\n")

    def test_other_pragmas_ignored(self):
        assert texts("#pragma once\nx") == ["x"]

    def test_unknown_directive_rejected(self):
        with pytest.raises(LexError):
            tokenize("#invent things\n")

    def test_function_like_macro_rejected(self):
        with pytest.raises(LexError):
            tokenize("#define F(x) x\n")


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")
