"""``GET /v1/metrics`` and request tracing on the compile service.

The endpoint must speak real Prometheus exposition format (a stock
scraper should work unmodified), its counters must move with the
traffic and never backwards, and — when the service is started with
``trace=True`` — every request's RunRecords and its root span must
share one ``trace_id``, the cross-reference key between the telemetry
store and the trace timeline.
"""

import pytest

from repro.observe.metrics import parse_prometheus, sum_series
from repro.observe.tracing import read_trace
from repro.service.client import ServiceClient
from repro.service.server import CompileService, ServiceConfig

SOURCE = """
int a[64];
int kernel(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 2; s = s + a[i]; }
    return s;
}
"""


def make_service(tmp_path, **overrides):
    config = ServiceConfig(
        port=0, name="svc-metrics",
        cache_root=str(tmp_path / "cache"),
        telemetry_root=str(tmp_path / "telemetry"),
        workers=2, drain_grace=5.0,
        **overrides)
    return CompileService(config).start_in_thread()


@pytest.fixture
def service(tmp_path):
    svc = make_service(tmp_path)
    yield svc
    svc.stop(drain=True)


@pytest.fixture
def client(service):
    return ServiceClient(port=service.port, client_id="pytest")


class TestMetricsEndpoint:
    def test_scrape_is_prometheus_exposition_0_0_4(self, service, client):
        text, content_type = client.metrics()
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        # Parseable even before any traffic (possibly empty).
        parse_prometheus(text)

    def test_request_counter_tracks_received_and_is_monotonic(
            self, service, client):
        client.simulate(SOURCE, "kernel", args=[4])
        first = parse_prometheus(client.metrics()[0])
        requests_before = sum_series(first, "repro_requests_total")
        assert requests_before == service.stats.received
        client.simulate(SOURCE, "kernel", args=[5])
        client.compile(SOURCE, "kernel")
        second = parse_prometheus(client.metrics()[0])
        assert sum_series(second, "repro_requests_total") \
            == service.stats.received == requests_before + 2
        # No counter series moved backwards between scrapes.
        for series, value in first.items():
            if series.endswith("_total") or series.endswith("_count") \
                    or "_bucket{" in series:
                assert second.get(series, 0) >= value, series

    def test_kind_label_splits_the_request_counter(self, service, client):
        client.simulate(SOURCE, "kernel", args=[4])
        client.compile(SOURCE, "kernel")
        parsed = parse_prometheus(client.metrics()[0])
        assert parsed['repro_requests_total{kind="simulate"}'] == 1.0
        assert parsed['repro_requests_total{kind="compile"}'] == 1.0

    def test_cache_and_dedup_counters_move_with_the_cache(self, service,
                                                          client):
        client.compile(SOURCE, "kernel")          # miss: leader compile
        client.compile(SOURCE, "kernel")          # warm disk hit
        parsed = parse_prometheus(client.metrics()[0])
        assert parsed['repro_compile_dedup_total{role="leader"}'] == 1.0
        assert sum_series(parsed, "repro_cache_warm_total") == 1.0
        assert sum_series(parsed, "repro_compiles_executed_total") == 1.0
        assert sum_series(parsed, "repro_compile_batches_total") >= 1.0

    def test_latency_histogram_accounts_every_request(self, service,
                                                      client):
        client.simulate(SOURCE, "kernel", args=[4])
        client.compile(SOURCE, "kernel")
        parsed = parse_prometheus(client.metrics()[0])
        assert parsed["repro_request_seconds_count"] == 2.0
        assert parsed['repro_request_seconds_bucket{le="+Inf"}'] == 2.0
        assert parsed["repro_request_seconds_sum"] > 0.0

    def test_in_flight_gauge_settles_to_zero(self, service, client):
        client.simulate(SOURCE, "kernel", args=[4])
        parsed = parse_prometheus(client.metrics()[0])
        assert sum_series(parsed, "repro_requests_in_flight") == 0.0


class TestRequestTracing:
    def test_run_record_and_root_span_share_a_trace_id(self, tmp_path):
        trace_dir = tmp_path / "traces"
        service = make_service(tmp_path, trace=True,
                               trace_dir=str(trace_dir))
        try:
            client = ServiceClient(port=service.port, client_id="pytest")
            outcome = client.simulate(SOURCE, "kernel", args=[4])
            assert outcome.value is not None
            spans = read_trace(trace_dir)
            (root,) = [s for s in spans if s.parent is None]
            assert root.name == f"request:{outcome.request_id}"
            assert root.tags["kind"] == "simulate"
            assert root.tags["client"] == "pytest"
            # Downstream work parented under the request, same trace.
            assert {s.trace for s in spans} == {root.trace}
            assert any(s.name.startswith("job:") for s in spans)
            # The cross-reference: telemetry RunRecords carry the same
            # trace_id the spans do.
            records = [r for r in service.session.records()
                       if r.tags.get("request") == outcome.request_id]
            assert records, "request left no telemetry records"
            assert {r.tags.get("trace_id") for r in records} \
                == {root.trace}
        finally:
            service.stop(drain=True)

    def test_untraced_service_writes_no_spans(self, service, client,
                                              tmp_path):
        client.simulate(SOURCE, "kernel", args=[4])
        assert service.tracer is None
        records = service.session.records()
        assert records
        assert all("trace_id" not in r.tags for r in records)
