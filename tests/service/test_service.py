"""End-to-end tests of the in-process compile/simulate service.

Each test gets its own server on an ephemeral port with a private
artifact cache and telemetry store, talking over real sockets through
:class:`~repro.service.client.ServiceClient`.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import compile_minic
from repro.service.client import ServiceClient
from repro.service.protocol import ServiceError
from repro.service.server import CompileService, ServiceConfig

SOURCE = """
int a[64];
int kernel(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 2; s = s + a[i]; }
    return s;
}
"""

OTHER_SOURCE = SOURCE.replace("i * 2", "i * 3")


def make_service(tmp_path, **overrides):
    config = ServiceConfig(
        port=0, name="svc-test",
        cache_root=str(tmp_path / "cache"),
        telemetry_root=str(tmp_path / "telemetry"),
        workers=2, drain_grace=5.0,
        **overrides)
    return CompileService(config).start_in_thread()


@pytest.fixture
def service(tmp_path):
    svc = make_service(tmp_path)
    yield svc
    svc.stop(drain=True)


@pytest.fixture
def client(service):
    return ServiceClient(port=service.port, client_id="pytest")


def test_health_reports_identity(service, client):
    health = client.health()
    assert health["service"] == "svc-test"
    assert health["protocol"] == 1
    assert health["draining"] is False
    assert health["session"] == service.session.session_id
    assert health["stats"]["received"] == 0


def test_compile_miss_then_warm(service, client):
    first = client.compile(SOURCE, "kernel")
    assert first.cache == "miss"
    assert first.key
    assert first.compile["nodes"] > 0
    second = client.compile(SOURCE, "kernel")
    assert second.cache == "warm"
    assert second.key == first.key
    assert service.stats.compiles_executed == 1
    assert service.stats.cache_warm == 1
    assert service.cache.contains(first.key)


def test_simulate_matches_local_pipeline(service, client, tmp_path):
    outcome = client.simulate(SOURCE, "kernel", args=[7])
    local = compile_minic(SOURCE, "kernel").simulate([7])
    assert outcome.value == local.return_value
    assert outcome.result["cycles"] == local.cycles
    assert outcome.result["engine"] == "compiled"
    assert outcome.request_id is not None
    names = [event["event"] for event in outcome.events]
    assert names == ["accepted", "compile", "result", "done"]


def test_concurrent_identical_requests_compile_once(service):
    """The acceptance proof: N identical submissions -> one compile
    execution, demonstrated by provenance, not just counters."""
    N = 12

    def one(i):
        client = ServiceClient(port=service.port, client_id=f"c{i}")
        return client.simulate(SOURCE, "kernel", args=[6], wait=True)

    with ThreadPoolExecutor(max_workers=N) as pool:
        outcomes = list(pool.map(one, range(N)))

    assert len(outcomes) == N
    assert {outcome.value for outcome in outcomes} == {30}
    assert len({outcome.key for outcome in outcomes}) == 1
    # No dropped or duplicated jobs: every submission got its own
    # request id and completed.
    assert len({outcome.request_id for outcome in outcomes}) == N

    stats = service.stats
    assert stats.compiles_executed == 1
    assert stats.cache_warm + stats.compile_deduped == N - 1
    assert stats.sims_executed >= 1
    assert stats.sims_executed + stats.sim_deduped == N

    records = service.session.records()
    misses = [record for record in records
              if record.kind == "compile"
              and (record.compilation or {}).get("cache_status") == "miss"]
    assert len(misses) == 1
    # Every request is accounted for in the compile provenance trail.
    compile_requests = {record.tags.get("request") for record in records
                        if record.kind == "compile"}
    assert len(compile_requests) == N
    clients = {record.tags.get("client") for record in records
               if record.kind == "compile"}
    assert clients == {f"c{i}" for i in range(N)}


def test_distinct_requests_all_execute(service):
    def one(n):
        client = ServiceClient(port=service.port, client_id="distinct")
        return client.simulate(SOURCE, "kernel", args=[n], wait=True)

    with ThreadPoolExecutor(max_workers=4) as pool:
        outcomes = list(pool.map(one, [1, 2, 3, 4]))
    # kernel(n) sums 2*i for i < n.
    assert [outcome.value for outcome in outcomes] == [0, 2, 6, 12]
    assert service.stats.compiles_executed == 1
    assert service.stats.sims_executed == 4
    assert service.stats.sim_deduped == 0


def test_engines_dedup_separately(service, client):
    """codegen and compiled submissions are distinct sim identities —
    they dedup within an engine, never across engines — and return
    identical rows (the engines are bit-identical by construction)."""
    codegen = client.simulate(SOURCE, "kernel", args=[7], engine="codegen")
    compiled_run = client.simulate(SOURCE, "kernel", args=[7],
                                   engine="compiled")
    assert service.stats.sims_executed == 2
    assert service.stats.sim_deduped == 0
    assert codegen.result["engine"] == "codegen"
    assert compiled_run.result["engine"] == "compiled"
    stripped = {key: value for key, value in codegen.result.items()
                if key != "engine"}
    assert stripped == {key: value
                        for key, value in compiled_run.result.items()
                        if key != "engine"}

    # Identical concurrent codegen submissions DO dedup (in-flight
    # collapse keyed by simulate_key, which includes the engine).
    N = 8

    def one(i):
        peer = ServiceClient(port=service.port, client_id=f"cg{i}")
        return peer.simulate(SOURCE, "kernel", args=[9],
                             engine="codegen", wait=True)

    with ThreadPoolExecutor(max_workers=N) as pool:
        outcomes = list(pool.map(one, range(N)))
    assert {outcome.value for outcome in outcomes} == {72}
    executed_now = service.stats.sims_executed - 2
    assert executed_now + service.stats.sim_deduped == N
    assert service.stats.sim_deduped >= 1


def test_cache_only_probe_never_compiles(service, client):
    probe = client.cache_stat(SOURCE, "kernel")
    assert probe["warm"] is False
    cold = client.compile(SOURCE, "kernel", cache_only=True)
    assert cold.cache == "cold"
    assert service.stats.compiles_executed == 0

    client.compile(SOURCE, "kernel")
    probe = client.cache_stat(SOURCE, "kernel")
    assert probe["warm"] is True
    warm = client.compile(SOURCE, "kernel", cache_only=True)
    assert warm.cache == "warm"
    assert warm.key == probe["key"]
    assert service.stats.compiles_executed == 1


def test_bad_request_is_400(service, client):
    with pytest.raises(ServiceError) as excinfo:
        client.simulate(SOURCE, "kernel", args=["six"])
    assert excinfo.value.status == 400
    # Server-side validation too, not just the client's.
    with pytest.raises(ServiceError) as excinfo:
        client._request_json("POST", "/v1/compile", {"source": SOURCE})
    assert excinfo.value.status == 400
    assert service.stats.completed == 0


def test_unknown_path_is_404(service, client):
    with pytest.raises(ServiceError) as excinfo:
        client._request_json("POST", "/v1/transmogrify", {})
    assert excinfo.value.status == 404


def test_backpressure_429(tmp_path):
    service = make_service(tmp_path / "svc", max_queue=0, record=False)
    try:
        client = ServiceClient(port=service.port)
        with pytest.raises(ServiceError) as excinfo:
            client.compile(SOURCE, "kernel")
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after > 0
        assert service.stats.rejected == 1
        assert service.stats.received == 0
    finally:
        service.stop(drain=False)


def test_drained_shutdown(tmp_path):
    service = make_service(tmp_path / "svc")
    client = ServiceClient(port=service.port)
    client.compile(SOURCE, "kernel")
    reply = client.shutdown(drain=True)
    assert reply["ok"] is True
    # New jobs are refused while draining / once stopped.
    with pytest.raises(ServiceError) as excinfo:
        client.compile(OTHER_SOURCE, "kernel")
    assert excinfo.value.status in (503, None)
    service._thread.join(timeout=10)
    assert not service._thread.is_alive()
    assert service.stats.completed == 1


def test_in_flight_job_survives_drain(tmp_path):
    """A drained shutdown finishes the job that was in flight."""
    service = make_service(tmp_path / "svc")
    client = ServiceClient(port=service.port)
    outcomes = []

    def run():
        outcomes.append(client.simulate(SOURCE, "kernel", args=[5]))

    worker = threading.Thread(target=run)
    worker.start()
    # Wait for admission, then shut down while the job is in flight.
    deadline = time.monotonic() + 10
    while service.stats.received < 1 and time.monotonic() < deadline:
        time.sleep(0.005)
    assert service.stats.received == 1
    ServiceClient(port=service.port).shutdown(drain=True)
    worker.join(timeout=30)
    service._thread.join(timeout=15)
    assert not service._thread.is_alive()
    assert outcomes and outcomes[0].value == 20
