"""Wire-schema validation and content-key semantics."""

import pytest

from repro.pipeline.cache import CompilationCache
from repro.service.protocol import JobRequest, ServiceError

SOURCE = """
int a[64];
int kernel(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 2; s = s + a[i]; }
    return s;
}
"""


def make(payload=None, kind="compile", **extra):
    base = {"source": SOURCE, "entry": "kernel"}
    base.update(payload or {})
    base.update(extra)
    return JobRequest.from_payload(base, kind)


def test_minimal_compile_request_defaults():
    request = make()
    assert request.kind == "compile"
    assert request.opt_level == "full"
    assert request.verify == "final"
    assert request.args == ()
    assert request.memsys == "perfect"
    assert request.cache_only is False


def test_roundtrip_through_payload():
    request = make(kind="simulate", args=[3, 4], memsys="realistic",
                   engine="interp", event_limit=1000, wall_limit=2.5,
                   client="t", unroll_limit=4,
                   entry_points_to={"p": ["a"]})
    again = JobRequest.from_payload(request.to_payload(), "simulate")
    assert again == request


def test_unknown_kind_is_404():
    with pytest.raises(ServiceError) as excinfo:
        make(kind="transpile")
    assert excinfo.value.status == 404


@pytest.mark.parametrize("payload", [
    {"source": ""},
    {"source": 42},
    {"entry": "not an identifier"},
    {"entry": None},
    {"opt_level": "extreme"},
    {"verify": "sometimes"},
    {"unroll_limit": -1},
    {"unroll_limit": "four"},
    {"entry_points_to": ["p"]},
    {"entry_points_to": {"p": [1]}},
    {"args": [1, "two"]},
    {"args": [True]},          # bools are not simulation integers
    {"args": 7},
    {"memsys": "imaginary"},
    {"engine": "verilog"},
    {"event_limit": -5},
    {"event_limit": 1.5},
    {"wall_limit": 0},
    {"wall_limit": -1.0},
    {"client": 99},
])
def test_invalid_payloads_are_400(payload):
    with pytest.raises(ServiceError) as excinfo:
        make(payload, kind="simulate")
    assert excinfo.value.status == 400


def test_non_object_body_is_400():
    with pytest.raises(ServiceError) as excinfo:
        JobRequest.from_payload([1, 2], "compile")
    assert excinfo.value.status == 400


def test_compile_key_is_the_cache_fingerprint(tmp_path):
    cache = CompilationCache(tmp_path)
    request = make()
    assert request.compile_key(cache) == cache.key(
        SOURCE, "kernel", request.pipeline_config())


def test_compile_key_ignores_run_knobs(tmp_path):
    cache = CompilationCache(tmp_path)
    compiled = make().compile_key(cache)
    simulated = make(kind="simulate", args=[9], memsys="realistic",
                     event_limit=10).compile_key(cache)
    assert compiled == simulated


def test_compile_key_tracks_output_relevant_config(tmp_path):
    cache = CompilationCache(tmp_path)
    assert make().compile_key(cache) != \
        make({"opt_level": "none"}).compile_key(cache)
    assert make().compile_key(cache) != \
        make({"unroll_limit": 8}).compile_key(cache)


def test_simulate_key_separates_every_run_knob(tmp_path):
    cache = CompilationCache(tmp_path)
    base = make(kind="simulate", args=[4])
    ckey = base.compile_key(cache)
    skey = base.simulate_key(ckey)
    assert make(kind="simulate", args=[4]).simulate_key(ckey) == skey
    for variant in (make(kind="simulate", args=[5]),
                    make(kind="simulate", args=[4], memsys="realistic"),
                    make(kind="simulate", args=[4], engine="interp"),
                    make(kind="simulate", args=[4], event_limit=100),
                    make(kind="simulate", args=[4], wall_limit=1.0)):
        assert variant.simulate_key(ckey) != skey
    assert base.simulate_key("other-artifact") != skey
