"""The service through its real process boundary: ``repro serve`` as a
subprocess, driven by ``repro submit`` / ``repro cache stat`` and the
client library — including the ungraceful death the stream contract is
designed to surface cleanly."""

import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.service.client import ServiceClient
from repro.service.protocol import ServiceError

SRC = str(Path(__file__).resolve().parents[2] / "src")

SOURCE = """
int a[64];
int kernel(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 2; s = s + a[i]; }
    return s;
}
"""

# Pure-arithmetic spin loop: long-running for large n, no memory
# traffic, so a mid-simulation kill test has seconds of runway.
SPIN_SOURCE = """
int spin(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) { s = s + i; }
    return s;
}
"""


def start_server(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(tmp_path / "cache"),
         "--telemetry-dir", str(tmp_path / "telemetry"),
         "--drain-grace", "10", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    line = proc.stdout.readline()
    assert "listening on" in line, line
    port = int(line.split("listening on", 1)[1].split()[0].rsplit(":", 1)[1])
    return proc, port


def run_cli(tmp_path, *argv, timeout=180):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env, capture_output=True, text=True, timeout=timeout)


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(SOURCE)
    return str(path)


def test_serve_submit_cache_roundtrip(tmp_path, source_file):
    proc, port = start_server(tmp_path)
    try:
        submit = run_cli(tmp_path, "submit", source_file,
                         "--entry", "kernel", "--args", "6",
                         "--port", str(port), "--client", "cli-test")
        assert submit.returncode == 0, submit.stdout + submit.stderr
        assert "result  : 30" in submit.stdout
        assert "cache=miss" in submit.stdout

        # Same job again: answered from the shared artifact store.
        again = run_cli(tmp_path, "submit", source_file,
                        "--entry", "kernel", "--args", "6",
                        "--port", str(port), "--json")
        assert again.returncode == 0
        events = [json.loads(line)
                  for line in again.stdout.splitlines() if line.strip()]
        assert [event["event"] for event in events] == \
            ["accepted", "compile", "result", "done"]
        assert events[1]["cache"] == "warm"

        # Remote warmth probe (exit 0 = warm).
        stat = run_cli(tmp_path, "cache", "stat", source_file,
                       "--entry", "kernel", "--host", "127.0.0.1",
                       "--port", str(port))
        assert stat.returncode == 0, stat.stdout + stat.stderr
        assert "WARM" in stat.stdout

        # Local probe against the same store, JSON form.
        local = run_cli(tmp_path, "cache", "stat", source_file,
                        "--entry", "kernel",
                        "--cache-dir", str(tmp_path / "cache"), "--json")
        assert local.returncode == 0
        payload = json.loads(local.stdout)
        assert payload["probe"]["warm"] is True
        assert payload["entries"] >= 1
        assert payload["stale_tmp"] == 0

        # A cold probe exits 1 without compiling anything.
        other = tmp_path / "other.c"
        other.write_text(SOURCE.replace("i * 2", "i * 5"))
        cold = run_cli(tmp_path, "cache", "stat", str(other),
                       "--entry", "kernel",
                       "--cache-dir", str(tmp_path / "cache"))
        assert cold.returncode == 1
        assert "cold" in cold.stdout

        ServiceClient(port=port).shutdown(drain=True)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "drained" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


def test_sigterm_drains_and_exits_zero(tmp_path, source_file):
    proc, port = start_server(tmp_path)
    try:
        submit = run_cli(tmp_path, "submit", source_file,
                         "--entry", "kernel", "--port", str(port))
        assert submit.returncode == 0
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "drained" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


def test_killed_server_yields_clean_client_error(tmp_path):
    proc, port = start_server(tmp_path)
    try:
        client = ServiceClient(port=port, timeout=60)
        spin = client.compile(SPIN_SOURCE, "spin")
        assert spin.cache == "miss"
        # A simulation with seconds of runway; SIGKILL the server while
        # its stream is open. The client must fail with a clean
        # ServiceError, not a hang or a half-parsed mystery.
        killer = threading.Timer(1.0, proc.kill)
        killer.start()
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(SPIN_SOURCE, "spin", args=[500_000_000],
                            event_limit=10**15)
        killer.cancel()
        message = str(excinfo.value)
        assert ("ended before the job completed" in message
                or "failed mid-stream" in message), message
        # wait(), not communicate(): the SIGKILLed server's pool/
        # forkserver children inherited its stdout pipe, so waiting for
        # pipe EOF could outlive the server process itself.
        assert proc.wait(timeout=10) != 0
    finally:
        proc.stdout.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
