"""Experiment drivers: smoke coverage of every table/figure harness."""

import pytest

from repro.harness import loc, section2, table2, fig18, fig19
from repro.harness.cache import DEFAULT_SUBSET, compiled, select_kernels
from repro.programs import all_kernels


class TestCache:
    def test_compilations_are_cached(self):
        first = compiled("li", "none")
        second = compiled("li", "none")
        assert first.program is second.program

    def test_select_kernels_modes(self):
        assert [k.name for k in select_kernels(None)] == list(DEFAULT_SUBSET)
        assert len(select_kernels("all")) == len(all_kernels())
        assert [k.name for k in select_kernels(["mesa"])] == ["mesa"]


class TestLoc:
    def test_rows_cover_paper_table(self):
        rows = loc.table1()
        assert len(rows) == 8
        names = [row.optimization for row in rows]
        assert "Loop decoupling+monotone loops" in names

    def test_render_mentions_both_columns(self):
        text = loc.render()
        assert "paper LOC" in text and "ours LOC" in text


class TestSection2:
    def test_result_shape(self):
        result = section2.section2()
        assert result.loads_removed == 1
        assert result.stores_removed == 2


class TestTable2:
    def test_rows_for_subset(self):
        rows = table2.table2(kernels=("li", "mesa"))
        assert [row.name for row in rows] == ["li", "mesa"]
        assert all(row.coverage_percent == 100.0 for row in rows)

    def test_render_has_total_row(self):
        text = table2.render(kernels=("li",))
        assert "Total" in text


class TestFig18:
    def test_single_kernel_row(self):
        (row,) = fig18.figure18(kernels=("li",))
        assert row.dynamic_before >= row.dynamic_after
        assert 0 <= row.static_loads_removed_pct <= 100


class TestFig19:
    def test_single_cell(self):
        rows = fig19.figure19(kernels=("li",),
                              memory_systems=(fig19.MEMORY_SYSTEMS[0],))
        (row,) = rows
        assert row.baseline_cycles > 0
        assert set(row.cycles) == set(fig19.LEVELS)
        assert row.speedup("full") > 0
