"""Experiment drivers: smoke coverage of every table/figure harness."""

import pytest

from repro.harness import loc, section2, table2, fig18, fig19
from repro.harness.cache import DEFAULT_SUBSET, compiled, select_kernels
from repro.programs import all_kernels
from repro.resilience.harness import ExperimentRunner, JobOutcome


class TestCache:
    def test_compilations_are_cached(self):
        first = compiled("li", "none")
        second = compiled("li", "none")
        assert first.program is second.program

    def test_select_kernels_modes(self):
        assert [k.name for k in select_kernels(None)] == list(DEFAULT_SUBSET)
        assert len(select_kernels("all")) == len(all_kernels())
        assert [k.name for k in select_kernels(["mesa"])] == ["mesa"]


class TestLoc:
    def test_rows_cover_paper_table(self):
        rows = loc.table1()
        assert len(rows) == 8
        names = [row.optimization for row in rows]
        assert "Loop decoupling+monotone loops" in names

    def test_render_mentions_both_columns(self):
        text = loc.render()
        assert "paper LOC" in text and "ours LOC" in text


class TestSection2:
    def test_result_shape(self):
        result = section2.section2()
        assert result.loads_removed == 1
        assert result.stores_removed == 2


class TestTable2:
    def test_rows_for_subset(self):
        rows = table2.table2(kernels=("li", "mesa"))
        assert [row.name for row in rows] == ["li", "mesa"]
        assert all(row.coverage_percent == 100.0 for row in rows)

    def test_render_has_total_row(self):
        text = table2.render(kernels=("li",))
        assert "Total" in text


class TestFig18:
    def test_single_kernel_row(self):
        (row,) = fig18.figure18(kernels=("li",))
        assert row.dynamic_before >= row.dynamic_after
        assert 0 <= row.static_loads_removed_pct <= 100


class TestFig19:
    def test_single_cell(self):
        rows = fig19.figure19(kernels=("li",),
                              memory_systems=(fig19.MEMORY_SYSTEMS[0],))
        (row,) = rows
        assert row.baseline_cycles > 0
        assert set(row.cycles) == set(fig19.LEVELS)
        assert row.speedup("full") > 0

    def test_attribution_columns(self):
        rows = fig19.figure19(kernels=("li",),
                              memory_systems=(fig19.MEMORY_SYSTEMS[0],),
                              attribution=True)
        (row,) = rows
        for level in fig19.LEVELS:
            # The critical-path invariant carries into the harness rows:
            # the per-category cycles sum to the level's cycle count.
            assert sum(row.attribution[level].values()) == row.cycles[level]
        shares = [row.category_share("full", category)
                  for category in ("memory", "compute", "token", "control")]
        assert abs(sum(shares) - 1.0) < 1e-9


class TestHardenedHarness:
    """Figure runs survive wedged kernels and resume from checkpoints."""

    def test_fig18_with_runner(self, tmp_path):
        runner = ExperimentRunner(checkpoint=tmp_path / "fig18.ckpt")
        (row,) = fig18.figure18(kernels=("li",), runner=runner)
        assert row.name == "li"
        # Same checkpoint: the row replays without resimulating.
        resumed = ExperimentRunner(checkpoint=tmp_path / "fig18.ckpt")
        (row_again,) = fig18.figure18(kernels=("li",), runner=resumed)
        assert resumed.outcomes[0].status == "resumed"
        assert row_again == row

    def test_fig19_job_keys_name_kernel_and_memsys(self, tmp_path):
        runner = ExperimentRunner(checkpoint=tmp_path / "fig19.ckpt")
        fig19.figure19(kernels=("li",),
                       memory_systems=(fig19.MEMORY_SYSTEMS[0],),
                       runner=runner)
        assert runner.outcomes[0].key == "fig19/li/perfect"

    def test_section2_with_runner(self):
        runner = ExperimentRunner()
        result = section2.section2(runner=runner)
        assert result.loads_removed == 1
        assert runner.outcomes[0].key == "section2"

    def test_degraded_rows_render_instead_of_aborting(self):
        runner = ExperimentRunner()
        runner.outcomes.append(JobOutcome(key="fig18/go", status="timeout",
                                          error="wall limit", attempts=1))
        text = fig18.render(kernels=(), runner=runner)
        assert "DEGRADED" in text
        assert "degraded fig18/go: TIMEOUT" in text

    def test_fig19_degraded_render(self):
        runner = ExperimentRunner()
        runner.outcomes.append(JobOutcome(key="fig19/go/perfect",
                                          status="error", error="deadlock",
                                          attempts=1))
        text = fig19.render(kernels=(), runner=runner)
        assert "DEGRADED" in text
        assert "degraded fig19/go/perfect" in text

    def test_section2_degraded_render(self, monkeypatch):
        from repro.errors import ReproError

        def boom(*args, **kwargs):
            raise ReproError("compiler exploded")

        runner = ExperimentRunner()
        monkeypatch.setattr(section2, "compile_source_cached", boom)
        text = section2.render(runner=runner)
        assert text.startswith("Section 2 example: DEGRADED")
        assert "compiler exploded" in text
