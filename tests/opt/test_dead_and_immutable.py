"""§4.1 dead memory operations and §4.2 immutable loads."""

from repro import compile_minic
from repro.pegasus import nodes as N


class TestDeadMemOps:
    def test_constant_false_branch_store_removed(self, differential):
        source = """
        int g_v;
        int f(int x) {
            if (0) g_v = 99;
            g_v = x;
            return g_v;
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        assert program.static_counts()["stores"] == 1
        differential(source, "f", [5])

    def test_constant_false_branch_load_removed(self, differential):
        source = """
        int g_v;
        int f(int x) {
            int r = x;
            if (x != x) r = g_v;
            return r;
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        # x != x is not folded (no value analysis), but an if(0) is:
        source2 = source.replace("x != x", "0")
        program2 = compile_minic(source2, "f", opt_level="full")
        assert program2.static_counts()["loads"] == 0
        differential(source2, "f", [5])


class TestImmutableLoads:
    def test_const_table_load_untethered(self):
        source = """
        const int tbl[4] = { 10, 20, 30, 40 };
        int buf[4];
        int f(int i) {
            buf[0] = i;
            return tbl[i] + buf[0];
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        loads = program.graph.by_kind(N.LoadNode)
        immutable = [l for l in loads if l.immutable]
        # The tbl load needs no serialization; statically-known it is not
        # (index is dynamic), so it survives as an immutable load.
        assert len(immutable) == 1

    def test_statically_known_const_load_folded(self):
        source = """
        const int tbl[4] = { 10, 20, 30, 40 };
        int f(void) { return tbl[2]; }
        """
        program = compile_minic(source, "f", opt_level="full")
        assert program.static_counts()["loads"] == 0
        assert program.simulate([]).return_value == 30

    def test_string_constant_load(self, differential):
        source = """
        const char msg[] = "spatial";
        int f(void) {
            int i = 0; int s = 0;
            while (msg[i]) { s += msg[i]; i++; }
            return s;
        }
        """
        differential(source, "f", [])
        program = compile_minic(source, "f", opt_level="full")
        result = program.simulate([])
        assert result.return_value == sum(b"spatial")

    def test_immutable_load_behaviour(self, differential):
        source = """
        const short sines[8] = { 0, 383, 707, 924, 1000, 924, 707, 383 };
        int wave[16];
        int f(int n) {
            int i; int s = 0;
            for (i = 0; i < n; i++) {
                wave[i] = sines[i & 7];
                s += wave[i];
            }
            return s;
        }
        """
        differential(source, "f", [16])
