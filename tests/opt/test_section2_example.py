"""The paper's §2 example: the headline removal of 2 stores + 1 load."""

from repro import compile_minic
from repro.harness.section2 import SECTION2_SOURCE, section2


class TestSection2:
    def test_unoptimized_counts(self):
        program = compile_minic(SECTION2_SOURCE, "f", opt_level="none")
        counts = program.static_counts()
        # a[i] += *p loads a[i] and *p; a[i] <<= a[i+1] loads both operands.
        assert counts["loads"] == 4
        assert counts["stores"] == 3

    def test_full_pipeline_removes_two_stores_and_one_load(self):
        result = section2()
        assert result.stores_removed == 2, "paper: both temporary stores go"
        assert result.loads_removed == 1, "paper: the temporary load goes"
        assert result.loads_after == 3
        assert result.stores_after == 1

    def test_behaviour_preserved(self, differential):
        driver = SECTION2_SOURCE + """
        unsigned buffer[8];
        unsigned value = 5;
        unsigned drive(int i, int use_p)
        {
            int k;
            for (k = 0; k < 8; k++) buffer[k] = k + 1;
            f(use_p ? &value : (unsigned*)0, buffer, i);
            return buffer[i];
        }
        """
        for args in ([3, 1], [3, 0], [0, 1], [6, 0]):
            differential(driver, "drive", args)

    def test_medium_does_not_remove_redundancy(self):
        # The removals are §5 optimizations (full); medium only
        # disambiguates and pipelines.
        program = compile_minic(SECTION2_SOURCE, "f", opt_level="medium")
        counts = program.static_counts()
        assert counts["stores"] == 3
