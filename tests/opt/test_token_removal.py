"""§4.3 token-edge removal by address disambiguation."""

from repro import compile_minic
from repro.pegasus import nodes as N
from repro.pegasus.tokens import source_port


def memop_deps(program, hb=None):
    """Direct token dependences between memory ops across the graph."""
    edges = []
    for hb_id, relation in program.build.relations.items():
        for op in relation.ops:
            for dep in relation.deps[op]:
                if isinstance(dep, N.Node):
                    edges.append((dep, op))
    return edges


class TestDisambiguation:
    def test_figure1_commuting_accesses(self):
        # a[i] and a[i+1] provably commute: no direct token edge between
        # accesses at offset 4.
        source = """
        void f(unsigned a[], int i) {
            a[i] = 1;
            a[i] <<= a[i+1];
        }
        """
        base = compile_minic(source, "f", opt_level="none")
        opt = compile_minic(source, "f", opt_level="medium")
        base_edges = len(memop_deps(base))
        opt_edges = len(memop_deps(opt))
        assert opt_edges < base_edges

    def test_closure_preserved_through_removal(self, differential):
        # The §5-style chain store t[0]; store t[1]; load t[0]: removing the
        # t[1] links must keep store t[0] ordered before load t[0].
        source = """
        int t[4];
        int f(int x) {
            t[0] = x;
            t[1] = x + 1;
            return t[0];
        }
        """
        differential(source, "f", [7])
        program = compile_minic(source, "f", opt_level="medium")
        edges = memop_deps(program)
        stores = program.graph.by_kind(N.StoreNode)
        loads = program.graph.by_kind(N.LoadNode)
        t0_store = next(s for s in stores)  # first store in program order
        assert any(dep is t0_store and isinstance(op, N.LoadNode)
                   for dep, op in edges), (
            "load t[0] must still (directly) depend on store t[0]"
        )

    def test_distinct_arrays_disambiguated(self, differential):
        source = """
        int a[8]; int b[8];
        int f(int i) {
            a[i] = 1;
            b[i] = 2;
            return a[i] + b[i];
        }
        """
        differential(source, "f", [3])
        program = compile_minic(source, "f", opt_level="medium")
        for dep, op in memop_deps(program):
            dep_objs = {loc.symbol for loc in dep.rwset}
            op_objs = {loc.symbol for loc in op.rwset}
            assert dep_objs & op_objs, (
                "after disambiguation only same-object edges remain"
            )

    def test_unknown_pointers_stay_ordered(self, differential):
        source = """
        void f(int *p, int *q) {
            *p = 1;
            *q = 2;
        }
        """
        program = compile_minic(source, "f", opt_level="medium")
        edges = memop_deps(program)
        assert edges, "aliasing stores must keep their token edge"

    def test_pragma_removes_order(self):
        source = """
        void f(int *p, int *q) {
        #pragma independent p q
            *p = 1;
            *q = 2;
        }
        """
        program = compile_minic(source, "f", opt_level="medium")
        assert memop_deps(program) == []

    def test_induction_offset_residues(self, differential):
        # Stride 8 bytes with +0/+4 offsets: never equal at any iteration
        # pair (§4.3 heuristic 2 territory).
        source = """
        int a[64];
        int f(int n) {
            int i;
            for (i = 0; i < n; i += 2) {
                a[i] = i;
                a[i + 1] = a[i] + 1;
            }
            return a[5];
        }
        """
        differential(source, "f", [20])
