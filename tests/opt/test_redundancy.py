"""§5.1-§5.3: merging, store-before-store, load-after-store."""

from repro import compile_minic
from repro.pegasus import nodes as N


def counts(source, level):
    return compile_minic(source, "f", opt_level=level).static_counts()


class TestLoadAfterStore:
    def test_dominating_store_kills_load(self, differential):
        source = """
        int g_v;
        int f(int x) {
            g_v = x * 2;
            return g_v;
        }
        """
        assert counts(source, "none")["loads"] == 1
        assert counts(source, "full")["loads"] == 0
        differential(source, "f", [21])

    def test_partial_stores_forward_through_mux(self, differential):
        # Figure 9: two predicated stores; the load survives with a
        # strengthened predicate only if the stores don't dominate. Here
        # they do dominate (if/else covers), so the load dies.
        source = """
        int g_v;
        int f(int x) {
            if (x) g_v = 1; else g_v = 2;
            return g_v;
        }
        """
        assert counts(source, "full")["loads"] == 0
        program = compile_minic(source, "f", opt_level="full")
        assert program.static_counts()["muxes"] >= 1
        differential(source, "f", [0])
        differential(source, "f", [1])

    def test_non_dominating_store_keeps_guarded_load(self, differential):
        source = """
        int g_v;
        int f(int x) {
            if (x) g_v = 7;
            return g_v;
        }
        """
        full = counts(source, "full")
        assert full["loads"] == 1, "load must survive for the not-taken path"
        differential(source, "f", [0], check_memory=True)
        differential(source, "f", [1])

    def test_forwarding_skips_mismatched_width(self, differential):
        source = """
        unsigned char bytes[8];
        int f(int x) {
            bytes[0] = (unsigned char)x;
            bytes[1] = 0;
            return bytes[0];
        }
        """
        differential(source, "f", [300])


class TestStoreBeforeStore:
    def test_postdominated_store_removed(self, differential):
        source = """
        int g_v;
        int f(int x) {
            g_v = x;
            g_v = x + 1;
            return 0;
        }
        """
        assert counts(source, "none")["stores"] == 2
        assert counts(source, "full")["stores"] == 1
        differential(source, "f", [5])

    def test_conditional_overwrite_strengthens_only(self, differential):
        source = """
        int g_v;
        void f(int x) {
            g_v = 1;
            if (x) g_v = 2;
        }
        """
        # The first store must survive (x may be false)...
        assert counts(source, "full")["stores"] == 2
        differential(source, "f", [0])
        differential(source, "f", [1])

    def test_chain_of_three(self, differential):
        source = """
        int g_v;
        int f(int x) {
            g_v = 1;
            g_v = 2;
            g_v = x;
            return g_v;
        }
        """
        assert counts(source, "full")["stores"] == 1
        assert counts(source, "full")["loads"] == 0
        differential(source, "f", [9])


class TestMergeEquivalent:
    def test_cse_identical_loads(self, differential):
        source = """
        int a[8];
        int f(int i) {
            return a[i] * a[i];
        }
        """
        assert counts(source, "none")["loads"] == 2
        assert counts(source, "full")["loads"] == 1
        differential(source, "f", [2])

    def test_hoisting_loads_from_branches(self, differential):
        # Both arms read a[i]: merged into one load with or-ed predicate.
        source = """
        int a[8];
        int f(int i, int c) {
            int r;
            if (c) r = a[i] + 1; else r = a[i] - 1;
            return r;
        }
        """
        assert counts(source, "full")["loads"] == 1
        differential(source, "f", [2, 0])
        differential(source, "f", [2, 1])

    def test_loads_with_intervening_store_not_merged(self, differential):
        source = """
        int a[8];
        int f(int i) {
            int first = a[i];
            a[i] = first + 1;
            return first + a[i];
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        # The second load reads a different memory state: must survive (it
        # may be forwarded from the store, but never merged with load #1).
        differential(source, "f", [3])

    def test_identical_stores_merged(self, differential):
        source = """
        int g_v;
        int f(int x, int c) {
            if (c) g_v = x; else g_v = x;
            return g_v;
        }
        """
        assert counts(source, "full")["stores"] == 1
        differential(source, "f", [5, 0])
        differential(source, "f", [5, 1])
