"""Scalar support passes: constant folding, algebraic rules, cleanup."""

from repro.frontend import types as ty
from repro.cfg.lower import lower_program
from repro.cfg.inline import inline_program
from repro.frontend import parse_program
from repro.pegasus.builder import build_pegasus
from repro.pegasus import nodes as N
from repro.opt.context import OptContext
from repro.opt.constant_fold import ConstantFold
from repro.opt.cleanup import Cleanup


def optimize(source: str, entry: str = "f"):
    lowered = lower_program(parse_program(source))
    flat = inline_program(lowered, entry)
    build = build_pegasus(flat, lowered.globals)
    ctx = OptContext(build)
    ConstantFold().run(ctx)
    Cleanup().run(ctx)
    from repro.pegasus.verify import verify_graph
    verify_graph(ctx.graph)
    return ctx


def binop_count(ctx, op):
    return sum(1 for n in ctx.graph.by_kind(N.BinOpNode) if n.op == op)


class TestFolding:
    def test_constant_arithmetic_folds(self):
        ctx = optimize("int f(void) { return (3 + 4) * 2; }")
        assert binop_count(ctx, "add") == 0
        assert binop_count(ctx, "mul") == 0

    def test_add_zero_identity(self):
        ctx = optimize("int f(int a) { return a + 0; }")
        assert binop_count(ctx, "add") == 0

    def test_mul_one_identity(self):
        ctx = optimize("int f(int a) { return a * 1; }")
        assert binop_count(ctx, "mul") == 0

    def test_folding_preserves_semantics(self, differential):
        differential("int f(int a) { return (a + 0) * 1 + (2 * 3); }",
                     "f", [5], levels=("none", "basic"))

    def test_constant_branch_removes_dead_region(self):
        source = """
        int f(int a) {
            if (0) { a = a * 111; }
            return a;
        }
        """
        folded = optimize(source)
        muls = binop_count(folded, "mul")
        assert muls == 0, "the dead arm's compute must be cleaned up"

    def test_wrapping_respected_when_folding(self, differential):
        differential("int f(void) { char c = 100; return (char)(c + 100); }",
                     "f", [], levels=("none", "basic"))


class TestCleanup:
    def test_unused_computation_removed(self):
        source = """
        int f(int a) {
            int unused = a * 17 + 4;
            return a;
        }
        """
        base_ctx = OptContext(_build(source))
        before = len(base_ctx.graph)
        Cleanup().run(base_ctx)
        assert len(base_ctx.graph) < before

    def test_memory_ops_never_cleaned(self):
        source = """
        int g_v;
        int f(int a) { g_v = a; return a; }
        """
        ctx = optimize(source)
        assert len(ctx.graph.by_kind(N.StoreNode)) == 1


def _build(source, entry="f"):
    lowered = lower_program(parse_program(source))
    flat = inline_program(lowered, entry)
    return build_pegasus(flat, lowered.globals)
