"""Chain cases for §5.2/§5.3: sequential same-address store sequences."""

from repro import compile_minic


def counts(source, level="full"):
    return compile_minic(source, "f", opt_level=level).static_counts()


class TestStoreChains:
    def test_quantize_idiom_fully_collapses(self, differential):
        # The epic/jpeg rounding idiom: an output slot used as temporary.
        source = """
        int out[8];
        int f(int v, int q, int i) {
            out[i] = v + q / 2;
            if (v < 0) out[i] = -v + q / 2;
            out[i] /= q;
            if (v < 0) out[i] = -out[i];
            return out[i];
        }
        """
        full = counts(source)
        assert full["loads"] == 0, "all re-loads forwarded"
        assert full["stores"] == 2, "both temporary stores removed"
        for args in ([7, 3, 2], [-7, 3, 2], [0, 5, 0], [-1, 9, 7]):
            differential(source, "f", args)

    def test_three_deep_unconditional_chain(self, differential):
        source = """
        int g_v;
        int f(int a, int b) {
            g_v = a;
            g_v = g_v + b;
            g_v = g_v * 2;
            return g_v;
        }
        """
        full = counts(source)
        assert full["stores"] == 1
        assert full["loads"] == 0
        differential(source, "f", [3, 4])

    def test_diamond_then_overwrite(self, differential):
        # Mutually exclusive stores, then an unconditional overwrite: all
        # but the last store die (the Figure 1 cascade).
        source = """
        int g_v;
        int f(int c, int x) {
            if (c) g_v = x; else g_v = -x;
            g_v = 7;
            return g_v;
        }
        """
        full = counts(source)
        assert full["stores"] == 1
        differential(source, "f", [0, 5])
        differential(source, "f", [1, 5])

    def test_partial_overwrite_chain_keeps_guards(self, differential):
        # s1 unconditional, s2 and s3 conditional with different guards:
        # s1 survives (guards may both be false) but is strengthened.
        source = """
        int g_v;
        int f(int a, int b, int x) {
            g_v = x;
            if (a) g_v = 1;
            if (b) g_v = 2;
            return g_v;
        }
        """
        for args in ([0, 0, 9], [1, 0, 9], [0, 1, 9], [1, 1, 9]):
            differential(source, "f", args)

    def test_interleaved_other_object_does_not_block(self, differential):
        source = """
        int g_v; int g_w;
        int f(int x) {
            g_v = x;
            g_w = x + 1;
            g_v = x + 2;
            return g_v + g_w;
        }
        """
        full = counts(source)
        assert full["stores"] == 2  # one per object
        differential(source, "f", [5])


class TestLoadChains:
    def test_forward_through_conditional_store_pair(self, differential):
        source = """
        int g_v;
        int f(int c, int x) {
            g_v = x;
            if (c) g_v = x * 2;
            return g_v;
        }
        """
        full = counts(source)
        assert full["loads"] == 0
        differential(source, "f", [0, 5])
        differential(source, "f", [1, 5])

    def test_aliasing_store_between_blocks_forwarding(self, differential):
        # *p may alias g_v: the load cannot be (fully) forwarded from the
        # first store; behaviour must still match the oracle both ways.
        source = """
        int g_v;
        int f(int *p, int x) {
            g_v = x;
            *p = 99;
            return g_v;
        }
        int drive(int alias, int x) {
            int other;
            return f(alias ? &g_v : &other, x);
        }
        """
        differential(source, "drive", [0, 5])
        differential(source, "drive", [1, 5])

    def test_chain_through_different_width_stops(self, differential):
        source = """
        int words[2];
        int f(int x) {
            unsigned char *bytes = (unsigned char*)words;
            words[0] = x;
            bytes[0] = 7;
            return words[0];
        }
        """
        differential(source, "f", [0x11223344])
