"""Negative cases: situations where each optimization must NOT fire.

Unsound firing shows up as an oracle divergence; these tests additionally
pin the static structure so a silently-disabled guard is caught even when
a benign input happens to produce the right values.
"""

from repro import compile_minic
from repro.pegasus import nodes as N


def counts(source, level="full", **kwargs):
    return compile_minic(source, "f", opt_level=level, **kwargs).static_counts()


class TestForwardingGuards:
    def test_may_alias_store_blocks_forwarding(self, differential):
        source = """
        int g_v;
        int f(int *p, int x) {
            g_v = x;
            *p = x + 1;
            return g_v;
        }
        int drive(int mode, int x) {
            int spare;
            return f(mode ? &g_v : &spare, x);
        }
        """
        program = compile_minic(source, "drive", opt_level="full")
        assert program.static_counts()["loads"] == 1, (
            "the load must stay: *p may have clobbered g_v"
        )
        differential(source, "drive", [0, 7])
        differential(source, "drive", [1, 7])

    def test_different_width_store_blocks_forwarding(self, differential):
        source = """
        int cell[1];
        int f(int x) {
            cell[0] = x;
            *((short*)cell) = 7;
            return cell[0];
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        assert program.static_counts()["loads"] == 1
        differential(source, "f", [0x11223344])

    def test_value_dependent_predicate_blocks(self, differential):
        # The second store's predicate depends on the first load's value;
        # rewriting must not create a combinational cycle.
        source = """
        int g_v; int g_w;
        int f(int x) {
            g_v = x;
            if (g_v > 3) g_w = 1;
            return g_w;
        }
        """
        differential(source, "f", [5])
        differential(source, "f", [1])


class TestStoreEliminationGuards:
    def test_forwardable_read_between_stores_cascades(self, differential):
        # The read between the stores is forwardable, so the legal (and
        # smarter) outcome is a full cascade: forward the read, then the
        # overwritten store dies. Semantics must hold either way.
        source = """
        int g_v;
        int f(int x) {
            int seen;
            g_v = x;
            seen = g_v;
            g_v = x + 1;
            return seen * 100 + g_v;
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        assert program.static_counts()["stores"] == 1
        assert program.static_counts()["loads"] == 0
        differential(source, "f", [4])

    def test_may_alias_read_between_stores(self, differential):
        source = """
        int g_v;
        int f(int *p, int x) {
            int seen;
            g_v = x;
            seen = *p;
            g_v = x + 1;
            return seen * 100 + g_v;
        }
        int drive(int mode, int x) {
            int spare = -5;
            return f(mode ? &g_v : &spare, x);
        }
        """
        differential(source, "drive", [0, 4])
        differential(source, "drive", [1, 4])


class TestMergeGuards:
    def test_loads_across_store_not_merged(self):
        source = """
        int a[4];
        int f(int i, int x) {
            int first = a[i];
            a[i] = x;
            return first + a[i];
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        # Forwarding may remove the *second* load, but merging the two
        # loads into one would be wrong; the first load must read memory.
        assert program.static_counts()["loads"] >= 1

    def test_different_addresses_not_merged(self, differential):
        source = """
        int a[8];
        int f(int i) { return a[i] + a[i + 1]; }
        """
        program = compile_minic(source, "f", opt_level="full")
        assert program.static_counts()["loads"] == 2
        differential(source, "f", [3])

    def test_stores_with_different_values_not_merged(self, differential):
        source = """
        int g_v;
        int f(int c, int x) {
            if (c) g_v = x; else g_v = x + 1;
            return g_v;
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        assert program.static_counts()["stores"] == 2
        differential(source, "f", [0, 5])
        differential(source, "f", [1, 5])


class TestLoopGuards:
    def test_unknown_stride_not_pipelined(self, differential):
        source = """
        int a[64];
        int f(int n, int s) {
            int i;
            for (i = 0; i < n; i = i + s) a[i & 63] = i;
            return a[0];
        }
        """
        differential(source, "f", [40, 3])

    def test_store_via_data_dependent_index(self, differential):
        source = """
        int next_idx[16]; int out[16];
        int f(int n) {
            int i; int idx = 0;
            for (i = 0; i < 16; i++) next_idx[i] = (i * 7 + 3) & 15;
            for (i = 0; i < n; i++) {
                out[idx] = i;
                idx = next_idx[idx];
            }
            return out[3];
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        differential(source, "f", [12])

    def test_pointer_param_loop_stays_ordered_without_pragma(self, differential):
        source = """
        int buf[32];
        int f(int *p, int *q, int n) {
            int i;
            for (i = 0; i < n; i++) { p[i] = q[i] + 1; }
            return p[0];
        }
        int drive(int n) { return f(buf, buf + 1, n); }
        """
        # p[i] and q[i] overlap at distance 1: must serialize correctly.
        differential(source, "drive", [20])

    def test_entry_points_to_enables_pipelining(self):
        source = """
        int a[128]; int b[128];
        int f(int *dst, int *src, int n) {
            int i;
            for (i = 0; i < n; i++) dst[i] = src[i] * 2;
            return dst[n-1];
        }
        """
        from repro.sim.memsys import MemorySystem, REALISTIC_2PORT
        plain = compile_minic(source, "f", opt_level="medium")
        annotated = compile_minic(source, "f", opt_level="medium",
                                  entry_points_to={"dst": ["a"], "src": ["b"]})
        # Simulate with real arrays bound to the parameters.
        def run(program):
            memory = program.new_memory()
            a_addr = memory.addr_of(program.lowered.globals[0])
            b_addr = memory.addr_of(program.lowered.globals[1])
            return program.simulate([a_addr, b_addr, 60], memory=memory,
                                    memsys=MemorySystem(REALISTIC_2PORT))
        slow = run(plain)
        fast = run(annotated)
        assert fast.return_value == slow.return_value
        assert fast.cycles < slow.cycles, (
            "points-to annotations must unlock pipelining"
        )
