"""§5.4 loop-invariant load motion."""

from repro import compile_minic
from repro.pegasus import nodes as N


def loads_in_loops(program):
    loop_hbs = set(program.build.loop_predicates)
    return [l for l in program.graph.by_kind(N.LoadNode)
            if l.hyperblock in loop_hbs]


class TestHoisting:
    def test_invariant_global_load_hoisted(self, differential):
        source = """
        int a[64]; int factor = 7;
        int f(int n) {
            int i; int s = 0;
            for (i = 0; i < n; i++) s += a[i] * factor;
            return s;
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        names = set()
        for load in loads_in_loops(program):
            names |= {loc.symbol.name for loc in load.rwset}
        assert "factor" not in names, "the factor load must leave the loop"
        differential(source, "f", [10])

    def test_dynamic_count_drops(self):
        source = """
        int a[64]; int factor = 7;
        int f(int n) {
            int i; int s = 0;
            for (i = 0; i < n; i++) s += a[i] * factor;
            return s;
        }
        """
        base = compile_minic(source, "f", opt_level="none").simulate([50])
        full = compile_minic(source, "f", opt_level="full").simulate([50])
        assert full.loads <= base.loads - 49, "one load per iteration saved"
        assert full.return_value == base.return_value

    def test_zero_trip_loop_safe(self, differential):
        source = """
        int a[64]; int factor = 7;
        int f(int n) {
            int i; int s = 0;
            for (i = 0; i < n; i++) s += a[i] * factor;
            return s;
        }
        """
        differential(source, "f", [0])

    def test_written_class_not_hoisted(self, differential):
        source = """
        int state[4];
        int f(int n) {
            int i; int s = 0;
            for (i = 0; i < n; i++) {
                s += state[0];
                state[0] = s & 7;
            }
            return s;
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        names = set()
        for load in loads_in_loops(program):
            names |= {loc.symbol.name for loc in load.rwset}
        assert "state" in names, "a loop-varying load must stay inside"
        differential(source, "f", [9])

    def test_write_elsewhere_in_loop_body_blocks_hoist(self, differential):
        # The write happens in a *different* hyperblock of the same loop
        # body (after an inner loop) — the pegwit-style trap.
        source = """
        int state[4]; int buf[16];
        int f(int n) {
            int i; int j; int s = 0;
            for (i = 0; i < n; i++) {
                s += state[0];
                for (j = 0; j < 4; j++) buf[j] = s + j;
                state[0] = buf[1];
            }
            return s;
        }
        """
        differential(source, "f", [6])

    def test_unknown_pointer_not_hoisted(self, differential):
        # Fault safety: *p has no object root, so it must not be executed
        # speculatively ahead of the loop guard.
        source = """
        int a[64];
        int f(int *p, int n) {
            int i; int s = 0;
            for (i = 0; i < n; i++) s += a[i] + *p;
            return s;
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        kinds = set()
        for load in loads_in_loops(program):
            kinds |= {loc.kind for loc in load.rwset}
        assert "param" in kinds, "*p must stay in the loop"

    def test_invariant_load_under_pragma(self, differential):
        source = """
        int dst[64]; int scale_factor = 3;
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) dst[i] = i * scale_factor;
            return dst[n-1];
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        run = program.simulate([30])
        # scale_factor read once, dst written 30 times.
        assert run.loads <= 2
        differential(source, "f", [30])
