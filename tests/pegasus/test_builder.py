"""Pegasus construction: structure of built graphs (§3)."""

import pytest

from repro import compile_minic
from repro.frontend import parse_program
from repro.cfg.lower import lower_program
from repro.cfg.inline import inline_program
from repro.pegasus.builder import build_pegasus
from repro.pegasus.verify import verify_graph
from repro.pegasus import nodes as N


def build(source: str, entry: str = "f", entry_points_to=None):
    lowered = lower_program(parse_program(source))
    flat = inline_program(lowered, entry)
    result = build_pegasus(flat, lowered.globals, entry_points_to)
    verify_graph(result.graph)
    return result


class TestStraightLine:
    def test_minimal_function(self):
        result = build("int f(int a) { return a + 1; }")
        graph = result.graph
        assert graph.return_node is not None
        assert len(graph.by_kind(N.ParamNode)) == 1
        assert len(graph.by_kind(N.InitialTokenNode)) >= 1

    def test_memory_ops_carry_rwsets(self):
        result = build("int g_v; int f(void) { g_v = 3; return g_v; }")
        loads = result.graph.by_kind(N.LoadNode)
        stores = result.graph.by_kind(N.StoreNode)
        assert len(loads) == 1 and len(stores) == 1
        assert loads[0].rwset and stores[0].rwset

    def test_load_after_store_direct_token(self):
        result = build("int g_v; int f(void) { g_v = 3; return g_v; }")
        load = result.graph.by_kind(N.LoadNode)[0]
        store = result.graph.by_kind(N.StoreNode)[0]
        token_in = load.inputs[N.LoadNode.TOKEN_IN]
        assert token_in is not None and token_in.node is store

    def test_commuting_reads_not_sequentialized(self):
        # Figure 4: two reads never get a token edge between them.
        result = build("""
        int a; int b;
        int f(void) { return a + b; }
        """)
        loads = result.graph.by_kind(N.LoadNode)
        assert len(loads) == 2
        for load in loads:
            token_in = load.inputs[N.LoadNode.TOKEN_IN]
            assert not isinstance(token_in.node, N.LoadNode)


class TestPredication:
    def test_diamond_becomes_mux(self):
        result = build("""
        int f(int x) {
            int r;
            if (x > 0) r = x * 2; else r = x - 1;
            return r;
        }
        """)
        assert len(result.graph.by_kind(N.MuxNode)) == 1

    def test_conditional_store_is_predicated_not_branched(self):
        result = build("""
        int g_v;
        void f(int x) { if (x) g_v = 1; }
        """)
        store = result.graph.by_kind(N.StoreNode)[0]
        pred = store.inputs[N.StoreNode.PRED_IN]
        assert not isinstance(pred.node, N.ConstNode), (
            "conditional store must have a non-constant predicate"
        )

    def test_mutually_exclusive_stores_share_token_consumer(self):
        # Figure 1A/B: both stores feed the next dependent operation.
        result = build("""
        int g_v;
        int f(int x) {
            if (x) g_v = 1; else g_v = 2;
            return g_v;
        }
        """)
        load = result.graph.by_kind(N.LoadNode)[0]
        token_in = load.inputs[N.LoadNode.TOKEN_IN]
        assert isinstance(token_in.node, N.CombineNode)
        sources = {port.node for port in token_in.node.inputs}
        stores = set(result.graph.by_kind(N.StoreNode))
        assert stores <= sources


class TestLoops:
    SOURCE = """
    int f(int k) {
        int a = 0; int b = 1;
        while (k) {
            int t = a + b;
            a = b; b = t;
            k = k - 1;
        }
        return a;
    }
    """

    def test_fibonacci_shape(self):
        # Figure 2: merges at the loop header, etas on exits/back edges.
        result = build(self.SOURCE)
        merges = [m for m in result.graph.by_kind(N.MergeNode)
                  if m.back_inputs]
        assert merges, "loop must produce header merges"
        for merge in merges:
            assert merge.has_control

    def test_loop_predicate_registered(self):
        result = build(self.SOURCE)
        assert result.loop_predicates

    def test_token_circuit_around_loop(self):
        result = build("""
        int a[16];
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) a[i] = i;
            return a[0];
        }
        """)
        token_merges = [
            m for m in result.graph.by_kind(N.MergeNode)
            if m.value_class == N.TOKEN and m.back_inputs
        ]
        assert token_merges, "loops must carry per-class token circuits"


class TestPointsTo:
    def test_entry_points_to_refines_classes(self):
        source = """
        int a[8]; int b[8];
        int f(int *p, int *q, int n) {
            int i;
            for (i = 0; i < n; i++) p[i] = q[i];
            return p[0];
        }
        """
        conservative = compile_minic(source, "f", opt_level="none")
        refined = compile_minic(source, "f", opt_level="none",
                                entry_points_to={"p": ["a"], "q": ["b"]})
        # Without annotations p and q collapse into one class; with them
        # the store and load end up in distinct classes.
        assert (refined.build.pointers.classes.num_classes
                > conservative.build.pointers.classes.num_classes)

    def test_pragma_splits_classes(self):
        source_with = """
        int f(int *p, int *q, int n) {
        #pragma independent p q
            int i;
            for (i = 0; i < n; i++) p[i] = q[i];
            return p[0];
        }
        """
        source_without = source_with.replace("#pragma independent p q\n", "")
        with_pragma = build(source_with)
        without = build(source_without)
        assert (with_pragma.pointers.classes.num_classes
                > without.pointers.classes.num_classes)


class TestEntryPointsToAPI:
    def test_points_to_names_resolved(self):
        source = """
        int a[8];
        int f(int *p) { return p[0]; }
        """
        program = compile_minic(source, "f", opt_level="none",
                                entry_points_to={"p": ["a"]})
        load = program.graph.by_kind(N.LoadNode)[0]
        names = {loc.symbol.name for loc in load.rwset}
        assert names == {"a"}
