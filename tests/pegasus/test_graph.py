"""Graph core: wiring, uses index, topological order, removal."""

import pytest

from repro.errors import PegasusError
from repro.frontend import types as ty
from repro.pegasus.graph import Graph, OutPort
from repro.pegasus import nodes as N


def make_graph():
    return Graph("test")


class TestWiring:
    def test_add_assigns_ids(self):
        graph = make_graph()
        a = graph.add(N.ConstNode(1, ty.INT))
        b = graph.add(N.ConstNode(2, ty.INT))
        assert a.id != b.id
        assert len(graph) == 2

    def test_uses_index_tracks_inputs(self):
        graph = make_graph()
        a = graph.add(N.ConstNode(1, ty.INT))
        b = graph.add(N.ConstNode(2, ty.INT))
        add = graph.add(N.BinOpNode("add", ty.INT, a.out(), b.out()))
        assert [slot.node for slot in graph.uses(a.out())] == [add]

    def test_set_input_moves_use(self):
        graph = make_graph()
        a = graph.add(N.ConstNode(1, ty.INT))
        b = graph.add(N.ConstNode(2, ty.INT))
        neg = graph.add(N.UnOpNode("neg", ty.INT, a.out()))
        graph.set_input(neg, 0, b.out())
        assert not graph.has_uses(a.out())
        assert graph.has_uses(b.out())

    def test_redirect_uses(self):
        graph = make_graph()
        a = graph.add(N.ConstNode(1, ty.INT))
        b = graph.add(N.ConstNode(2, ty.INT))
        consumers = [graph.add(N.UnOpNode("neg", ty.INT, a.out()))
                     for _ in range(3)]
        moved = graph.redirect_uses(a.out(), b.out())
        assert moved == 3
        assert not graph.has_uses(a.out())
        for consumer in consumers:
            assert consumer.inputs[0] == b.out()

    def test_remove_requires_no_uses(self):
        graph = make_graph()
        a = graph.add(N.ConstNode(1, ty.INT))
        graph.add(N.UnOpNode("neg", ty.INT, a.out()))
        with pytest.raises(PegasusError):
            graph.remove(a)

    def test_remove_releases_producer(self):
        graph = make_graph()
        a = graph.add(N.ConstNode(1, ty.INT))
        neg = graph.add(N.UnOpNode("neg", ty.INT, a.out()))
        graph.set_input(neg, 0, None)
        graph.remove(neg)
        assert not graph.has_uses(a.out())
        graph.remove(a)
        assert len(graph) == 0

    def test_connect_foreign_node_rejected(self):
        graph = make_graph()
        other = Graph("other")
        foreign = other.add(N.ConstNode(1, ty.INT))
        neg = graph.add(N.UnOpNode("neg", ty.INT, None))
        with pytest.raises(PegasusError):
            graph.set_input(neg, 0, foreign.out())


class TestTopology:
    def test_topological_order_respects_edges(self):
        graph = make_graph()
        a = graph.add(N.ConstNode(1, ty.INT))
        b = graph.add(N.UnOpNode("neg", ty.INT, a.out()))
        c = graph.add(N.UnOpNode("neg", ty.INT, b.out()))
        order = graph.topological_order()
        assert order.index(a) < order.index(b) < order.index(c)

    def test_back_edges_ignored(self):
        graph = make_graph()
        merge = N.MergeNode(ty.INT, 2)
        graph.add(merge)
        eta = graph.add(N.EtaNode(ty.INT, merge.out(),
                                  graph.add(N.ConstNode(1, ty.INT)).out()))
        entry = graph.add(N.ConstNode(0, ty.INT))
        graph.set_input(merge, 0, entry.out())
        graph.set_input(merge, 1, eta.out())
        merge.back_inputs.add(1)
        merge.add_control(graph, graph.add(N.ConstNode(1, ty.INT)).out())
        graph.topological_order()  # must not raise despite the cycle

    def test_true_cycle_detected(self):
        graph = make_graph()
        a = N.UnOpNode("neg", ty.INT, None)
        graph.add(a)
        b = graph.add(N.UnOpNode("neg", ty.INT, a.out()))
        graph.set_input(a, 0, b.out())
        with pytest.raises(PegasusError):
            graph.topological_order()

    def test_stats_by_kind(self):
        graph = make_graph()
        graph.add(N.ConstNode(1, ty.INT))
        graph.add(N.ConstNode(2, ty.INT))
        stats = graph.stats()
        assert stats["ConstNode"] == 2
