"""Structural verifier: each invariant violation must be caught."""

import pytest

from repro.errors import PegasusError
from repro.frontend import types as ty
from repro.pegasus.graph import Graph
from repro.pegasus import nodes as N
from repro.pegasus.verify import verify_graph


def minimal_graph():
    graph = Graph("v")
    token = graph.add(N.InitialTokenNode(0))
    value = graph.add(N.ConstNode(3, ty.INT))
    ret = graph.add(N.ReturnNode(ty.INT, value.out(), token.out()))
    graph.return_node = ret
    return graph


class TestVerify:
    def test_minimal_graph_passes(self):
        verify_graph(minimal_graph())

    def test_missing_return_rejected(self):
        graph = Graph("v")
        graph.add(N.ConstNode(1, ty.INT))
        with pytest.raises(PegasusError):
            verify_graph(graph)

    def test_disconnected_input_rejected(self):
        graph = minimal_graph()
        graph.add(N.UnOpNode("neg", ty.INT, None))
        with pytest.raises(PegasusError):
            verify_graph(graph)

    def test_immutable_load_may_lack_token(self):
        graph = minimal_graph()
        addr = graph.add(N.ConstNode(0x2000, ty.ULONG))
        pred = graph.add(N.ConstNode(1, ty.INT))
        load = graph.add(N.LoadNode(ty.INT, addr.out(), pred.out(), None,
                                    frozenset()))
        load.immutable = True
        graph.add(N.UnOpNode("neg", ty.INT, load.out(0)))
        verify_graph(graph)

    def test_regular_load_needs_token(self):
        graph = minimal_graph()
        addr = graph.add(N.ConstNode(0x2000, ty.ULONG))
        pred = graph.add(N.ConstNode(1, ty.INT))
        load = graph.add(N.LoadNode(ty.INT, addr.out(), pred.out(), None,
                                    frozenset()))
        graph.add(N.UnOpNode("neg", ty.INT, load.out(0)))
        with pytest.raises(PegasusError):
            verify_graph(graph)

    def test_token_kind_mismatch_rejected(self):
        graph = minimal_graph()
        value = graph.add(N.ConstNode(5, ty.INT))
        # A combine fed by a data value: kind violation.
        graph.add(N.CombineNode([value.out()]))
        with pytest.raises(PegasusError):
            verify_graph(graph)

    def test_loop_merge_without_control_rejected(self):
        graph = minimal_graph()
        merge = N.MergeNode(ty.INT, 2)
        graph.add(merge)
        source = graph.add(N.ConstNode(0, ty.INT))
        graph.set_input(merge, 0, source.out())
        graph.set_input(merge, 1, source.out())
        merge.back_inputs.add(1)
        graph.add(N.UnOpNode("neg", ty.INT, merge.out()))
        with pytest.raises(PegasusError):
            verify_graph(graph)

    def test_forward_cycle_rejected(self):
        graph = minimal_graph()
        a = N.UnOpNode("neg", ty.INT, None)
        graph.add(a)
        b = graph.add(N.UnOpNode("neg", ty.INT, a.out()))
        graph.set_input(a, 0, b.out())
        with pytest.raises(PegasusError):
            verify_graph(graph)

    def test_removed_producer_detected(self):
        graph = minimal_graph()
        const = graph.add(N.ConstNode(2, ty.INT))
        neg = graph.add(N.UnOpNode("neg", ty.INT, const.out()))
        # Bypass the uses bookkeeping to simulate corruption.
        del graph.nodes[const.id]
        with pytest.raises(PegasusError):
            verify_graph(graph)
