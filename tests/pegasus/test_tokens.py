"""Token relation mechanics: reduction (§3.4), splicing, frontiers."""

import pytest

from repro.frontend import types as ty
from repro.pegasus.graph import Graph, OutPort
from repro.pegasus import nodes as N
from repro.pegasus.tokens import TokenRelation, combine_ports, wire_tokens


def _memop(graph, is_store=False):
    rwset = frozenset()
    addr = graph.add(N.ConstNode(0x2000, ty.ULONG)).out()
    pred = graph.add(N.ConstNode(1, ty.INT)).out()
    if is_store:
        value = graph.add(N.ConstNode(7, ty.INT)).out()
        return graph.add(N.StoreNode(ty.INT, addr, value, pred, None, rwset))
    return graph.add(N.LoadNode(ty.INT, addr, pred, None, rwset))


def setup_relation():
    graph = Graph("t")
    initial = graph.add(N.InitialTokenNode(0))
    relation = TokenRelation({0: initial.out()})
    return graph, relation, initial.out()


class TestReduction:
    def test_chain_is_already_reduced(self):
        graph, relation, boundary = setup_relation()
        a = _memop(graph, is_store=True)
        b = _memop(graph, is_store=True)
        relation.add_op(a, frozenset({0}), True, [boundary])
        relation.add_op(b, frozenset({0}), True, [a])
        assert relation.reduce() == 0
        assert relation.deps[b] == [a]

    def test_transitive_edge_removed(self):
        graph, relation, boundary = setup_relation()
        a = _memop(graph, is_store=True)
        b = _memop(graph, is_store=True)
        c = _memop(graph, is_store=True)
        relation.add_op(a, frozenset({0}), True, [boundary])
        relation.add_op(b, frozenset({0}), True, [a])
        relation.add_op(c, frozenset({0}), True, [a, b])  # a->c redundant
        assert relation.reduce() == 1
        assert relation.deps[c] == [b]

    def test_boundary_covered_transitively(self):
        graph, relation, boundary = setup_relation()
        a = _memop(graph, is_store=True)
        b = _memop(graph, is_store=True)
        relation.add_op(a, frozenset({0}), True, [boundary])
        relation.add_op(b, frozenset({0}), True, [a, boundary])
        assert relation.reduce() == 1
        assert relation.deps[b] == [a]


class TestDropAndReplace:
    def test_drop_op_reroutes_consumers(self):
        graph, relation, boundary = setup_relation()
        a = _memop(graph, is_store=True)
        b = _memop(graph)
        c = _memop(graph, is_store=True)
        relation.add_op(a, frozenset({0}), True, [boundary])
        relation.add_op(b, frozenset({0}), False, [a])
        relation.add_op(c, frozenset({0}), True, [b])
        relation.drop_op(b)
        assert relation.deps[c] == [a]
        assert b not in relation.deps

    def test_replace_op_substitutes_source(self):
        graph, relation, boundary = setup_relation()
        a = _memop(graph)
        b = _memop(graph)
        c = _memop(graph, is_store=True)
        relation.add_op(a, frozenset({0}), False, [boundary])
        relation.add_op(b, frozenset({0}), False, [boundary])
        relation.add_op(c, frozenset({0}), True, [a, b])
        relation.replace_op(b, a)
        assert relation.deps[c] == [a]


class TestExitFrontier:
    def test_untouched_class_yields_boundary(self):
        _, relation, boundary = setup_relation()
        assert relation.exit_frontier(0) == [boundary]

    def test_last_writer_is_frontier(self):
        graph, relation, boundary = setup_relation()
        a = _memop(graph, is_store=True)
        b = _memop(graph, is_store=True)
        relation.add_op(a, frozenset({0}), True, [boundary])
        relation.add_op(b, frozenset({0}), True, [a])
        assert relation.exit_frontier(0) == [b]

    def test_parallel_reads_all_in_frontier(self):
        graph, relation, boundary = setup_relation()
        a = _memop(graph)
        b = _memop(graph)
        relation.add_op(a, frozenset({0}), False, [boundary])
        relation.add_op(b, frozenset({0}), False, [boundary])
        frontier = relation.exit_frontier(0)
        assert set(map(id, frontier)) == {id(a), id(b)}


class TestWiring:
    def test_single_dep_wired_directly(self):
        graph, relation, boundary = setup_relation()
        a = _memop(graph, is_store=True)
        relation.add_op(a, frozenset({0}), True, [boundary])
        wire_tokens(graph, relation, hyperblock=0)
        assert a.inputs[N.StoreNode.TOKEN_IN] == boundary

    def test_multiple_deps_get_combine(self):
        graph, relation, boundary = setup_relation()
        a = _memop(graph)
        b = _memop(graph)
        c = _memop(graph, is_store=True)
        relation.add_op(a, frozenset({0}), False, [boundary])
        relation.add_op(b, frozenset({0}), False, [boundary])
        relation.add_op(c, frozenset({0}), True, [a, b])
        wire_tokens(graph, relation, hyperblock=0)
        token_in = c.inputs[N.StoreNode.TOKEN_IN]
        assert isinstance(token_in.node, N.CombineNode)
        assert len(token_in.node.inputs) == 2

    def test_combine_ports_dedupes(self):
        graph, _, boundary = setup_relation()
        assert combine_ports(graph, [boundary, boundary], 0) == boundary
        assert combine_ports(graph, [], 0) is None
