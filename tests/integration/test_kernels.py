"""Benchmark-suite integration: every kernel, every level, self-checked.

The full matrix (22 kernels x 4 levels x 2 simulators) runs in minutes;
the default selection keeps CI fast while covering every kernel at least
once and every level on a representative subset. Set REPRO_ALL_KERNELS=1
to run the complete matrix.
"""

import os

import pytest

from repro import compile_minic
from repro.programs import all_kernels, get_kernel
from repro.programs.adpcm import reference_decode, reference_encode, SAMPLES

FULL_MATRIX = bool(os.environ.get("REPRO_ALL_KERNELS"))

# Every kernel is validated at "none" (cheap); these get the full matrix.
DEEP_KERNELS = ("adpcm_e", "compress", "jpeg_d", "li", "mesa", "vortex",
                "gsm_e", "mpeg2_d")


@pytest.mark.parametrize("name", [k.name for k in all_kernels()])
def test_kernel_oracle_matches_golden(name):
    kernel = get_kernel(name)
    program = compile_minic(kernel.source, kernel.entry, opt_level="none")
    oracle = program.run_sequential(list(kernel.args))
    kernel.check(oracle.return_value)


@pytest.mark.parametrize("name", [k.name for k in all_kernels()]
                         if FULL_MATRIX else list(DEEP_KERNELS))
@pytest.mark.parametrize("level", ["none", "medium", "full"])
def test_kernel_spatial_differential(name, level):
    kernel = get_kernel(name)
    program = compile_minic(kernel.source, kernel.entry, opt_level=level)
    oracle = program.run_sequential(list(kernel.args))
    spatial = program.simulate(list(kernel.args))
    kernel.check(oracle.return_value)
    kernel.check(spatial.return_value)
    assert spatial.memory.snapshot() == oracle.memory.snapshot()


class TestIndependentReferences:
    """Kernels with independent Python models (beyond the oracle goldens)."""

    def test_adpcm_encoder_model(self):
        assert get_kernel("adpcm_e").golden == reference_encode(SAMPLES)

    def test_adpcm_decoder_model(self):
        assert get_kernel("adpcm_d").golden == reference_decode(SAMPLES)


class TestSuiteMetadata:
    def test_suite_covers_papers_programs(self):
        names = {k.name for k in all_kernels()}
        expected = {
            "adpcm_e", "adpcm_d", "gsm_e", "gsm_d", "epic_e", "epic_d",
            "mpeg2_e", "mpeg2_d", "jpeg_e", "jpeg_d", "pegwit_e", "pegwit_d",
            "g721_e", "g721_d", "mesa", "go", "m88ksim", "compress", "li",
            "ijpeg", "perl", "vortex",
        }
        assert expected <= names

    def test_every_kernel_is_self_checking(self):
        for kernel in all_kernels():
            assert kernel.golden is not None

    def test_source_statistics_positive(self):
        for kernel in all_kernels():
            assert kernel.source_lines > 20
            assert kernel.function_count >= 1
