"""CLI smoke matrix: `repro` and `repro telemetry` end to end.

Drives :func:`repro.__main__.main` in-process across the
``--profile``/``--critical-path``/``--record`` × ``--engine`` matrix,
asserting exit code 0 and that each flag leaves its artifact: profile
output, a telemetry session in the store, trace files. Then walks the
``repro telemetry`` subcommands over the store the matrix populated.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main, telemetry_main
from repro.observe.store import TelemetryStore

SOURCE = """
int a[64];
int kernel(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 3; s += a[i]; }
    return s;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "smoke.c"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture()
def store_root(tmp_path, monkeypatch):
    root = tmp_path / "telemetry"
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(root))
    return root


BASE = ["--entry", "kernel", "--args", "24", "--memory", "realistic"]


@pytest.mark.parametrize("engine", ["compiled", "interp"])
@pytest.mark.parametrize("extra", [
    [],
    ["--profile"],
    ["--critical-path"],
    ["--record"],
    ["--profile", "--critical-path", "--record"],
], ids=lambda flags: "+".join(f.lstrip("-") for f in flags) or "plain")
def test_cli_matrix_exits_zero(source_file, store_root, capsys,
                               engine, extra):
    exit_code = main([source_file, *BASE, "--engine", engine, *extra])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "result" in out
    if "--profile" in extra:
        assert "fires" in out
    if "--critical-path" in extra:
        assert "critical" in out.lower()
    if "--record" in extra:
        assert "telemetry:" in out
        store = TelemetryStore(store_root)
        records = store.records(kind="run")
        assert records and records[-1].engine == engine
        assert records[-1].result["cycles"] > 0
    else:
        assert not store_root.exists()


def test_record_then_telemetry_subcommands(source_file, store_root,
                                           capsys):
    for _ in range(2):
        assert main([source_file, *BASE, "--record"]) == 0
    capsys.readouterr()

    store = TelemetryStore(store_root)
    sessions = sorted(store.sessions())
    assert len(sessions) == 2

    assert telemetry_main(["list"]) == 0
    assert "smoke" in capsys.readouterr().out

    assert telemetry_main(["list", "--sessions"]) == 0
    listing = capsys.readouterr().out
    for session in sessions:
        assert session in listing

    run_id = store.index()[-1]["run_id"]
    assert telemetry_main(["show", run_id[:12]]) == 0
    assert "cycles" in capsys.readouterr().out

    assert telemetry_main(["show", run_id, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["run_id"] == run_id

    # Identical configs: the comparison must come back clean.
    assert telemetry_main(["compare", sessions[0], sessions[1]]) == 0
    assert "no regression" in capsys.readouterr().out

    assert telemetry_main(["gc", "--keep-sessions", "1"]) == 0
    capsys.readouterr()
    assert len(TelemetryStore(store_root).sessions()) == 1


def test_trace_exports_alongside_record(source_file, store_root,
                                        tmp_path, capsys):
    trace = tmp_path / "run.json"
    vcd = tmp_path / "run.vcd"
    exit_code = main([source_file, *BASE, "--record",
                      "--trace-out", str(trace), "--trace-out", str(vcd)])
    capsys.readouterr()
    assert exit_code == 0
    assert trace.exists() and vcd.exists()
    assert TelemetryStore(store_root).records(kind="run")


def test_baseline_and_watchdog_subcommands(tmp_path, store_root, capsys):
    out_dir = tmp_path / "baselines"
    assert telemetry_main(["baseline", "--out", str(out_dir),
                           "--kernels", "li", "--levels", "full",
                           "--memory", "perfect,realistic-2port"]) == 0
    capsys.readouterr()
    files = sorted(out_dir.glob("*.json"))
    assert len(files) == 2

    assert telemetry_main(["watchdog", "--baselines", str(out_dir)]) == 0
    assert "no regression" in capsys.readouterr().out

    # Doctor one baseline to claim half the cycles: the replay must
    # read as a regression and exit nonzero.
    payload = json.loads(files[0].read_text())
    payload["result"]["cycles"] //= 2
    files[0].write_text(json.dumps(payload))
    assert telemetry_main(["watchdog", "--baselines", str(out_dir)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
