"""Property-based differential testing.

Hypothesis generates random MiniC programs (loops, aliasing array accesses,
branches, mixed widths); every program must produce identical results and
final memory under:

- the sequential oracle,
- the unoptimized spatial simulation,
- the fully optimized spatial simulation.

This is the main guard for the compiler: any unsound token removal,
redundancy elimination, or pipelining transform shows up as a divergence.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import compile_minic

# ---------------------------------------------------------------------------
# A small structured program generator.

INDEXES = ("i & 15", "(i + 1) & 15", "(i * 3) & 15", "(n - i) & 15", "7")
ARRAYS = ("ga", "gb")
SCALARS = ("s", "t")
BINOPS = ("+", "-", "*", "^", "&", "|")


@st.composite
def expressions(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return str(draw(st.integers(-7, 13)))
        if choice == 1:
            return draw(st.sampled_from(SCALARS + ("i", "n")))
        array = draw(st.sampled_from(ARRAYS))
        index = draw(st.sampled_from(INDEXES))
        return f"{array}[{index}]"
    op = draw(st.sampled_from(BINOPS))
    lhs = draw(expressions(depth=depth + 1))
    rhs = draw(expressions(depth=depth + 1))
    return f"({lhs} {op} {rhs})"


@st.composite
def simple_statements(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        array = draw(st.sampled_from(ARRAYS))
        index = draw(st.sampled_from(INDEXES))
        value = draw(expressions())
        return f"{array}[{index}] = {value};"
    if kind == 1:
        scalar = draw(st.sampled_from(SCALARS))
        op = draw(st.sampled_from(("+=", "^=", "=")))
        value = draw(expressions())
        return f"{scalar} {op} {value};"
    array = draw(st.sampled_from(ARRAYS))
    index = draw(st.sampled_from(INDEXES))
    amount = draw(st.integers(1, 5))
    return f"{array}[{index}] += {amount};"


LOOP_VARS = ("i", "i2", "i3")


@st.composite
def statements(draw, depth=0, loop_depth=0):
    kind = draw(st.integers(0, 3 if depth < 2 else 1))
    if kind <= 1:
        return draw(simple_statements())
    if kind == 2:
        condition = draw(expressions())
        body = draw(st.lists(statements(depth=depth + 1,
                                        loop_depth=loop_depth),
                             min_size=1, max_size=3))
        if draw(st.booleans()):
            other = draw(st.lists(statements(depth=depth + 1,
                                             loop_depth=loop_depth),
                                  min_size=1, max_size=2))
            return ("if (%s) { %s } else { %s }"
                    % (condition, " ".join(body), " ".join(other)))
        return "if (%s) { %s }" % (condition, " ".join(body))
    if loop_depth >= len(LOOP_VARS):
        return draw(simple_statements())
    # Each nesting level has its own counter: reusing one would let an
    # inner loop reset the outer's variable and never terminate.
    var = LOOP_VARS[loop_depth]
    body = draw(st.lists(statements(depth=depth + 1,
                                    loop_depth=loop_depth + 1),
                         min_size=1, max_size=3))
    bound = draw(st.integers(1, 12))
    return ("for (%s = 0; %s < %d; %s++) { %s }"
            % (var, var, bound, var, " ".join(body)))


@st.composite
def programs(draw):
    body = draw(st.lists(statements(), min_size=2, max_size=6))
    return """
int ga[16];
int gb[16];
int f(int n) {
    int i = 0; int i2 = 0; int i3 = 0; int s = 1; int t = 2;
    %s
    {
        int k; int acc = s ^ t;
        for (k = 0; k < 16; k++) acc += ga[k] ^ (gb[k] << 1);
        return acc;
    }
}
""" % "\n    ".join(body)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large,
                                 HealthCheck.filter_too_much])
@given(programs(), st.integers(0, 9))
def test_differential_random_programs(source, n):
    baseline = None
    for level in ("none", "full"):
        program = compile_minic(source, "f", opt_level=level)
        oracle = program.run_sequential([n])
        spatial = program.simulate([n])
        assert spatial.return_value == oracle.return_value, (
            f"level {level}: {spatial.return_value} != {oracle.return_value}"
            f"\nprogram:\n{source}"
        )
        assert spatial.memory.snapshot() == oracle.memory.snapshot(), (
            f"level {level}: memory diverged\nprogram:\n{source}"
        )
        if baseline is None:
            baseline = oracle.return_value
        else:
            assert oracle.return_value == baseline, (
                f"optimization changed semantics\nprogram:\n{source}"
            )


ALIASING = """
int buf[32];
int f(int *p, int *q, int n) {
    int i;
    for (i = 0; i < n; i++) {
        p[i & 7] = q[(i + %(offset)d) & 7] + %(delta)d;
    }
    return p[0] + q[1];
}
int drive(int n, int mode) {
    int k;
    for (k = 0; k < 32; k++) buf[k] = k * 3;
    if (mode == 0) return f(buf, buf + 8, n);
    if (mode == 1) return f(buf, buf + 1, n);
    return f(buf + 4, buf + 4, n);
}
"""


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 7), st.integers(-3, 3), st.integers(0, 12),
       st.integers(0, 2))
def test_differential_aliasing_pointers(offset, delta, n, mode):
    source = ALIASING % {"offset": offset, "delta": delta}
    for level in ("none", "medium", "full"):
        program = compile_minic(source, "drive", opt_level=level)
        oracle = program.run_sequential([n, mode])
        spatial = program.simulate([n, mode])
        assert spatial.return_value == oracle.return_value
        assert spatial.memory.snapshot() == oracle.memory.snapshot()
