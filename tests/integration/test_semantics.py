"""C semantics corner cases, differentially validated at every level."""

import pytest


class TestArithmetic:
    def test_unsigned_wraparound_loop(self, differential):
        differential("""
        unsigned f(int n) {
            unsigned u = 0xfffffffc;
            int i;
            for (i = 0; i < n; i++) u += 3;
            return u;
        }
        """, "f", [4])

    def test_mixed_signed_unsigned_compare(self, differential):
        differential("""
        int f(int a) {
            unsigned u = 7;
            if (a < (int)u && (unsigned)a < u) return 1;
            return 0;
        }
        """, "f", [-1])

    def test_long_arithmetic(self, differential):
        differential("""
        long f(long a, long b) {
            return a * b + (a >> 3) - (b << 2);
        }
        """, "f", [123456789012, -987654321])

    def test_char_sign_extension(self, differential):
        differential("""
        int f(void) {
            char c = (char)200;
            unsigned char u = (unsigned char)200;
            return c * 1000 + u;
        }
        """, "f", [])

    def test_shift_by_variable(self, differential):
        differential("""
        int f(int a, int s) { return (a << s) | ((unsigned)a >> s); }
        """, "f", [0x1234, 7])

    def test_division_rounding_matrix(self, differential):
        source = """
        int f(int a, int b) { return a / b * 100 + a % b; }
        """
        for args in ([7, 2], [-7, 2], [7, -2], [-7, -2]):
            differential(source, "f", args)


class TestFloats:
    def test_float_accumulation(self, differential):
        differential("""
        double f(int n) {
            double s = 0.0;
            int i;
            for (i = 0; i < n; i++) s += 1.0 / (i + 1);
            return s;
        }
        """, "f", [10])

    def test_float32_storage_rounds(self, differential):
        differential("""
        float cell[1];
        int f(void) {
            cell[0] = 16777217.0;
            return cell[0] == 16777216.0;
        }
        """, "f", [])

    def test_float_compare_and_branch(self, differential):
        differential("""
        int f(int n) {
            double x = n * 0.5;
            if (x > 2.25) return 1;
            if (x < -2.25) return -1;
            return 0;
        }
        """, "f", [5])

    def test_int_float_conversions(self, differential):
        differential("""
        int f(int n) {
            double d = n;
            float g = (float)(d / 3.0);
            return (int)(g * 6.0);
        }
        """, "f", [10])


class TestPointers:
    def test_pointer_comparison_drives_loop(self, differential):
        differential("""
        int a[8];
        int f(void) {
            int *p = a;
            int *end = a + 8;
            int s = 0;
            while (p != end) { *p = s; s += *p + 1; p++; }
            return s;
        }
        """, "f", [])

    def test_pointer_difference(self, differential):
        differential("""
        int a[16];
        long f(int i) {
            int *p = a + i;
            return p - a;
        }
        """, "f", [5])

    def test_address_of_scalar_aliases(self, differential):
        differential("""
        int f(int x) {
            int v = x;
            int *p = &v;
            *p += 3;
            return v;
        }
        """, "f", [4])

    def test_conditional_pointer_select(self, differential):
        source = """
        int a[4]; int b[4];
        int f(int c, int i) {
            int *p = c ? a : b;
            p[i] = 9;
            return a[i] * 10 + b[i];
        }
        """
        differential(source, "f", [0, 2])
        differential(source, "f", [1, 2])

    def test_null_check_guards_deref(self, differential):
        source = """
        int cell[1];
        int f(int use) {
            int *p = use ? cell : (int*)0;
            if (p) { *p = 5; return *p; }
            return -1;
        }
        """
        differential(source, "f", [1])
        differential(source, "f", [0])


class TestStatements:
    def test_comma_operator(self, differential):
        differential("int f(int a) { int b; return (b = a + 1, b * 2); }",
                     "f", [3])

    def test_ternary_chains(self, differential):
        differential("""
        int f(int x) { return x < 0 ? -1 : x == 0 ? 0 : 1; }
        """, "f", [-5])

    def test_do_while_with_continue(self, differential):
        differential("""
        int f(int n) {
            int i = 0; int s = 0;
            do {
                i++;
                if (i & 1) continue;
                s += i;
            } while (i < n);
            return s;
        }
        """, "f", [10])

    def test_deeply_nested_conditions(self, differential):
        differential("""
        int f(int a, int b, int c) {
            int r = 0;
            if (a) { if (b) { if (c) r = 7; else r = 6; } else r = 5; }
            else { if (b) r = 4; else r = 3; }
            return r;
        }
        """, "f", [1, 0, 1])

    def test_empty_loop_body(self, differential):
        differential("""
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) ;
            return i;
        }
        """, "f", [5])


class TestWidths:
    def test_short_array_negative_values(self, differential):
        differential("""
        short h[8];
        int f(int n) {
            int i; int s = 0;
            for (i = 0; i < n; i++) h[i] = (short)(-1000 * i);
            for (i = 0; i < n; i++) s += h[i];
            return s;
        }
        """, "f", [8])

    def test_byte_array_bit_twiddling(self, differential):
        differential("""
        unsigned char bits[4];
        int f(int v) {
            bits[0] = (unsigned char)v;
            bits[1] = (unsigned char)(v >> 8);
            bits[2] = bits[0] ^ bits[1];
            bits[3] = (unsigned char)(bits[2] << 3);
            return bits[0] + bits[1] * 256 + bits[2] * 65536 + bits[3];
        }
        """, "f", [0x1234])

    def test_mixed_width_aliasing(self, differential):
        # Write words, read bytes of the same object.
        differential("""
        int words[2];
        int f(void) {
            unsigned char *bytes = (unsigned char*)words;
            words[0] = 0x04030201;
            return bytes[0] + bytes[1] * 10 + bytes[2] * 100 + bytes[3] * 1000;
        }
        """, "f", [])
