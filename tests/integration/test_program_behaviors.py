"""Functional sanity of the benchmark kernels, beyond checksums.

Each kernel family gets at least one behavioural check executed through
the sequential oracle (fast): the ADPCM decoder reconstructs the waveform,
LZW compresses repetitive input, the hash table retrieves what was stored,
the board evaluation stays in range, and so on. These pin that the suite
exercises the algorithms it claims to.
"""

import pytest

from repro import compile_minic
from repro.cfg.lower import lower_program
from repro.frontend import parse_program
from repro.programs import get_kernel
from repro.sim.sequential import SequentialInterpreter


def oracle(kernel_name, entry=None, args=None):
    kernel = get_kernel(kernel_name)
    lowered = lower_program(parse_program(kernel.source))
    interp = SequentialInterpreter(lowered)
    result = interp.run(entry or kernel.entry, list(args or kernel.args))
    return result, lowered, interp


class TestAdpcm:
    def test_decoder_tracks_input_waveform(self):
        result, lowered, interp = oracle("adpcm_d")
        pcm_in = interp.memory.read_array(_sym(lowered, "pcm_in"), 600)
        pcm_out = interp.memory.read_array(_sym(lowered, "pcm_out"), 600)
        # ADPCM is lossy but tracking: average error well under the signal.
        error = sum(abs(a - b) for a, b in zip(pcm_in, pcm_out)) / 600
        signal = sum(abs(a) for a in pcm_in) / 600
        assert error < signal / 4

    def test_encoder_output_is_nibble_packed(self):
        result, lowered, interp = oracle("adpcm_e")
        codes = interp.memory.read_array(_sym(lowered, "code_out"), 300)
        assert any(codes), "encoder must produce non-zero codes"


class TestCompress:
    def test_compression_actually_compresses(self):
        result, lowered, interp = oracle("compress")
        # emitted codes are folded into the checksum; recompute directly:
        codes = interp.memory.read_array(_sym(lowered, "out_codes"), 512)
        emitted = next((i for i, c in enumerate(codes)
                        if i > 0 and all(v == 0 for v in codes[i:])), 512)
        assert emitted < 512, "repetitive input must compress"

    def test_dictionary_codes_above_alphabet(self):
        _, lowered, interp = oracle("compress")
        codes = interp.memory.read_array(_sym(lowered, "out_codes"), 512)
        assert any(c >= 256 for c in codes), "LZW must emit dictionary codes"


class TestPerl:
    def test_fetch_returns_stored_values(self):
        kernel = get_kernel("perl")
        source = kernel.source + """
        int probe(int seed) {
            int i;
            make_keys(seed);
            for (i = 0; i < TBL; i++) { table_used[i] = 0; table_value[i] = 0; }
            table_store(3, 41);
            return table_fetch(3);
        }
        """
        lowered = lower_program(parse_program(source))
        result = SequentialInterpreter(lowered).run("probe", [8])
        assert result.return_value == 41


class TestLi:
    def test_reverse_preserves_sum(self):
        kernel = get_kernel("li")
        source = kernel.source + """
        int probe(int seed) {
            int head; int before; int after;
            free_ptr = 0;
            head = build_list(40, seed);
            before = list_sum(head);
            head = list_reverse(head);
            after = list_sum(head);
            return (before == after) * 1000 + (before & 255);
        }
        """
        lowered = lower_program(parse_program(source))
        result = SequentialInterpreter(lowered).run("probe", [5])
        assert result.return_value >= 1000, "reversal must preserve the sum"


class TestGo:
    def test_territory_counts_bounded(self):
        result, lowered, interp = oracle("go")
        territory = result.return_value % 100000
        black, white = territory // 1000, territory % 1000
        assert 0 <= black <= 361 and 0 <= white <= 361


class TestVortex:
    def test_lookup_finds_inserted_records(self):
        kernel = get_kernel("vortex")
        source = kernel.source + """
        int probe(void) {
            int i;
            rec_count = 0;
            for (i = 0; i < IDX; i++) index_head[i] = -1;
            db_insert(500, 77);
            db_insert(123, 88);
            return db_lookup(500) * 1000 + db_lookup(123);
        }
        """
        lowered = lower_program(parse_program(source))
        result = SequentialInterpreter(lowered).run("probe", [])
        assert result.return_value == 77 * 1000 + 88


class TestM88ksim:
    def test_interpreter_executes_fixed_step_count(self):
        result, lowered, interp = oracle("m88ksim")
        assert result.return_value == get_kernel("m88ksim").golden


class TestMesa:
    def test_lighting_intensity_in_range(self):
        _, lowered, interp = oracle("mesa")
        intensity = interp.memory.read_array(_sym(lowered, "intensity"), 128)
        assert all(0.19 <= v <= 1.01 for v in intensity)


class TestPegwit:
    def test_decrypt_recovers_plaintext(self):
        # The decode kernel adds a large penalty to the checksum for any
        # mismatching word; matching the golden proves recovery.
        result, lowered, interp = oracle("pegwit_d")
        assert result.return_value == get_kernel("pegwit_d").golden
        plain = interp.memory.read_array(_sym(lowered, "plain"), 96)
        message = interp.memory.read_array(_sym(lowered, "message"), 96)
        assert plain == message


def _sym(lowered, name):
    for symbol in lowered.globals:
        if symbol.name == name:
            return symbol
    raise KeyError(name)
