"""Predicate boolean algebra: implication, falsity, disjointness (§5)."""

from repro.frontend import types as ty
from repro.pegasus.graph import Graph
from repro.pegasus import nodes as N
from repro.analysis import predicates as P


def setup():
    graph = Graph("preds")
    x = graph.add(N.BinOpNode("ne", ty.INT,
                              graph.add(N.ParamNode("a", ty.INT, 0)).out(),
                              graph.add(N.ConstNode(0, ty.INT)).out()))
    y = graph.add(N.BinOpNode("ne", ty.INT,
                              graph.add(N.ParamNode("b", ty.INT, 1)).out(),
                              graph.add(N.ConstNode(0, ty.INT)).out()))
    return graph, x.out(), y.out()


class TestImplication:
    def test_self_implication(self):
        _, x, _ = setup()
        assert P.implies(x, x)

    def test_and_implies_conjunct(self):
        graph, x, y = setup()
        both = P.make_and(graph, x, y, 0)
        assert P.implies(both, x)
        assert P.implies(both, y)
        assert not P.implies(x, both)

    def test_conjunct_implies_or(self):
        graph, x, y = setup()
        either = P.make_or(graph, x, y, 0)
        assert P.implies(x, either)
        assert not P.implies(either, x)

    def test_implies_any(self):
        graph, x, y = setup()
        assert P.implies_any(x, [y, x])
        assert not P.implies_any(x, [y])

    def test_negation_blocks_implication(self):
        graph, x, _ = setup()
        not_x = P.make_not(graph, x, 0)
        assert not P.implies(x, not_x)
        assert P.disjoint(x, not_x)

    def test_distinct_atoms_independent(self):
        _, x, y = setup()
        assert not P.implies(x, y)
        assert not P.disjoint(x, y)


class TestFalsityAndEquivalence:
    def test_constant_false(self):
        graph, _, _ = setup()
        false = P.const_pred(graph, False, 0)
        true = P.const_pred(graph, True, 0)
        assert P.is_false(false)
        assert P.is_true(true)
        assert not P.is_false(true)

    def test_x_and_not_x_is_false(self):
        graph, x, _ = setup()
        contradiction = P.make_and(graph, x, P.make_not(graph, x, 0), 0)
        assert P.is_false(contradiction)

    def test_x_or_not_x_is_true(self):
        graph, x, _ = setup()
        tautology = P.make_or(graph, x, P.make_not(graph, x, 0), 0)
        assert P.is_true(tautology)

    def test_de_morgan_equivalence(self):
        graph, x, y = setup()
        lhs = P.make_not(graph, P.make_and(graph, x, y, 0), 0)
        rhs = P.make_or(graph, P.make_not(graph, x, 0),
                        P.make_not(graph, y, 0), 0)
        assert P.equivalent(lhs, rhs)

    def test_store_before_store_pattern(self):
        # §5.2: strengthen p1 with not(p2); if p1 implies p2 the result is
        # constant false (post-dominance).
        graph, x, y = setup()
        p1 = P.make_and(graph, x, y, 0)  # p1 implies p2 = x
        strengthened = P.make_and(graph, p1, P.make_not(graph, x, 0), 0)
        assert P.is_false(strengthened)


class TestConstructors:
    def test_make_and_simplifies_constants(self):
        graph, x, _ = setup()
        true = P.const_pred(graph, True, 0)
        false = P.const_pred(graph, False, 0)
        assert P.make_and(graph, true, x, 0) == x
        result = P.make_and(graph, false, x, 0)
        assert isinstance(result.node, N.ConstNode)
        assert result.node.value == 0

    def test_make_or_simplifies_constants(self):
        graph, x, _ = setup()
        false = P.const_pred(graph, False, 0)
        assert P.make_or(graph, false, x, 0) == x

    def test_double_negation_collapses(self):
        graph, x, _ = setup()
        double = P.make_not(graph, P.make_not(graph, x, 0), 0)
        assert double == x

    def test_atom_cap_is_conservative(self):
        graph = Graph("cap")
        ports = []
        for index in range(P.MAX_ATOMS + 2):
            ports.append(graph.add(N.BinOpNode(
                "ne", ty.INT,
                graph.add(N.ParamNode(f"a{index}", ty.INT, index)).out(),
                graph.add(N.ConstNode(0, ty.INT)).out(),
            )).out())
        big = ports[0]
        for port in ports[1:]:
            big = P.make_or(graph, big, port, 0)
        # Too many atoms: the engine must answer "unknown" (False).
        assert not P.implies(ports[0], big)
