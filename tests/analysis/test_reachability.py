"""Cached DAG reachability (§5's cycle-freedom machinery)."""

from repro.frontend import types as ty
from repro.pegasus.graph import Graph
from repro.pegasus import nodes as N
from repro.analysis.reachability import Reachability


def chain(graph, length):
    nodes = [graph.add(N.ConstNode(0, ty.INT))]
    for _ in range(length):
        nodes.append(graph.add(N.UnOpNode("neg", ty.INT, nodes[-1].out())))
    return nodes


class TestReachability:
    def test_reflexive(self):
        graph = Graph("r")
        (node,) = chain(graph, 0)
        reach = Reachability(graph)
        assert reach.reaches(node, node)

    def test_chain_order(self):
        graph = Graph("r")
        nodes = chain(graph, 3)
        reach = Reachability(graph)
        assert reach.reaches(nodes[0], nodes[3])
        assert not reach.reaches(nodes[3], nodes[0])

    def test_diamond(self):
        graph = Graph("r")
        top = graph.add(N.ConstNode(1, ty.INT))
        left = graph.add(N.UnOpNode("neg", ty.INT, top.out()))
        right = graph.add(N.UnOpNode("bnot", ty.INT, top.out()))
        join = graph.add(N.BinOpNode("add", ty.INT, left.out(), right.out()))
        reach = Reachability(graph)
        assert reach.reaches(top, join)
        assert not reach.reaches(left, right)
        assert not reach.reaches(right, left)

    def test_back_edges_ignored(self):
        graph = Graph("r")
        merge = N.MergeNode(ty.INT, 2)
        graph.add(merge)
        entry = graph.add(N.ConstNode(0, ty.INT))
        pred = graph.add(N.ConstNode(1, ty.INT))
        eta = graph.add(N.EtaNode(ty.INT, merge.out(), pred.out()))
        graph.set_input(merge, 0, entry.out())
        graph.set_input(merge, 1, eta.out())
        merge.back_inputs.add(1)
        merge.add_control(graph, pred.out())
        reach = Reachability(graph)
        # Forward: merge reaches the eta; the back edge must not close a
        # reachability cycle (eta must not reach the merge).
        assert reach.reaches(merge, eta)
        assert not reach.reaches(eta, merge)

    def test_multi_output_nodes(self):
        graph = Graph("r")
        addr = graph.add(N.ConstNode(0x2000, ty.ULONG))
        pred = graph.add(N.ConstNode(1, ty.INT))
        token = graph.add(N.InitialTokenNode(0))
        load = graph.add(N.LoadNode(ty.INT, addr.out(), pred.out(),
                                    token.out(), frozenset()))
        value_user = graph.add(N.UnOpNode("neg", ty.INT, load.out(0)))
        token_user = graph.add(N.CombineNode([load.out(1)]))
        reach = Reachability(graph)
        assert reach.reaches(load, value_user)
        assert reach.reaches(load, token_user)
        assert reach.reaches(token, value_user)

    def test_port_reaches(self):
        graph = Graph("r")
        nodes = chain(graph, 2)
        reach = Reachability(graph)
        assert reach.port_reaches(nodes[0].out(), nodes[2])
        assert reach.any_reaches([nodes[0]], nodes[2])
        assert not reach.any_reaches([nodes[2]], nodes[0])
