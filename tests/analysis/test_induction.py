"""Induction-variable analysis on built loops (§4.3(2), §6.2, §6.3)."""

import pytest

from repro.frontend import parse_program
from repro.cfg.lower import lower_program
from repro.cfg.inline import inline_program
from repro.pegasus.builder import build_pegasus
from repro.pegasus import nodes as N
from repro.analysis.induction import LoopInduction
from repro.opt.context import OptContext


def build_loop(source: str, entry: str = "f"):
    lowered = lower_program(parse_program(source))
    flat = inline_program(lowered, entry)
    result = build_pegasus(flat, lowered.globals)
    ctx = OptContext(result)
    loop_hbs = sorted(ctx.loop_predicates)
    return ctx, loop_hbs


def the_memop(ctx, hb_id, kind):
    relation = ctx.relations[hb_id]
    ops = [op for op in relation.ops if isinstance(op, kind)]
    assert len(ops) >= 1
    return ops[0]


SIMPLE = """
int a[64];
int f(int n) {
    int i;
    for (i = 0; i < n; i++) a[i] = i;
    return a[0];
}
"""

STRIDED = """
int a[64];
int f(int n) {
    int i;
    for (i = 0; i < n; i += 4) a[i] = i;
    return a[0];
}
"""

DOWNWARD = """
int a[64];
int f(int n) {
    int i;
    for (i = n; i > 0; i--) a[i - 1] = i;
    return a[0];
}
"""


class TestBasicIVs:
    def test_step_one_found(self):
        ctx, loops = build_loop(SIMPLE)
        induction = ctx.induction(loops[0])
        steps = sorted(iv.step for iv in induction.ivs.values())
        assert 1 in steps

    def test_strided_step(self):
        ctx, loops = build_loop(STRIDED)
        induction = ctx.induction(loops[0])
        assert any(iv.step == 4 for iv in induction.ivs.values())

    def test_negative_step(self):
        ctx, loops = build_loop(DOWNWARD)
        induction = ctx.induction(loops[0])
        assert any(iv.step == -1 for iv in induction.ivs.values())

    def test_invariant_circulation_detected(self):
        ctx, loops = build_loop("""
        int a[64];
        int f(int n, int k) {
            int i;
            for (i = 0; i < n; i++) a[i] = k;
            return a[0];
        }
        """)
        induction = ctx.induction(loops[0])
        assert induction.invariant_merges, "k must circulate as invariant"


class TestMonotonicity:
    def test_unit_stride_monotone(self):
        ctx, loops = build_loop(SIMPLE)
        induction = ctx.induction(loops[0])
        store = the_memop(ctx, loops[0], N.StoreNode)
        addr = ctx.addr_port(store)
        assert induction.is_monotone_non_overlapping(addr, store.width)

    def test_downward_stride_monotone(self):
        ctx, loops = build_loop(DOWNWARD)
        induction = ctx.induction(loops[0])
        store = the_memop(ctx, loops[0], N.StoreNode)
        assert induction.is_monotone_non_overlapping(
            ctx.addr_port(store), store.width)

    def test_repeating_address_not_monotone(self):
        ctx, loops = build_loop("""
        int a[64];
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) a[(i & 3)] = i;
            return a[0];
        }
        """)
        induction = ctx.induction(loops[0])
        store = the_memop(ctx, loops[0], N.StoreNode)
        assert not induction.is_monotone_non_overlapping(
            ctx.addr_port(store), store.width)


class TestDependenceDistance:
    def test_figure15_distance(self):
        ctx, loops = build_loop("""
        int a[64];
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) a[i] = a[i + 3] + 1;
            return a[0];
        }
        """)
        hb = loops[0]
        induction = ctx.induction(hb)
        load = the_memop(ctx, hb, N.LoadNode)
        store = the_memop(ctx, hb, N.StoreNode)
        # Convention: distance(a, b) = d means a at iteration n touches the
        # address b touches at iteration n + d. The store a[i] reaches the
        # load's a[i+3] address three iterations later, hence -3/+3.
        assert induction.dependence_distance(
            ctx.addr_port(store), store.width,
            ctx.addr_port(load), load.width,
        ) == -3
        assert induction.dependence_distance(
            ctx.addr_port(load), load.width,
            ctx.addr_port(store), store.width,
        ) == 3

    def test_same_offset_distance_zero(self):
        ctx, loops = build_loop("""
        int a[64];
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) a[i] = a[i] + 1;
            return a[0];
        }
        """)
        hb = loops[0]
        induction = ctx.induction(hb)
        load = the_memop(ctx, hb, N.LoadNode)
        store = the_memop(ctx, hb, N.StoreNode)
        assert induction.dependence_distance(
            ctx.addr_port(store), 4, ctx.addr_port(load), 4) == 0

    def test_nondivisible_offset_never_conflicts(self):
        ctx, loops = build_loop("""
        char a[256];
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) a[4*i] = a[4*i + 2] + 1;
            return a[0];
        }
        """)
        hb = loops[0]
        induction = ctx.induction(hb)
        load = the_memop(ctx, hb, N.LoadNode)
        store = the_memop(ctx, hb, N.StoreNode)
        assert induction.dependence_distance(
            ctx.addr_port(store), 1, ctx.addr_port(load), 1) is None
        assert induction.never_equal_across_iterations(
            ctx.addr_port(store), 1, ctx.addr_port(load), 1)


class TestCrossIVDisambiguation:
    def test_lockstep_pointers_with_offset(self):
        # §4.3(2): same step, starting values one element apart.
        ctx, loops = build_loop("""
        int a[64];
        int f(int n) {
            int *p = a;
            int *q = a + 1;
            int i;
            for (i = 0; i < n; i++) {
                *p = *q + 1;
                p += 2;
                q += 2;
            }
            return a[0];
        }
        """)
        hb = loops[0]
        induction = ctx.induction(hb)
        load = the_memop(ctx, hb, N.LoadNode)
        store = the_memop(ctx, hb, N.StoreNode)
        assert induction.never_equal_across_iterations(
            ctx.addr_port(store), 4, ctx.addr_port(load), 4)
