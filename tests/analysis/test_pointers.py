"""Pointer analysis over the CFG: origins and read/write sets."""

from repro.frontend import parse_program
from repro.cfg import ir
from repro.cfg.lower import lower_program
from repro.cfg.inline import inline_program
from repro.analysis.pointers import PointerAnalysis
from repro.analysis.locations import UNKNOWN


def analyze(source: str, entry: str = "f", entry_points_to=None):
    lowered = lower_program(parse_program(source))
    flat = inline_program(lowered, entry)
    mapping = None
    if entry_points_to:
        by_name = {s.name: s for s in lowered.globals}
        mapping = {param: [by_name[n] for n in names]
                   for param, names in entry_points_to.items()}
    return flat, PointerAnalysis(flat, lowered.globals, mapping)


def memops(flat):
    return [i for _, i in flat.instructions()
            if isinstance(i, (ir.Load, ir.Store))]


class TestOrigins:
    def test_global_array_access(self):
        flat, analysis = analyze("""
        int a[4];
        int f(void) { return a[1]; }
        """)
        (load,) = memops(flat)
        names = {loc.symbol.name for loc in analysis.rwset(load)}
        assert names == {"a"}

    def test_pointer_arithmetic_preserves_origin(self):
        flat, analysis = analyze("""
        int a[8];
        int f(int i) { int *p = a + 2; return p[i]; }
        """)
        (load,) = memops(flat)
        names = {loc.symbol.name for loc in analysis.rwset(load)}
        assert names == {"a"}

    def test_param_is_its_own_root(self):
        flat, analysis = analyze("int f(int *p) { return *p; }")
        (load,) = memops(flat)
        (loc,) = analysis.rwset(load)
        assert loc.kind == "param"

    def test_phi_of_two_arrays(self):
        flat, analysis = analyze("""
        int a[4]; int b[4];
        int f(int c) { int *p; if (c) p = a; else p = b; return p[0]; }
        """)
        (load,) = memops(flat)
        names = {loc.symbol.name for loc in analysis.rwset(load)}
        assert names == {"a", "b"}

    def test_pointer_loaded_from_memory_is_unknown(self):
        flat, analysis = analyze("""
        int a[4];
        int *slot[1];
        int f(void) { slot[0] = a; return (*slot[0]); }
        """)
        loads = [i for _, i in flat.instructions() if isinstance(i, ir.Load)]
        value_load = loads[-1]
        assert UNKNOWN in analysis.rwset(value_load)

    def test_entry_points_to_override(self):
        flat, analysis = analyze(
            "int a[4]; int f(int *p) { return p[0]; }",
            entry_points_to={"p": ["a"]},
        )
        (load,) = memops(flat)
        names = {loc.symbol.name for loc in analysis.rwset(load)}
        assert names == {"a"}


class TestInterference:
    def test_disjoint_arrays_do_not_interfere(self):
        flat, analysis = analyze("""
        int a[4]; int b[4];
        int f(void) { a[0] = 1; return b[0]; }
        """)
        store, load = memops(flat)
        assert not analysis.may_interfere(analysis.rwset(store),
                                          analysis.rwset(load))

    def test_pragma_disables_interference(self):
        flat, analysis = analyze("""
        void f(int *p, int *q) {
        #pragma independent p q
            *p = 1;
            *q = 2;
        }
        """)
        first, second = memops(flat)
        assert not analysis.may_interfere(analysis.rwset(first),
                                          analysis.rwset(second))

    def test_immutable_access_detection(self):
        flat, analysis = analyze("""
        const int tbl[4] = { 1, 2, 3, 4 };
        int f(int i) { return tbl[i]; }
        """)
        (load,) = memops(flat)
        assert analysis.is_immutable_access(analysis.rwset(load))

    def test_mutable_access_not_immutable(self):
        flat, analysis = analyze("""
        int buf[4];
        int f(int i) { return buf[i]; }
        """)
        (load,) = memops(flat)
        assert not analysis.is_immutable_access(analysis.rwset(load))
