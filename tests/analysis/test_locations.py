"""Location model, overlap relation, and class partition (§3.3)."""

from repro.frontend import ast
from repro.frontend import types as ty
from repro.analysis.locations import (
    UNKNOWN,
    Location,
    LocationClasses,
    object_location,
    param_location,
    overlap,
    sets_overlap,
)


def sym(name, const=False, kind="global"):
    return ast.Symbol(name=name, type=ty.ArrayType(ty.INT, 4, const=const),
                      kind=kind, is_const=const)


class TestOverlap:
    def test_same_object_overlaps(self):
        a = object_location(sym("a"))
        assert overlap(a, a)

    def test_distinct_objects_disjoint(self):
        assert not overlap(object_location(sym("a")),
                           object_location(sym("b")))

    def test_unknown_overlaps_everything(self):
        assert overlap(UNKNOWN, object_location(sym("a")))
        assert overlap(UNKNOWN, UNKNOWN)

    def test_param_overlaps_objects_and_params(self):
        p = param_location(sym("p", kind="param"))
        q = param_location(sym("q", kind="param"))
        assert overlap(p, object_location(sym("a")))
        assert overlap(p, q)

    def test_pragma_breaks_param_pair(self):
        ps = sym("p", kind="param")
        qs = sym("q", kind="param")
        independent = frozenset({frozenset((ps, qs))})
        assert not overlap(param_location(ps), param_location(qs), independent)

    def test_pragma_breaks_param_object_pair(self):
        ps = sym("p", kind="param")
        array = sym("a")
        independent = frozenset({frozenset((ps, array))})
        assert not overlap(param_location(ps), object_location(array),
                           independent)

    def test_sets_overlap_any_pair(self):
        a = object_location(sym("a"))
        b = object_location(sym("b"))
        c = object_location(sym("c"))
        assert sets_overlap(frozenset({a, b}), frozenset({b, c}))
        assert not sets_overlap(frozenset({a}), frozenset({c}))

    def test_const_object_flag(self):
        assert object_location(sym("tbl", const=True)).is_constant_object
        assert not object_location(sym("buf")).is_constant_object
        assert not UNKNOWN.is_constant_object


class TestClasses:
    def test_disjoint_objects_get_distinct_classes(self):
        a = object_location(sym("a"))
        b = object_location(sym("b"))
        classes = LocationClasses([a, b])
        assert classes.num_classes == 2
        assert classes.class_of(a) != classes.class_of(b)

    def test_param_collapses_classes(self):
        a = object_location(sym("a"))
        b = object_location(sym("b"))
        p = param_location(sym("p", kind="param"))
        classes = LocationClasses([a, b, p])
        assert classes.num_classes == 1

    def test_transitive_merge(self):
        # a-p overlap and p-b overlap put a and b in one class even though
        # a and b are pairwise disjoint.
        a = object_location(sym("a"))
        b = object_location(sym("b"))
        p = param_location(sym("p", kind="param"))
        classes = LocationClasses([a, p, b])
        assert classes.class_of(a) == classes.class_of(b)

    def test_independent_pairs_respected(self):
        ps = sym("p", kind="param")
        array = sym("a")
        independent = frozenset({frozenset((ps, array))})
        classes = LocationClasses(
            [object_location(array), param_location(ps)], independent
        )
        assert classes.num_classes == 2

    def test_classes_of_set(self):
        a = object_location(sym("a"))
        b = object_location(sym("b"))
        classes = LocationClasses([a, b])
        ids = classes.classes_of_set(frozenset({a, b}))
        assert len(ids) == 2
