"""Symbolic address analysis (§4.3 heuristic 1)."""

from repro.frontend import ast
from repro.frontend import types as ty
from repro.pegasus.graph import Graph
from repro.pegasus import nodes as N
from repro.analysis.symbolic import AddressAnalysis, Affine


def sym(name):
    return ast.Symbol(name=name, type=ty.ArrayType(ty.INT, 16), kind="global")


class Builder:
    def __init__(self):
        self.graph = Graph("sym")
        self.analysis = AddressAnalysis()

    def const(self, value):
        return self.graph.add(N.ConstNode(value, ty.LONG)).out()

    def base(self, symbol):
        return self.graph.add(N.SymbolAddrNode(symbol)).out()

    def param(self, name, index=0):
        return self.graph.add(N.ParamNode(name, ty.LONG, index)).out()

    def add(self, a, b):
        return self.graph.add(N.BinOpNode("add", ty.ULONG, a, b)).out()

    def sub(self, a, b):
        return self.graph.add(N.BinOpNode("sub", ty.ULONG, a, b)).out()

    def mul(self, a, b):
        return self.graph.add(N.BinOpNode("mul", ty.LONG, a, b)).out()

    def shl(self, a, b):
        return self.graph.add(N.BinOpNode("shl", ty.LONG, a, b)).out()

    def cast_widen(self, a):
        return self.graph.add(N.CastNode(ty.INT, ty.LONG, a)).out()


class TestAffineForms:
    def test_constant(self):
        b = Builder()
        form = b.analysis.affine(b.const(12))
        assert form.is_constant and form.const == 12

    def test_addition_and_scaling(self):
        b = Builder()
        i = b.param("i")
        addr = b.add(b.base(sym("a")), b.mul(i, b.const(4)))
        form = b.analysis.affine(addr)
        assert form.const == 0
        coeffs = dict(form.terms)
        assert coeffs[i] == 4

    def test_shift_scales(self):
        b = Builder()
        i = b.param("i")
        form = b.analysis.affine(b.shl(i, b.const(3)))
        assert dict(form.terms)[i] == 8

    def test_subtraction_cancels(self):
        b = Builder()
        i = b.param("i")
        lhs = b.add(i, b.const(8))
        rhs = b.add(i, b.const(4))
        diff = b.analysis.difference(lhs, rhs)
        assert diff.is_constant and diff.const == 4

    def test_widening_cast_transparent(self):
        b = Builder()
        i = b.param("i")
        widened = b.cast_widen(i)
        form = b.analysis.affine(widened)
        assert dict(form.terms) == {i: 1}

    def test_nonlinear_becomes_atom(self):
        b = Builder()
        i = b.param("i")
        j = b.param("j", 1)
        product = b.mul(i, j)
        form = b.analysis.affine(product)
        assert form.single_term() == (product, 1)


class TestDisambiguation:
    def test_same_base_offset_apart(self):
        # a[i] vs a[i+1]: constant difference 4 >= width 4 (Figure 1A->B).
        b = Builder()
        i = b.param("i")
        scaled = b.mul(i, b.const(4))
        a_i = b.add(b.base(sym("a")), scaled)
        a_i1 = b.add(a_i, b.const(4))
        assert b.analysis.never_same_address(a_i, 4, a_i1, 4)

    def test_same_address_not_disjoint(self):
        b = Builder()
        i = b.param("i")
        array = sym("a")  # one object: symbols compare by identity
        addr1 = b.add(b.base(array), i)
        addr2 = b.add(b.base(array), i)
        assert not b.analysis.never_same_address(addr1, 4, addr2, 4)
        assert b.analysis.constant_difference(addr1, addr2) == 0

    def test_offset_smaller_than_width_overlaps(self):
        b = Builder()
        base = b.base(sym("a"))
        near = b.add(base, b.const(2))
        assert not b.analysis.never_same_address(base, 4, near, 4)

    def test_distinct_objects_disjoint(self):
        b = Builder()
        i = b.param("i")
        a_addr = b.add(b.base(sym("a")), i)
        b_addr = b.add(b.base(sym("b")), i)
        assert b.analysis.never_same_address(a_addr, 4, b_addr, 4)

    def test_unknown_pointers_not_disjoint(self):
        b = Builder()
        p = b.param("p")
        q = b.param("q", 1)
        assert not b.analysis.never_same_address(p, 4, q, 4)
