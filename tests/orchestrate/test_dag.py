"""JobSpec/JobDAG: content keys, validation, topological order."""

import pytest

from repro.orchestrate.dag import DagError, JobDAG, JobSpec


def _noop():
    return None


def _other():
    return None


class TestJobSpec:
    def test_key_is_stable_across_equal_specs(self):
        a = JobSpec(name="j", fn=_noop, args=(1, 2), kwargs={"k": 3})
        b = JobSpec(name="j", fn=_noop, args=(1, 2), kwargs={"k": 3})
        assert a.key == b.key

    def test_key_changes_with_name_fn_args_kwargs_and_deps(self):
        base = JobSpec(name="j", fn=_noop, args=(1,), kwargs={"k": 3})
        variants = [
            JobSpec(name="j2", fn=_noop, args=(1,), kwargs={"k": 3}),
            JobSpec(name="j", fn=_other, args=(1,), kwargs={"k": 3}),
            JobSpec(name="j", fn=_noop, args=(2,), kwargs={"k": 3}),
            JobSpec(name="j", fn=_noop, args=(1,), kwargs={"k": 4}),
            JobSpec(name="j", fn=_noop, args=(1,), kwargs={"k": 3},
                    deps=("d",)),
        ]
        keys = {base.key} | {spec.key for spec in variants}
        assert len(keys) == len(variants) + 1

    def test_key_ignores_kwarg_order(self):
        a = JobSpec(name="j", fn=_noop, kwargs={"a": 1, "b": 2})
        b = JobSpec(name="j", fn=_noop, kwargs={"b": 2, "a": 1})
        assert a.key == b.key

    def test_unknown_category_rejected(self):
        with pytest.raises(DagError, match="unknown category"):
            JobSpec(name="j", fn=_noop, category="nonsense")


class TestJobDAG:
    def test_duplicate_names_rejected(self):
        dag = JobDAG("d")
        dag.job("a", _noop)
        with pytest.raises(DagError, match="duplicate"):
            dag.job("a", _noop)

    def test_unknown_dependency_rejected(self):
        dag = JobDAG("d")
        dag.job("a", _noop, deps=("ghost",))
        with pytest.raises(DagError, match="unknown"):
            dag.validate()

    def test_cycle_rejected(self):
        dag = JobDAG("d")
        dag.job("a", _noop, deps=("b",))
        dag.job("b", _noop, deps=("a",))
        with pytest.raises(DagError, match="cycle"):
            dag.validate()

    def test_topo_order_is_insertion_stable(self):
        dag = JobDAG("d")
        dag.job("c1", _noop)
        dag.job("c2", _noop)
        dag.job("agg", _noop, deps=("c1", "c2"))
        dag.job("c3", _noop)
        names = [spec.name for spec in dag.topo_order()]
        assert names == ["c1", "c2", "c3", "agg"]

    def test_job_builder_splits_spec_fields_from_job_kwargs(self):
        dag = JobDAG("d")
        spec = dag.job("a", _noop, 1, 2, tolerant=True, retries=3,
                       attribution=True)
        assert spec.args == (1, 2)
        assert spec.tolerant is True
        assert spec.retries == 3
        assert spec.kwargs == {"attribution": True}

    def test_dag_id_tracks_content(self):
        dag1 = JobDAG("d")
        dag1.job("a", _noop, 1)
        dag2 = JobDAG("d")
        dag2.job("a", _noop, 1)
        assert dag1.dag_id == dag2.dag_id
        dag2.jobs.clear()
        dag2.job("a", _noop, 2)
        assert dag1.dag_id != dag2.dag_id

    def test_counts_by_category(self):
        dag = JobDAG("d")
        dag.job("compile", _noop, category="compile")
        dag.job("c1", _noop, category="cell")
        dag.job("c2", _noop, category="cell")
        dag.job("agg", _noop, category="aggregate")
        assert dag.counts() == {"compile": 1, "cell": 2, "aggregate": 1}
