"""Scheduler: dispatch, retry, DEGRADED propagation, resume, executors."""

import os
import time

import pytest

from repro.errors import ReproError, SimulationTimeout
from repro.orchestrate.dag import JobDAG
from repro.orchestrate.executors import (
    InlineExecutor,
    PoolExecutor,
    make_executor,
)
from repro.orchestrate.journal import Journal
from repro.orchestrate.scheduler import Scheduler


def _value(x):
    return x


def _double(x):
    return 2 * x


def _add(*, deps):
    return sum(d for d in deps if d is not None)


def _boom_repro():
    raise ReproError("deterministic failure")


def _boom_timeout():
    raise SimulationTimeout("over budget", 1.0, 2.0)


def _flaky(marker, payload):
    """Fails with OSError until the marker file exists."""
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted")
        raise OSError("transient flake")
    return payload


def _record_wall_limit(wall_limit=None):
    return wall_limit


def _write_pid_and_hang(path):
    """Pool-worker job that records its pid then wedges forever."""
    with open(path, "w") as handle:
        handle.write(str(os.getpid()))
    time.sleep(600)


def _session_probe():
    from repro.observe.telemetry import current_session
    session = current_session()
    if session is None:
        return None
    return (session.session_id, dict(session._tags), session.segment)


class TestBasicExecution:
    def test_values_flow_and_order_is_topological(self):
        dag = JobDAG("d")
        dag.job("a", _value, 1)
        dag.job("b", _value, 2)
        dag.job("sum", _add, deps=("a", "b"), pass_deps=True)
        sweep = Scheduler(dag).run()
        assert sweep.ok
        assert sweep.value("sum") == 3
        assert sweep["sum"].category == "job"
        assert sweep.counts() == {"ok": 3}

    def test_pass_deps_preserves_declaration_order(self):
        dag = JobDAG("d")
        dag.job("b", _value, "B")
        dag.job("a", _value, "A")

        def collect(*, deps):
            return list(deps)

        dag.job("agg", collect, deps=("a", "b"), pass_deps=True)
        sweep = Scheduler(dag).run()
        assert sweep.value("agg") == ["A", "B"]

    def test_report_names_executor_and_dag(self):
        dag = JobDAG("d")
        dag.job("a", _value, 1)
        sweep = Scheduler(dag).run()
        report = sweep.report()
        assert "executor inline" in report
        assert dag.dag_id[:12] in report
        assert "1 ok" in report


class TestFailureClassification:
    def test_repro_error_is_terminal_no_retry(self, tmp_path):
        dag = JobDAG("d")
        dag.job("bad", _boom_repro)
        sweep = Scheduler(dag, retries=5).run()
        result = sweep["bad"]
        assert result.status == "error"
        assert result.attempts == 1
        assert "deterministic failure" in result.error
        assert isinstance(result.exception, ReproError)

    def test_timeout_is_terminal(self):
        dag = JobDAG("d")
        dag.job("slow", _boom_timeout)
        sweep = Scheduler(dag, retries=5).run()
        assert sweep["slow"].status == "timeout"
        assert sweep["slow"].attempts == 1

    def test_transient_failure_retried_within_budget(self, tmp_path):
        dag = JobDAG("d")
        dag.job("flaky", _flaky, str(tmp_path / "marker"), 42)
        sweep = Scheduler(dag, retries=2).run()
        assert sweep["flaky"].status == "ok"
        assert sweep["flaky"].value == 42
        assert sweep["flaky"].attempts == 2
        assert sweep.retries == 1

    def test_transient_failure_exhausts_budget(self, tmp_path):
        dag = JobDAG("d")
        dag.job("flaky", _flaky, str(tmp_path / "never" / "nope"), 42)
        sweep = Scheduler(dag, retries=1).run()
        assert sweep["flaky"].status == "error"
        assert sweep["flaky"].attempts == 2

    def test_per_spec_retries_override_scheduler_budget(self, tmp_path):
        dag = JobDAG("d")
        dag.job("flaky", _flaky, str(tmp_path / "marker"), 7, retries=2)
        sweep = Scheduler(dag, retries=0).run()
        assert sweep["flaky"].status == "ok"


class TestDegradedPropagation:
    def _dag(self):
        dag = JobDAG("d")
        dag.job("bad", _boom_repro)
        dag.job("child", _double, 5, deps=("bad",))
        dag.job("grandchild", _double, 5, deps=("child",))
        dag.job("ok", _value, 10)
        dag.job("agg", _add, deps=("grandchild", "ok"),
                pass_deps=True, tolerant=True)
        return dag

    def test_failures_skip_dependents_transitively(self):
        sweep = Scheduler(self._dag()).run()
        assert sweep["bad"].status == "error"
        assert sweep["child"].status == "skipped"
        assert sweep["grandchild"].status == "skipped"
        assert "upstream degraded" in sweep["grandchild"].error
        assert sweep["ok"].status == "ok"

    def test_tolerant_aggregate_runs_with_holes(self):
        sweep = Scheduler(self._dag()).run()
        assert sweep["agg"].status == "ok"
        assert sweep["agg"].value == 10  # degraded dep contributed None
        assert not sweep.ok
        assert {r.name for r in sweep.degraded} == \
            {"bad", "child", "grandchild"}


class TestResume:
    def test_completed_jobs_resume_without_rerunning(self, tmp_path):
        marker = tmp_path / "ran-twice"
        dag = JobDAG("d")
        dag.job("a", _flaky, str(marker), 11)
        journal = Journal(tmp_path / "j")
        first = Scheduler(dag, journal=journal, retries=1).run()
        assert first["a"].status == "ok"
        # A second scheduler over the same journal replays the value;
        # _flaky would raise again if it were re-executed after the
        # marker is removed.
        marker.unlink()
        again = Scheduler(dag, journal=Journal(tmp_path / "j")).run()
        assert again["a"].status == "resumed"
        assert again["a"].value == 11
        assert not marker.exists()

    def test_resume_false_reruns_everything(self, tmp_path):
        dag = JobDAG("d")
        dag.job("a", _value, 1)
        journal = Journal(tmp_path / "j")
        Scheduler(dag, journal=journal).run()
        sweep = Scheduler(dag, journal=Journal(tmp_path / "j")) \
            .run(resume=False)
        assert sweep["a"].status == "ok"

    def test_transient_jobs_never_resume(self, tmp_path):
        dag = JobDAG("d")
        dag.job("cell", _value, 1)
        dag.job("agg", _add, deps=("cell",), pass_deps=True,
                tolerant=True, transient=True)
        journal = Journal(tmp_path / "j")
        Scheduler(dag, journal=journal).run()
        sweep = Scheduler(dag, journal=Journal(tmp_path / "j")).run()
        assert sweep["cell"].status == "resumed"
        assert sweep["agg"].status == "ok"  # re-aggregated, not resumed

    def test_content_key_invalidates_on_changed_args(self, tmp_path):
        dag1 = JobDAG("d")
        dag1.job("a", _value, 1)
        journal_path = tmp_path / "j"
        Scheduler(dag1, journal=Journal(journal_path)).run()
        # Same job name, different argument: the journal entry must not
        # be replayed for different work.
        dag2 = JobDAG("d")
        dag2.job("a", _value, 2)
        sweep = Scheduler(dag2, journal=Journal(journal_path)).run()
        assert sweep["a"].status == "ok"
        assert sweep["a"].value == 2

    def test_name_keying_resumes_across_changed_args(self, tmp_path):
        dag1 = JobDAG("d")
        dag1.job("a", _value, 1)
        journal_path = tmp_path / "j"
        Scheduler(dag1, journal=Journal(journal_path),
                  key_by="name").run()
        dag2 = JobDAG("d")
        dag2.job("a", _value, 2)
        sweep = Scheduler(dag2, journal=Journal(journal_path),
                          key_by="name").run()
        assert sweep["a"].status == "resumed"
        assert sweep["a"].value == 1  # legacy semantics: name wins

    def test_failed_jobs_are_recorded_but_not_resumed(self, tmp_path):
        dag = JobDAG("d")
        dag.job("bad", _boom_repro)
        journal_path = tmp_path / "j"
        Scheduler(dag, journal=Journal(journal_path)).run()
        journal = Journal(journal_path)
        assert not journal.has_value(dag.jobs["bad"].key)
        assert journal.get(dag.jobs["bad"].key)["status"] == "error"
        sweep = Scheduler(dag, journal=journal).run()
        assert sweep["bad"].status == "error"  # re-attempted, failed again


class TestWallLimit:
    def test_wall_limit_injected_into_accepting_jobs(self):
        dag = JobDAG("d")
        dag.job("a", _record_wall_limit)
        sweep = Scheduler(dag, wall_limit=1.5).run()
        assert sweep.value("a") == 1.5

    def test_spec_wall_limit_overrides_scheduler(self):
        dag = JobDAG("d")
        dag.job("a", _record_wall_limit, wall_limit=0.25)
        sweep = Scheduler(dag, wall_limit=1.5).run()
        assert sweep.value("a") == 0.25

    def test_explicit_kwarg_wins_over_injection(self):
        dag = JobDAG("d")
        dag.job("a", _record_wall_limit, wall_limit=None)
        spec = dag.jobs["a"]
        assert spec.wall_limit is None
        dag.jobs.clear()
        dag.job("a", _record_wall_limit)
        dag.jobs["a"].kwargs["wall_limit"] = 9.0
        sweep = Scheduler(dag, wall_limit=1.5).run()
        assert sweep.value("a") == 9.0


class TestExecutors:
    def test_pool_executor_runs_jobs_in_workers(self):
        dag = JobDAG("d")
        for i in range(4):
            dag.job(f"j{i}", _double, i)
        executor = make_executor("process", max_workers=2)
        sweep = Scheduler(dag, executor=executor).run()
        executor.shutdown()
        assert sweep.ok
        assert [sweep.value(f"j{i}") for i in range(4)] == [0, 2, 4, 6]
        assert sweep.executor.startswith("process-pool")

    def test_make_executor_resolves_kinds(self):
        assert isinstance(make_executor(None), InlineExecutor)
        assert isinstance(make_executor("inline"), InlineExecutor)
        pool = make_executor("process", max_workers=1)
        assert isinstance(pool, PoolExecutor)
        pool.shutdown()
        inline = InlineExecutor()
        assert make_executor(inline) is inline
        with pytest.raises(ValueError):
            make_executor("carrier-pigeon")

    def test_inline_results_report_inline_executor(self):
        dag = JobDAG("d")
        dag.job("a", _value, 1)
        sweep = Scheduler(dag).run()
        assert sweep["a"].executor == "inline"


class TestTelemetryIntegration:
    def test_jobs_run_under_dag_tags(self, tmp_path):
        from repro.observe.store import TelemetryStore
        from repro.observe.telemetry import TelemetrySession
        dag = JobDAG("d")
        dag.job("probe", _session_probe)
        session = TelemetrySession(store=TelemetryStore(tmp_path / "t"))
        with session:
            sweep = Scheduler(dag).run()
        session_id, tags, _segment = sweep.value("probe")
        assert session_id == session.session_id
        assert tags["dag"] == dag.dag_id
        assert tags["job"] == "probe"
        assert tags["attempt"] == 1
        assert tags["executor"] == "inline"

    def test_pool_workers_rebuild_the_session(self, tmp_path):
        from repro.observe.store import TelemetryStore
        from repro.observe.telemetry import TelemetrySession
        dag = JobDAG("d")
        dag.job("probe", _session_probe)
        executor = make_executor("process", max_workers=1)
        session = TelemetrySession(store=TelemetryStore(tmp_path / "t"))
        with session:
            sweep = Scheduler(dag, executor=executor).run()
        executor.shutdown()
        if not sweep.ok:  # pool degraded to inline in this sandbox
            pytest.skip("no process pool available")
        probe = sweep.value("probe")
        assert probe is not None
        session_id, tags, segment = probe
        assert session_id == session.session_id
        assert tags["executor"].startswith("process-pool")
        # Worker wrote its own segment file, suffixed with its pid.
        assert segment is not None and segment.startswith(session_id)
        assert segment != session_id


class TestRetryJitter:
    """Full jitter on the linear backoff ceiling: deterministic under a
    seed, bounded, decorrelated across jobs."""

    def _scheduler(self, n=12, **kwargs):
        dag = JobDAG("d")
        for i in range(n):
            dag.job(f"j{i}", _value, i)
        kwargs.setdefault("backoff", 0.5)
        return Scheduler(dag, **kwargs)

    def test_first_attempt_never_sleeps(self):
        scheduler = self._scheduler()
        spec = scheduler.dag.jobs["j0"]
        assert scheduler._backoff_delay(spec, 1) == 0.0

    def test_zero_backoff_disables_jitter(self):
        scheduler = self._scheduler(backoff=0.0)
        spec = scheduler.dag.jobs["j0"]
        assert scheduler._backoff_delay(spec, 3) == 0.0

    def test_delay_bounded_by_linear_ceiling(self):
        scheduler = self._scheduler()
        for spec in scheduler.dag:
            for attempt in range(2, 6):
                delay = scheduler._backoff_delay(spec, attempt)
                assert 0.0 <= delay <= 0.5 * (attempt - 1)

    def test_deterministic_for_a_given_seed(self):
        first = self._scheduler(jitter_seed=7)
        second = self._scheduler(jitter_seed=7)
        for name in first.dag.jobs:
            spec1, spec2 = first.dag.jobs[name], second.dag.jobs[name]
            assert first._backoff_delay(spec1, 2) == \
                second._backoff_delay(spec2, 2)

    def test_different_seeds_draw_different_delays(self):
        base = self._scheduler(jitter_seed=0)
        other = self._scheduler(jitter_seed=1)
        spec_b = base.dag.jobs["j0"]
        spec_o = other.dag.jobs["j0"]
        assert base._backoff_delay(spec_b, 2) != \
            other._backoff_delay(spec_o, 2)

    def test_decorrelated_across_jobs_no_stampede(self):
        # Twelve jobs retrying the same attempt must spread across the
        # window, not sleep in lockstep: that is the point of jitter.
        scheduler = self._scheduler()
        delays = [scheduler._backoff_delay(spec, 2)
                  for spec in scheduler.dag]
        assert len(set(delays)) == len(delays)
        spread = max(delays) - min(delays)
        assert spread > 0.1  # spans a real fraction of the 0.5s window

    def test_decorrelated_across_attempts(self):
        scheduler = self._scheduler()
        spec = scheduler.dag.jobs["j0"]
        ratios = {round(scheduler._backoff_delay(spec, n) / (n - 1), 9)
                  for n in range(2, 6)}
        assert len(ratios) > 1  # not the same fraction of each ceiling


class TestHardWallLimitReaping:
    def test_timed_out_pool_job_leaves_no_orphan_process(self, tmp_path):
        # A wedged pool worker ignores its cooperative wall-limit; the
        # scheduler must reap it (status "timeout") and the worker
        # process must not outlive the sweep.
        executor = PoolExecutor(max_workers=1)
        probe_dag = JobDAG("probe")
        probe_dag.job("ping", _value, 1)
        probe = Scheduler(probe_dag, executor=executor).run()
        if executor.degraded_reason is not None or not probe.ok:
            executor.shutdown()
            pytest.skip("no process pool available")

        pid_file = tmp_path / "pid"
        dag = JobDAG("d")
        dag.job("hang", _write_pid_and_hang, str(pid_file))
        sweep = Scheduler(dag, executor=executor, wall_limit=1.0,
                          hard_grace=1.0).run()
        executor.shutdown()

        result = sweep["hang"]
        assert result.status == "timeout"
        assert "worker reaped" in result.error
        pid = int(pid_file.read_text())
        # The reaped worker dies promptly — poll a little for the kernel.
        for _ in range(50):
            try:
                os.kill(pid, 0)
            except OSError:
                break
            time.sleep(0.1)
        else:
            os.kill(pid, 9)
            pytest.fail(f"worker {pid} outlived its timed-out job")


class TestPoolDegradation:
    def test_degrades_inline_with_degraded_provenance_tag(
            self, tmp_path, monkeypatch):
        from repro.observe.store import TelemetryStore
        from repro.observe.telemetry import TelemetrySession
        from repro.orchestrate import executors as executors_module

        class _NoPool:
            def __init__(self, *args, **kwargs):
                raise NotImplementedError("no process primitives here")

        monkeypatch.setattr(executors_module, "ProcessPoolExecutor",
                            _NoPool)
        executor = PoolExecutor(max_workers=2)
        dag = JobDAG("d")
        dag.job("a", _value, 1)
        # The probe runs after "a", by which point the first submit has
        # already tripped the degradation — its tags must say so.
        dag.job("probe", _session_probe, deps=("a",))
        session = TelemetrySession(store=TelemetryStore(tmp_path / "t"))
        with session:
            sweep = Scheduler(dag, executor=executor).run()
        executor.shutdown()

        assert sweep.ok
        assert sweep.value("a") == 1
        assert executor.degraded_reason == "no process primitives"
        assert "->inline" in executor.name
        _session_id, tags, _segment = sweep.value("probe")
        assert tags["degraded"] == "no process primitives"
        assert "->inline" in tags["executor"]
