"""RemoteExecutor: the distributed failure matrix, end to end.

Every test here runs real worker subprocesses over real sockets. The
chaos hooks (``REPRO_WORKER_KILL_AFTER``, ``REPRO_WORKER_STALL``,
``REPRO_NET_DROP_AFTER``) inject the three canonical partial failures —
a worker SIGKILLed after journaling but before sending, a worker that
wedges while its heartbeats keep flowing, and a connection reset halfway
through a result frame — and each one must degrade to a retried job:
the sweep completes with rows bit-identical to an inline run, and no
job is lost or double-counted.
"""

import json
import os
import pickle
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.orchestrate.dag import JobDAG
from repro.orchestrate.executors import make_executor
from repro.orchestrate.journal import Journal, shard_path
from repro.orchestrate.remote import (
    _LENGTH,
    FrameBuffer,
    RemoteExecutor,
    WorkerLost,
    recv_frame,
    send_frame,
)
from repro.orchestrate.scheduler import Scheduler

ROOT = Path(__file__).resolve().parents[2]
SRC = str(ROOT / "src")

CHAOS_ENVS = ("REPRO_WORKER_KILL_AFTER", "REPRO_WORKER_STALL",
              "REPRO_NET_DROP_AFTER", "REPRO_SWEEP_KILL_AFTER",
              "REPRO_SWEEP_FLAKE")

#: Failure-detection timings shrunk so the chaos matrix runs in seconds.
FAST = dict(heartbeat=0.2, lease_timeout=1.5, wall_grace=0.5)


def _cell(i):
    return {"cell": i, "value": i * i}


def _gather(*, deps):
    return [row for row in deps if row is not None]


def _dag(n=10):
    dag = JobDAG("remote-test")
    for i in range(n):
        dag.job(f"cell/{i}", _cell, i, category="cell")
    dag.job("agg", _gather, deps=tuple(f"cell/{i}" for i in range(n)),
            category="aggregate", tolerant=True, pass_deps=True,
            transient=True)
    return dag


def _inline_rows(n=10):
    return Scheduler(_dag(n)).run().value("agg")


@pytest.fixture()
def worker_env(monkeypatch):
    """Spawned workers unpickle this module's functions by reference, so
    they need the repo root (the ``tests`` package) and ``src`` on their
    PYTHONPATH; also scrub any chaos hooks leaking in from outside."""
    parts = [str(ROOT), SRC]
    existing = os.environ.get("PYTHONPATH")
    if existing:
        parts.append(existing)
    monkeypatch.setenv("PYTHONPATH", os.pathsep.join(parts))
    for name in CHAOS_ENVS:
        monkeypatch.delenv(name, raising=False)
    return monkeypatch


class TestFraming:
    def test_buffer_reassembles_frames_fed_in_tiny_pieces(self):
        message = {"kind": "result", "value": list(range(50))}
        data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        stream = (_LENGTH.pack(len(data)) + data) * 2
        buffer = FrameBuffer()
        decoded = []
        for start in range(0, len(stream), 7):
            decoded.extend(buffer.feed(stream[start:start + 7]))
        assert decoded == [message, message]

    def test_partial_frame_stays_buffered(self):
        message = {"kind": "heartbeat"}
        data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        stream = _LENGTH.pack(len(data)) + data
        buffer = FrameBuffer()
        assert buffer.feed(stream[:-1]) == []
        assert buffer.feed(stream[-1:]) == [message]

    def test_send_recv_roundtrip_over_a_real_socket(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"kind": "hello", "worker": "w"})
            assert recv_frame(right) == {"kind": "hello", "worker": "w"}
            left.close()
            assert recv_frame(right) is None  # clean EOF
        finally:
            right.close()


class TestRemoteBasic:
    def test_rows_bit_identical_to_inline(self, worker_env):
        executor = RemoteExecutor(workers=2, **FAST)
        sweep = Scheduler(_dag(), executor=executor).run()
        executor.shutdown()
        assert sweep.ok, sweep.report()
        assert sweep.value("agg") == _inline_rows()
        assert sweep.executor == "remote[2]"
        assert executor.stats["dispatched"] >= 11  # 10 cells + aggregate

    def test_results_carry_worker_provenance(self, worker_env, tmp_path):
        executor = RemoteExecutor(workers=2, **FAST)
        journal = Journal(tmp_path / "j")
        sweep = Scheduler(_dag(4), executor=executor,
                          journal=journal).run()
        executor.shutdown()
        assert sweep.ok, sweep.report()
        result = sweep["cell/0"]
        assert result.worker and result.host
        assert result.lease and result.lease.startswith("L")
        assert result.worker in sweep.report()
        # The journal records the lease holder for post-mortems...
        entry = journal.get(_dag(4).jobs["cell/0"].key)
        assert entry["worker"] == result.worker
        assert entry["lease"] == result.lease
        # ...and the workers journaled to their own shards first.
        shard_dir = tmp_path / "remote-test"
        shards = sorted(shard_dir.glob("shard-*.jsonl"))
        assert shards, "workers wrote no journal shards"
        shard_entries = Journal(shards[0]).statuses()
        assert any(e.get("status") == "ok" for e in shard_entries.values())

    def test_shutdown_leaves_no_worker_processes(self, worker_env):
        executor = RemoteExecutor(workers=2, **FAST)
        sweep = Scheduler(_dag(4), executor=executor).run()
        pids = [proc.pid for proc in executor._procs]
        assert sweep.ok and pids
        executor.shutdown()
        assert executor._procs == []
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)

    def test_make_executor_resolves_remote(self, worker_env):
        executor = make_executor("remote", max_workers=1,
                                 listen="127.0.0.1:0")
        try:
            assert isinstance(executor, RemoteExecutor)
            assert executor.workers == 1
            assert executor.address[0] == "127.0.0.1"
            assert executor.address[1] > 0  # ephemeral port resolved
        finally:
            executor.shutdown()

    def test_no_workers_degrades_to_inline(self, worker_env):
        executor = RemoteExecutor(workers=0, **FAST)
        sweep = Scheduler(_dag(4), executor=executor).run()
        executor.shutdown()
        assert sweep.ok, sweep.report()
        assert sweep.value("agg") == _inline_rows(4)
        assert executor.degraded_reason == "no workers left"
        assert "->inline" in executor.name


class TestChaosMatrix:
    """Each injected failure must degrade to a retried job — the sweep
    completes with rows identical to inline, nothing lost."""

    def _run(self, retries=3, wall_limit=None, cells=10):
        executor = RemoteExecutor(workers=2, **FAST)
        sweep = Scheduler(_dag(cells), executor=executor,
                          retries=retries, wall_limit=wall_limit).run()
        executor.shutdown()
        return sweep, executor

    def test_worker_sigkill_mid_job_is_retried_not_lost(self, worker_env):
        # The worst-ordered crash: the worker dies after journaling its
        # 3rd completion but before sending the result frame.
        worker_env.setenv("REPRO_WORKER_KILL_AFTER", "3")
        sweep, executor = self._run()
        assert sweep.ok, sweep.report()
        assert sweep.value("agg") == _inline_rows()
        assert executor.stats["worker_losses"] >= 1
        assert executor.stats["respawns"] >= 1
        assert sweep.retries >= 1  # the in-flight job was requeued

    def test_stalled_worker_caught_by_wall_deadline(self, worker_env):
        # The worker wedges on cell/5 attempt 1 while heartbeats keep
        # flowing — only the lease's wall-limit deadline can catch it.
        worker_env.setenv("REPRO_WORKER_STALL", "cell/5")
        sweep, executor = self._run(wall_limit=1.0)
        assert sweep.ok, sweep.report()
        assert sweep.value("agg") == _inline_rows()
        assert executor.stats["revoked"] >= 1
        stalled = sweep["cell/5"]
        assert stalled.status == "ok"
        assert stalled.attempts >= 2

    def test_connection_reset_mid_result_frame(self, worker_env):
        # Half a result frame then a hard RST: the coordinator must
        # treat the torn stream as a lost worker and requeue.
        worker_env.setenv("REPRO_NET_DROP_AFTER", "4")
        sweep, executor = self._run()
        assert sweep.ok, sweep.report()
        assert sweep.value("agg") == _inline_rows()
        assert executor.stats["worker_losses"] >= 1
        assert sweep.retries >= 1

    def test_chaos_run_never_double_counts_a_job(self, worker_env,
                                                 tmp_path):
        worker_env.setenv("REPRO_WORKER_KILL_AFTER", "2")
        executor = RemoteExecutor(workers=2, **FAST)
        sweep = Scheduler(_dag(8), executor=executor, retries=3,
                          journal=Journal(tmp_path / "j")).run()
        executor.shutdown()
        assert sweep.ok, sweep.report()
        # Resuming replays every cell from the journal (shards merged,
        # last-write-wins): one value per key, no re-execution.
        worker_env.delenv("REPRO_WORKER_KILL_AFTER", raising=False)
        resumed = Scheduler(_dag(8), journal=Journal(tmp_path / "j")).run()
        assert resumed.counts()["resumed"] == 8
        assert resumed.value("agg") == sweep.value("agg")


class TestShardMergeOnResume:
    def test_scheduler_folds_shards_into_the_journal(self, tmp_path):
        # A previous distributed run finished cell/1 on a worker whose
        # result never crossed the wire: only the shard has it.
        dag = _dag(2)
        journal = Journal(tmp_path / "j")
        shard_dir = tmp_path / dag.name
        shard = Journal(shard_path(shard_dir, "otherhost-123"))
        shard.record(dag.jobs["cell/1"].key, name="cell/1",
                     value={"cell": 1, "value": 1}, attempts=1,
                     worker="otherhost-123", host="otherhost")
        sweep = Scheduler(dag, journal=journal).run()
        assert sweep["cell/1"].status == "resumed"
        assert sweep["cell/1"].value == {"cell": 1, "value": 1}
        assert sweep["cell/0"].status == "ok"  # not in any journal: ran
        assert not list(shard_dir.glob("shard-*.jsonl"))  # consumed


COORDINATOR_SCRIPT = """
import json, os, sys
from repro.orchestrate.dag import JobDAG
from repro.orchestrate.journal import Journal
from repro.orchestrate.remote import RemoteExecutor
from repro.orchestrate.scheduler import Scheduler
from tests.orchestrate.test_remote import _cell, _gather

workdir, mode = sys.argv[1], sys.argv[2]

dag = JobDAG("crashy")
for i in range(8):
    dag.job(f"cell/{i}", _cell, i, category="cell")
dag.job("agg", _gather, deps=tuple(f"cell/{i}" for i in range(8)),
        category="aggregate", tolerant=True, pass_deps=True,
        transient=True)

executor = None
if mode == "remote":
    executor = RemoteExecutor(workers=2, heartbeat=0.2,
                              lease_timeout=1.5, wall_grace=0.5)
sweep = Scheduler(dag, executor=executor,
                  journal=Journal(os.path.join(workdir, "j")),
                  retries=3).run()
if executor is not None:
    executor.shutdown()
with open(os.path.join(workdir, "rows.json"), "w") as handle:
    json.dump(sweep.value("agg"), handle, sort_keys=True)
print(json.dumps(sweep.counts(), sort_keys=True))
"""


class TestCoordinatorCrash:
    """SIGKILL the *coordinator* mid-sweep: work finished on workers
    survives in their shards and is merged on resume."""

    def _run(self, script, workdir, mode, *, kill_after=None):
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join([str(ROOT), SRC]))
        for name in CHAOS_ENVS:
            env.pop(name, None)
        if kill_after is not None:
            env["REPRO_SWEEP_KILL_AFTER"] = str(kill_after)
        return subprocess.run(
            [sys.executable, str(script), str(workdir), mode],
            env=env, capture_output=True, text=True, timeout=120)

    def test_killed_coordinator_resumes_from_worker_shards(self, tmp_path):
        script = tmp_path / "coordinator.py"
        script.write_text(COORDINATOR_SCRIPT)
        workdir = tmp_path / "run"
        workdir.mkdir()

        killed = self._run(script, workdir, "remote", kill_after=3)
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        shard_dir = workdir / "crashy"
        assert list(shard_dir.glob("shard-*.jsonl")), \
            "workers left no shards behind"
        assert not (workdir / "rows.json").exists()

        resumed = self._run(script, workdir, "inline")
        assert resumed.returncode == 0, resumed.stderr
        counts = json.loads(resumed.stdout)
        assert counts.get("resumed", 0) >= 3
        assert not list(shard_dir.glob("shard-*.jsonl"))  # merged away

        clean = tmp_path / "clean"
        clean.mkdir()
        uninterrupted = self._run(script, clean, "inline")
        assert uninterrupted.returncode == 0, uninterrupted.stderr
        assert (workdir / "rows.json").read_bytes() == \
            (clean / "rows.json").read_bytes()


class TestWorkerLostClassification:
    def test_worker_lost_is_an_oserror(self):
        # The whole recovery story hangs on this: WorkerLost must be
        # classified transient by the scheduler's retry logic.
        assert issubclass(WorkerLost, OSError)
