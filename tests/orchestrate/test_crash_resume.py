"""Crash-resume: SIGKILL mid-sweep, torn journal tails, identical rows.

The scheduler's own chaos hook (``REPRO_SWEEP_KILL_AFTER=<n>``) SIGKILLs
the process after the *n*-th freshly-executed job is journaled — a real
kill, so these tests drive real subprocesses and assert the whole
contract: completed cells are not re-executed on resume, a tail torn
mid-record is discarded (and the cell re-runs), and the resumed sweep's
rows are identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

SCRIPT = """
import json, os, sys
from repro.orchestrate.dag import JobDAG
from repro.orchestrate.journal import Journal
from repro.orchestrate.scheduler import Scheduler

workdir = sys.argv[1]

def cell(i):
    with open(os.path.join(workdir, "executions.log"), "a") as handle:
        handle.write(f"cell/{i}\\n")
    return {"cell": i, "value": i * i}

def agg(*, deps):
    return [row for row in deps if row is not None]

dag = JobDAG("crashy")
for i in range(6):
    dag.job(f"cell/{i}", cell, i, category="cell")
dag.job("agg", agg, deps=tuple(f"cell/{i}" for i in range(6)),
        category="aggregate", tolerant=True, pass_deps=True,
        transient=True)
sweep = Scheduler(dag, journal=Journal(os.path.join(workdir, "j"))).run()
with open(os.path.join(workdir, "rows.json"), "w") as handle:
    json.dump(sweep.value("agg"), handle, sort_keys=True)
print(json.dumps(sweep.counts(), sort_keys=True))
"""


def _run(script_path, workdir, *, kill_after=None):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_SWEEP_KILL_AFTER", None)
    env.pop("REPRO_SWEEP_FLAKE", None)
    if kill_after is not None:
        env["REPRO_SWEEP_KILL_AFTER"] = str(kill_after)
    return subprocess.run(
        [sys.executable, str(script_path), str(workdir)],
        env=env, capture_output=True, text=True, timeout=120)


@pytest.fixture()
def script(tmp_path):
    path = tmp_path / "sweep_script.py"
    path.write_text(SCRIPT)
    return path


def _executions(workdir) -> list[str]:
    log = Path(workdir) / "executions.log"
    if not log.exists():
        return []
    return log.read_text().splitlines()


class TestKillAndResume:
    def test_killed_run_resumes_without_rerunning_journaled_cells(
            self, script, tmp_path):
        workdir = tmp_path / "run"
        workdir.mkdir()
        killed = _run(script, workdir, kill_after=2)
        assert killed.returncode == -signal.SIGKILL
        journaled = (workdir / "j").read_text().count('"status": "ok"')
        assert journaled == 2
        assert not (workdir / "rows.json").exists()

        resumed = _run(script, workdir)
        assert resumed.returncode == 0, resumed.stderr
        counts = json.loads(resumed.stdout)
        assert counts["resumed"] == 2
        # ok = 4 re-run cells + the transient aggregate.
        assert counts["ok"] == 5

        # The two journaled cells executed exactly once across both
        # runs; every other cell at most twice (once in the killed run,
        # once after resume).
        executions = _executions(workdir)
        journal_text = (workdir / "j").read_text()
        once = [line for line in set(executions)
                if executions.count(line) == 1]
        assert len(once) >= 2
        for name in once[:2]:
            assert name in journal_text

    def test_resumed_rows_match_uninterrupted_run(self, script, tmp_path):
        interrupted = tmp_path / "interrupted"
        interrupted.mkdir()
        assert _run(script, interrupted,
                    kill_after=3).returncode == -signal.SIGKILL
        assert _run(script, interrupted).returncode == 0

        clean = tmp_path / "clean"
        clean.mkdir()
        assert _run(script, clean).returncode == 0

        assert (interrupted / "rows.json").read_bytes() == \
            (clean / "rows.json").read_bytes()

    def test_torn_journal_tail_is_discarded_and_cell_rerun(
            self, script, tmp_path):
        workdir = tmp_path / "run"
        workdir.mkdir()
        assert _run(script, workdir,
                    kill_after=3).returncode == -signal.SIGKILL
        journal_path = workdir / "j"
        lines = journal_path.read_bytes().splitlines(keepends=True)
        assert len(lines) == 3
        # Tear the last record mid-write: keep the first two intact and
        # half of the third, no trailing newline.
        torn = lines[0] + lines[1] + lines[2][: len(lines[2]) // 2]
        journal_path.write_bytes(torn)

        resumed = _run(script, workdir)
        assert resumed.returncode == 0, resumed.stderr
        counts = json.loads(resumed.stdout)
        assert counts["resumed"] == 2  # the torn third entry is not trusted
        assert counts["ok"] == 5

        # The journal healed: every line parses and all six cells are
        # recorded ok.
        final = journal_path.read_bytes().splitlines()
        parsed = [json.loads(line) for line in final]
        ok_keys = {entry["key"] for entry in parsed
                   if entry["status"] == "ok"}
        assert len(ok_keys) == 6

        uninterrupted = tmp_path / "clean"
        uninterrupted.mkdir()
        assert _run(script, uninterrupted).returncode == 0
        assert (workdir / "rows.json").read_bytes() == \
            (uninterrupted / "rows.json").read_bytes()


class TestFig19SweepCLI:
    """The acceptance path: `repro sweep run fig19` killed and resumed."""

    def _sweep(self, cwd, *args, kill_after=None, record=False):
        env = dict(os.environ, PYTHONPATH=SRC)
        env.pop("REPRO_SWEEP_KILL_AFTER", None)
        env.pop("REPRO_SWEEP_FLAKE", None)
        # Keep the telemetry store local to the working directory.
        env.pop("REPRO_TELEMETRY_DIR", None)
        if kill_after is not None:
            env["REPRO_SWEEP_KILL_AFTER"] = str(kill_after)
        argv = [sys.executable, "-m", "repro", "sweep", *args,
                "--kernels", "li"]
        if record:
            argv.append("--record")
        return subprocess.run(argv, cwd=str(cwd), env=env,
                              capture_output=True, text=True, timeout=300)

    @staticmethod
    def _table(stdout: str) -> str:
        # The rendered figure table follows the blank line after the
        # per-job report.
        return stdout.split("\n\n", 1)[1]

    def test_kill_resume_rows_bit_identical(self, tmp_path):
        workdir = tmp_path / "work"
        workdir.mkdir()
        killed = self._sweep(workdir, "run", "fig19", kill_after=2,
                             record=True)
        assert killed.returncode == -signal.SIGKILL

        resumed = self._sweep(workdir, "resume", "fig19", record=True)
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed from journal" in resumed.stdout

        clean_dir = tmp_path / "clean"
        clean_dir.mkdir()
        uninterrupted = self._sweep(clean_dir, "run", "fig19")
        assert uninterrupted.returncode == 0, uninterrupted.stderr

        assert self._table(resumed.stdout) == \
            self._table(uninterrupted.stdout)

        # Provenance: every cell's RunRecord carries the DAG id, the
        # attempt count, and the executor backend (runs 1+2 together
        # cover all four cells exactly once).
        from repro.observe.store import TelemetryStore
        store = TelemetryStore(workdir / ".repro" / "telemetry")
        by_cell = {}
        for record in store.records():
            job = record.tags.get("job", "")
            if job.startswith("fig19/li/") and record.kind == "run":
                by_cell.setdefault(job, record)
        assert len(by_cell) == 4
        dag_ids = set()
        for record in by_cell.values():
            assert record.tags["attempt"] >= 1
            assert record.tags["executor"] == "inline"
            dag_ids.add(record.tags["dag"])
        assert len(dag_ids) == 1
