"""``repro sweep status --json``: machine-readable sweep state."""

import json

from repro.orchestrate import sweeps
from repro.orchestrate.journal import Journal


def status_json(capsys, journal) -> dict:
    rc = sweeps.sweep_main(["status", "fig19", "--kernels", "li",
                            "--journal", str(journal), "--json"])
    assert rc == 0
    return json.loads(capsys.readouterr().out)


def test_status_json_without_journal(tmp_path, capsys):
    report = status_json(capsys, tmp_path / "fig19.journal")
    assert report["sweep"] == "fig19"
    assert report["journal_exists"] is False
    assert report["complete"] == 0
    assert report["total"] == len(report["jobs"]) > 0
    assert {job["status"] for job in report["jobs"]} == {"pending"}
    assert report["counts"] == {"pending": report["total"]}
    for job in report["jobs"]:
        assert set(job) == {"name", "category", "status"}


def test_status_json_reflects_journal(tmp_path, capsys):
    journal_path = tmp_path / "fig19.journal"
    options = sweeps.build_sweep_parser().parse_args(
        ["status", "fig19", "--kernels", "li",
         "--journal", str(journal_path)])
    _, dag = sweeps._build(options)
    specs = [spec for spec in dag.topo_order() if not spec.transient]

    journal = Journal(journal_path)
    journal.record(specs[0].key, name=specs[0].name, status="ok",
                   value=None, attempts=1)
    journal.record(specs[1].key, name=specs[1].name, status="failed",
                   attempts=2, error="boom", worker="w0")

    report = status_json(capsys, journal_path)
    assert report["journal_exists"] is True
    assert report["complete"] == 1
    assert report["counts"]["ok"] == 1
    assert report["counts"]["failed"] == 1
    assert report["counts"]["pending"] == report["total"] - 2
    by_name = {job["name"]: job for job in report["jobs"]}
    assert by_name[specs[0].name]["status"] == "ok"
    assert by_name[specs[0].name]["attempts"] == 1
    failed = by_name[specs[1].name]
    assert failed["status"] == "failed"
    assert failed["error"] == "boom"
    assert failed["worker"] == "w0"
    # The text rendering still works on the same state.
    rc = sweeps.sweep_main(["status", "fig19", "--kernels", "li",
                            "--journal", str(journal_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "1/" in out and "journaled jobs complete" in out
