"""Journal: append-only records, torn tails, compaction."""

from repro.orchestrate.journal import Journal


class TestRoundtrip:
    def test_values_survive_reload(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.record("a", value={"cycles": 10})
        journal.record("b", value=[1, 2, 3])
        reloaded = Journal(tmp_path / "j")
        assert reloaded.value("a") == {"cycles": 10}
        assert reloaded.value("b") == [1, 2, 3]
        assert len(reloaded) == 2

    def test_latest_event_wins(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.record("a", value=1)
        journal.record("a", value=2)
        assert Journal(tmp_path / "j").value("a") == 2

    def test_failure_statuses_carry_no_value(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.record("a", status="error", value="ignored")
        reloaded = Journal(tmp_path / "j")
        assert not reloaded.has_value("a")
        assert reloaded.value("a") is None
        assert reloaded.get("a")["status"] == "error"
        assert len(reloaded) == 0

    def test_appends_not_rewrites(self, tmp_path):
        """Recording N values costs O(N) bytes total, not O(N^2)."""
        path = tmp_path / "j"
        journal = Journal(path)
        journal.record("k0", value="x" * 100)
        first = path.stat().st_size
        for i in range(1, 50):
            journal.record(f"k{i}", value="x" * 100)
        # 50 similar records: the file grows linearly (each append is
        # about the size of the first record, not the whole prefix).
        assert path.stat().st_size < first * 55


class TestCrashTolerance:
    def test_torn_tail_is_discarded_on_load(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        journal.record("a", value=1)
        journal.record("b", value=2)
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # kill mid-write of the last record
        reloaded = Journal(path)
        assert reloaded.value("a") == 1
        assert not reloaded.has_value("b")
        assert reloaded.tail_dropped > 0

    def test_next_append_truncates_the_torn_tail(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        journal.record("a", value=1)
        with open(path, "ab") as handle:
            handle.write(b'{"key": "torn')
        reloaded = Journal(path)
        reloaded.record("b", value=2)
        # The file is clean again: every line parses.
        final = Journal(path)
        assert final.value("a") == 1
        assert final.value("b") == 2
        assert final.tail_dropped == 0

    def test_corrupt_middle_line_stops_trust_there(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        journal.record("a", value=1)
        good = path.read_bytes()
        path.write_bytes(good + b"not json at all\n" + good.replace(b'"a"', b'"b"'))
        reloaded = Journal(path)
        assert reloaded.value("a") == 1
        assert not reloaded.has_value("b")

    def test_garbage_file_heals(self, tmp_path):
        path = tmp_path / "j"
        path.write_bytes(b"\x00\x01binary garbage")
        journal = Journal(path)
        assert len(journal) == 0
        journal.record("a", value=1)
        assert Journal(path).value("a") == 1


class TestCompaction:
    def test_explicit_compact_drops_dead_lines(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        for _ in range(20):
            journal.record("a", value="x" * 50)
        size_before = path.stat().st_size
        journal.compact()
        assert path.stat().st_size < size_before
        assert Journal(path).value("a") == "x" * 50

    def test_auto_compaction_bounds_dead_weight(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        for _ in range(200):
            journal.record("a", value=1)
        # 200 rewrites of one key auto-compacted: far fewer lines remain.
        lines = path.read_bytes().count(b"\n")
        assert lines < 150
        assert Journal(path).value("a") == 1

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        journal.record("a", value=1)
        journal.clear()
        assert not path.exists()
        assert len(Journal(path)) == 0
