"""Journal: append-only records, torn tails, compaction, shard merge."""

from repro.orchestrate.journal import (
    Journal,
    merge_shards,
    read_shards,
    shard_path,
)


class TestRoundtrip:
    def test_values_survive_reload(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.record("a", value={"cycles": 10})
        journal.record("b", value=[1, 2, 3])
        reloaded = Journal(tmp_path / "j")
        assert reloaded.value("a") == {"cycles": 10}
        assert reloaded.value("b") == [1, 2, 3]
        assert len(reloaded) == 2

    def test_latest_event_wins(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.record("a", value=1)
        journal.record("a", value=2)
        assert Journal(tmp_path / "j").value("a") == 2

    def test_failure_statuses_carry_no_value(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.record("a", status="error", value="ignored")
        reloaded = Journal(tmp_path / "j")
        assert not reloaded.has_value("a")
        assert reloaded.value("a") is None
        assert reloaded.get("a")["status"] == "error"
        assert len(reloaded) == 0

    def test_appends_not_rewrites(self, tmp_path):
        """Recording N values costs O(N) bytes total, not O(N^2)."""
        path = tmp_path / "j"
        journal = Journal(path)
        journal.record("k0", value="x" * 100)
        first = path.stat().st_size
        for i in range(1, 50):
            journal.record(f"k{i}", value="x" * 100)
        # 50 similar records: the file grows linearly (each append is
        # about the size of the first record, not the whole prefix).
        assert path.stat().st_size < first * 55


class TestCrashTolerance:
    def test_torn_tail_is_discarded_on_load(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        journal.record("a", value=1)
        journal.record("b", value=2)
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # kill mid-write of the last record
        reloaded = Journal(path)
        assert reloaded.value("a") == 1
        assert not reloaded.has_value("b")
        assert reloaded.tail_dropped > 0

    def test_next_append_truncates_the_torn_tail(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        journal.record("a", value=1)
        with open(path, "ab") as handle:
            handle.write(b'{"key": "torn')
        reloaded = Journal(path)
        reloaded.record("b", value=2)
        # The file is clean again: every line parses.
        final = Journal(path)
        assert final.value("a") == 1
        assert final.value("b") == 2
        assert final.tail_dropped == 0

    def test_corrupt_middle_line_stops_trust_there(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        journal.record("a", value=1)
        good = path.read_bytes()
        path.write_bytes(good + b"not json at all\n" + good.replace(b'"a"', b'"b"'))
        reloaded = Journal(path)
        assert reloaded.value("a") == 1
        assert not reloaded.has_value("b")

    def test_garbage_file_heals(self, tmp_path):
        path = tmp_path / "j"
        path.write_bytes(b"\x00\x01binary garbage")
        journal = Journal(path)
        assert len(journal) == 0
        journal.record("a", value=1)
        assert Journal(path).value("a") == 1


class TestCompaction:
    def test_explicit_compact_drops_dead_lines(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        for _ in range(20):
            journal.record("a", value="x" * 50)
        size_before = path.stat().st_size
        journal.compact()
        assert path.stat().st_size < size_before
        assert Journal(path).value("a") == "x" * 50

    def test_auto_compaction_bounds_dead_weight(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        for _ in range(200):
            journal.record("a", value=1)
        # 200 rewrites of one key auto-compacted: far fewer lines remain.
        lines = path.read_bytes().count(b"\n")
        assert lines < 150
        assert Journal(path).value("a") == 1

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(path)
        journal.record("a", value=1)
        journal.clear()
        assert not path.exists()
        assert len(Journal(path)) == 0


class TestShardMerge:
    """merge_shards: fold per-worker shards into the main journal,
    last-write-wins per job key by event timestamp."""

    def _shard(self, tmp_path, worker):
        return Journal(shard_path(tmp_path / "shards", worker))

    def test_shard_values_recovered_into_main_journal(self, tmp_path):
        journal = Journal(tmp_path / "j")
        shard = self._shard(tmp_path, "host-1")
        shard.record("a", value=1, worker="host-1")
        shard.record("b", value=2, worker="host-1")
        merged = merge_shards(journal, tmp_path / "shards")
        assert merged == 2
        assert journal.value("a") == 1
        assert journal.value("b") == 2
        # Provenance rides along verbatim.
        assert journal.get("a")["worker"] == "host-1"
        # Durable: a reload sees the merged values too.
        assert Journal(tmp_path / "j").value("b") == 2

    def test_latest_timestamp_wins_across_shards(self, tmp_path):
        journal = Journal(tmp_path / "j")
        self._shard(tmp_path, "w1").record("a", value="old", ts=100.0)
        self._shard(tmp_path, "w2").record("a", value="new", ts=200.0)
        assert merge_shards(journal, tmp_path / "shards") == 1
        assert journal.value("a") == "new"

    def test_newer_main_journal_entry_is_kept(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.record("a", value="mine", ts=300.0)
        self._shard(tmp_path, "w1").record("a", value="stale", ts=100.0)
        assert merge_shards(journal, tmp_path / "shards") == 0
        assert journal.value("a") == "mine"

    def test_leased_and_error_entries_are_not_merged(self, tmp_path):
        journal = Journal(tmp_path / "j")
        shard = self._shard(tmp_path, "w1")
        shard.record("held", status="leased", worker="w1", lease="L0")
        shard.record("bad", status="error", error="boom")
        assert merge_shards(journal, tmp_path / "shards") == 0
        assert journal.get("held") is None
        assert journal.get("bad") is None

    def test_cleanup_unlinks_consumed_shards(self, tmp_path):
        journal = Journal(tmp_path / "j")
        self._shard(tmp_path, "w1").record("a", value=1)
        self._shard(tmp_path, "w2").record("b", value=2)
        merge_shards(journal, tmp_path / "shards")
        assert not list((tmp_path / "shards").glob("shard-*.jsonl"))

    def test_cleanup_false_keeps_shards(self, tmp_path):
        journal = Journal(tmp_path / "j")
        self._shard(tmp_path, "w1").record("a", value=1)
        merge_shards(journal, tmp_path / "shards", cleanup=False)
        assert len(list((tmp_path / "shards").glob("shard-*.jsonl"))) == 1

    def test_torn_shard_tail_heals_like_the_main_journal(self, tmp_path):
        journal = Journal(tmp_path / "j")
        shard = self._shard(tmp_path, "w1")
        shard.record("a", value=1)
        shard.record("b", value=2)
        data = shard.path.read_bytes()
        shard.path.write_bytes(data[:-5])  # worker died mid-write
        assert merge_shards(journal, tmp_path / "shards") == 1
        assert journal.value("a") == 1
        assert not journal.has_value("b")

    def test_missing_shard_dir_is_a_noop(self, tmp_path):
        journal = Journal(tmp_path / "j")
        assert merge_shards(journal, tmp_path / "nowhere") == 0

    def test_shard_path_sanitizes_worker_ids(self, tmp_path):
        path = shard_path(tmp_path, "host/../evil:9")
        assert path.parent == tmp_path
        assert path.name == "shard-host-..-evil-9.jsonl"

    def test_read_shards_overlays_any_status(self, tmp_path):
        shard = self._shard(tmp_path, "w1")
        shard.record("a", status="leased", worker="w1", lease="L3",
                     ts=100.0)
        shard.record("b", value=2, ts=100.0)
        self._shard(tmp_path, "w2").record("a", value=1, ts=200.0)
        view = read_shards(tmp_path / "shards")
        assert view["a"]["status"] == "ok"  # newest event wins
        assert view["b"]["status"] == "ok"
        assert read_shards(tmp_path / "nowhere") == {}
