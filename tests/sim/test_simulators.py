"""Simulator behaviours: statistics, determinism, error handling."""

import pytest

from repro import compile_minic
from repro.errors import SimulationError
from repro.sim.memsys import MemorySystem, PERFECT_MEMORY, REALISTIC_MEMORY

COUNT = """
int a[32];
int f(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i++) a[i] = i;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}
"""


class TestStatistics:
    def test_dynamic_memop_counts_match_oracle(self):
        program = compile_minic(COUNT, "f", opt_level="none")
        oracle = program.run_sequential([16])
        spatial = program.simulate([16])
        assert spatial.loads == oracle.loads
        assert spatial.stores == oracle.stores

    def test_skipped_memops_counted(self):
        source = """
        int g_v;
        int f(int x) { if (x) g_v = 1; return 0; }
        """
        program = compile_minic(source, "f", opt_level="none")
        run = program.simulate([0])
        assert run.stores == 0
        assert run.skipped_memops >= 1

    def test_fire_counts_collected(self):
        program = compile_minic(COUNT, "f", opt_level="none")
        run = program.simulate([4])
        assert run.fired == sum(run.fire_counts.values())
        assert run.fired > 0

    def test_memory_stats_exposed(self):
        program = compile_minic(COUNT, "f", opt_level="none")
        run = program.simulate([16], memsys=MemorySystem(REALISTIC_MEMORY))
        assert run.memory_stats.accesses == run.loads + run.stores


class TestDeterminism:
    def test_identical_runs_identical_cycles(self):
        program = compile_minic(COUNT, "f", opt_level="full")
        first = program.simulate([20], memsys=MemorySystem(REALISTIC_MEMORY))
        second = program.simulate([20], memsys=MemorySystem(REALISTIC_MEMORY))
        assert first.cycles == second.cycles
        assert first.return_value == second.return_value

    def test_recompile_is_deterministic(self):
        a = compile_minic(COUNT, "f", opt_level="full")
        b = compile_minic(COUNT, "f", opt_level="full")
        assert len(a.graph) == len(b.graph)
        assert a.graph.stats() == b.graph.stats()


class TestErrors:
    def test_missing_argument(self):
        program = compile_minic(COUNT, "f", opt_level="none")
        with pytest.raises(SimulationError):
            program.simulate([])

    def test_event_limit_guards_infinite_loops(self):
        source = "int f(void) { while (1) ; return 0; }"
        program = compile_minic(source, "f", opt_level="none")
        with pytest.raises(SimulationError):
            program.simulate([], event_limit=20_000)

    def test_sequential_step_limit(self):
        from repro.cfg.lower import lower_program, LoweredProgram
        from repro.frontend import parse_program
        from repro.sim.sequential import SequentialInterpreter
        lowered = lower_program(parse_program(
            "int f(void) { while (1) ; return 0; }"
        ))
        interp = SequentialInterpreter(lowered, step_limit=10_000)
        with pytest.raises(SimulationError):
            interp.run("f", [])


class TestCycleModel:
    def test_realistic_slower_than_perfect(self):
        program = compile_minic(COUNT, "f", opt_level="none")
        perfect = program.simulate([24], memsys=MemorySystem(PERFECT_MEMORY))
        realistic = program.simulate([24],
                                     memsys=MemorySystem(REALISTIC_MEMORY))
        assert realistic.cycles > perfect.cycles

    def test_spatial_beats_sequential_on_parallel_code(self):
        # Plenty of ILP: spatial execution should finish well ahead of the
        # strictly serialized interpreter's cycle model.
        program = compile_minic(COUNT, "f", opt_level="full")
        spatial = program.simulate([24], memsys=MemorySystem(PERFECT_MEMORY))
        serial = program.run_sequential(
            [24], memsys=MemorySystem(PERFECT_MEMORY))
        assert spatial.cycles < serial.cycles
