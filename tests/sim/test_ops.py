"""Value semantics: wrapping, division, shifts, casts (incl. hypothesis)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.frontend import types as ty
from repro.sim import ops


class TestIntegerArithmetic:
    def test_add_wraps(self):
        assert ops.eval_binop("add", ty.INT, 2**31 - 1, 1) == -(2**31)
        assert ops.eval_binop("add", ty.UCHAR, 255, 1) == 0

    def test_division_truncates(self):
        assert ops.eval_binop("div", ty.INT, -7, 2) == -3
        assert ops.eval_binop("div", ty.INT, 7, -2) == -3
        assert ops.eval_binop("rem", ty.INT, -7, 2) == -1
        assert ops.eval_binop("rem", ty.INT, 7, -2) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(SimulationError):
            ops.eval_binop("div", ty.INT, 1, 0)
        with pytest.raises(SimulationError):
            ops.eval_binop("rem", ty.INT, 1, 0)

    def test_shift_count_masked(self):
        assert ops.eval_binop("shl", ty.INT, 1, 33) == 2
        assert ops.eval_binop("shl", ty.LONG, 1, 65) == 2

    def test_arithmetic_vs_logical_shift(self):
        assert ops.eval_binop("shr", ty.INT, -8, 1) == -4
        assert ops.eval_binop("shr", ty.UINT, ty.UINT.wrap(-8), 1) == \
            (2**32 - 8) >> 1

    def test_comparisons_respect_signedness(self):
        assert ops.eval_binop("lt", ty.INT, -1, 1) == 1
        assert ops.eval_binop("lt", ty.UINT, -1, 1) == 0  # -1 wraps to max

    @given(st.integers(-2**40, 2**40), st.integers(-2**40, 2**40))
    def test_add_matches_mod_arithmetic(self, a, b):
        result = ops.eval_binop("add", ty.INT, a, b)
        assert result == ty.INT.wrap(a + b)

    @given(st.integers(-2**31, 2**31 - 1), st.integers(-2**31, 2**31 - 1))
    def test_div_identity(self, a, b):
        if b == 0:
            return
        q = ops.eval_binop("div", ty.LONG, a, b)
        r = ops.eval_binop("rem", ty.LONG, a, b)
        assert q * b + r == a
        assert abs(r) < abs(b)


class TestUnary:
    def test_neg_wraps(self):
        assert ops.eval_unop("neg", ty.INT, -(2**31)) == -(2**31)

    def test_bnot(self):
        assert ops.eval_unop("bnot", ty.UCHAR, 0) == 255

    def test_lnot(self):
        assert ops.eval_unop("lnot", ty.INT, 0) == 1
        assert ops.eval_unop("lnot", ty.INT, 17) == 0
        assert ops.eval_unop("lnot", ty.DOUBLE, 0.0) == 1


class TestCasts:
    def test_narrowing(self):
        assert ops.eval_cast(0x1FF, ty.INT, ty.UCHAR) == 0xFF
        assert ops.eval_cast(0x80, ty.INT, ty.CHAR) == -128

    def test_float_to_int_truncates(self):
        assert ops.eval_cast(2.9, ty.DOUBLE, ty.INT) == 2
        assert ops.eval_cast(-2.9, ty.DOUBLE, ty.INT) == -2

    def test_nan_inf_to_int_deterministic(self):
        assert ops.eval_cast(math.nan, ty.DOUBLE, ty.INT) == 0
        assert ops.eval_cast(math.inf, ty.DOUBLE, ty.INT) == 0

    def test_int_to_float32_rounds(self):
        exact = ops.eval_cast(16777217, ty.LONG, ty.FLOAT)
        assert exact == 16777216.0  # not representable in binary32

    @given(st.integers(-2**63, 2**63 - 1))
    def test_int_roundtrip_through_wider(self, value):
        widened = ops.eval_cast(ty.INT.wrap(value), ty.INT, ty.LONG)
        back = ops.eval_cast(widened, ty.LONG, ty.INT)
        assert back == ty.INT.wrap(value)


class TestFloats:
    def test_float32_rounding_applied(self):
        result = ops.eval_binop("add", ty.FLOAT, 1.0, 2**-30)
        assert result == 1.0

    def test_double_keeps_precision(self):
        result = ops.eval_binop("add", ty.DOUBLE, 1.0, 2**-30)
        assert result != 1.0

    def test_float_division_by_zero_is_inf(self):
        assert ops.eval_binop("div", ty.DOUBLE, 1.0, 0.0) == math.inf
        assert math.isnan(ops.eval_binop("div", ty.DOUBLE, 0.0, 0.0))


class TestTruthy:
    def test_values(self):
        assert ops.truthy(1) and ops.truthy(-3) and ops.truthy(0.5)
        assert not ops.truthy(0) and not ops.truthy(0.0)
