"""Dataflow execution semantics probed through tiny programs.

These pin the behaviours the §6 structures rely on: controlled loop
merges sequencing activations, predicated-false memory ops forwarding
tokens in order, constant-wire etas firing per activation, and the
credits/demands behaviour of tk(n).
"""

import pytest

from repro import compile_minic
from repro.pegasus import nodes as N


def run_both(source, entry, args, level="none"):
    program = compile_minic(source, entry, opt_level=level)
    oracle = program.run_sequential(list(args))
    spatial = program.simulate(list(args))
    assert spatial.return_value == oracle.return_value
    assert spatial.memory.snapshot() == oracle.memory.snapshot()
    return program, spatial


class TestControlledMerges:
    def test_nested_loop_activations_do_not_interleave(self):
        # The inner loop is re-activated once per outer iteration while the
        # slow memory path lags the fast control path: the regression that
        # motivated deterministic merges.
        source = """
        short a[32];
        long c[4];
        int f(int n) {
            int k; int i; long total = 0;
            for (i = 0; i < n; i++) a[i] = (short)(i * 3 - 7);
            for (k = 0; k <= 3; k++) {
                long sum = 0;
                for (i = k; i < n; i++) sum += (long)a[i] * (long)a[i - k];
                c[k] = sum >> 2;
            }
            for (k = 0; k <= 3; k++) total += c[k];
            return (int)total;
        }
        """
        run_both(source, "f", [16])

    def test_zero_trip_inner_loop(self):
        source = """
        int acc[8];
        int f(int n) {
            int i; int j; int s = 0;
            for (i = 0; i < n; i++) {
                for (j = 0; j < i - 4; j++) s += j;
                acc[i & 7] = s;
            }
            return s;
        }
        """
        run_both(source, "f", [8])

    def test_while_true_with_break(self):
        source = """
        int f(int n) {
            int i = 0;
            while (1) {
                if (i >= n) break;
                i += 2;
            }
            return i;
        }
        """
        run_both(source, "f", [9])
        run_both(source, "f", [0])


class TestControlStreams:
    def test_multi_hyperblock_loop_body(self):
        # Back edge originates in a later hyperblock than the header: the
        # control stream construction (ControlStreamNode) is exercised.
        source = """
        int data[16];
        int f(int n) {
            int i = 0; int s = 0;
            while (i < n) {
                int j;
                for (j = 0; j < 3; j++) data[(i + j) & 15] += 1;
                s += data[i & 15];
                i++;
            }
            return s;
        }
        """
        program, _ = run_both(source, "f", [10])
        streams = program.graph.by_kind(N.ControlStreamNode)
        assert streams, "multi-hb loop body must use a control stream"

    def test_early_return_from_loop(self):
        source = """
        int t[8];
        int f(int key, int n) {
            int i;
            for (i = 0; i < n; i++) t[i] = i * i;
            for (i = 0; i < n; i++) {
                if (t[i] == key) return i;
            }
            return -1;
        }
        """
        run_both(source, "f", [16, 8])
        run_both(source, "f", [999, 8])


class TestPredicatedMemops:
    def test_skipped_ops_keep_order(self):
        # A mix of taken and skipped stores through one operator: tokens
        # must come out in issue order (the jpeg regression).
        source = """
        int a[64];
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) {
                if (i & 1) a[i] = i;
            }
            return a[n - 1] + a[n - 2];
        }
        """
        run_both(source, "f", [32])

    def test_speculated_division_no_trap(self):
        source = """
        int f(int n, int d) {
            if (d) return n / d;
            return -1;
        }
        """
        run_both(source, "f", [10, 0])
        run_both(source, "f", [10, 3])


class TestConstantEtas:
    def test_constant_result_from_conditional_region(self):
        # The h2 'return -1' regression: a constant flows out of a
        # conditionally-activated hyperblock.
        source = """
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) {
                if (i == 5) return 100;
            }
            return -1;
        }
        """
        run_both(source, "f", [3])
        run_both(source, "f", [8])

    def test_constant_loop_result(self):
        source = """
        int g_v;
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) g_v = i;
            return 7;
        }
        """
        run_both(source, "f", [5])
        run_both(source, "f", [0])


class TestTokenGenerator:
    def test_multiple_activations_of_decoupled_loop(self):
        # tk(n) must carry correct credits across loop re-activations.
        source = """
        int a[128];
        int f(int rounds, int n) {
            int r; int i; int s = 0;
            for (r = 0; r < rounds; r++) {
                for (i = 0; i < n; i++) a[i] = a[i + 2] + 1;
                s += a[0];
            }
            return s;
        }
        """
        program = compile_minic(source, "f", opt_level="full")
        oracle = program.run_sequential([4, 40])
        spatial = program.simulate([4, 40])
        assert spatial.return_value == oracle.return_value
        assert spatial.memory.snapshot() == oracle.memory.snapshot()
        assert program.graph.by_kind(N.TokenGenNode), "tk(2) expected"
