"""Memory-system timing model (§7.3 configuration)."""

from repro.sim.memsys import (
    MemoryConfig,
    MemorySystem,
    PERFECT_MEMORY,
    REALISTIC_MEMORY,
)


class TestPerfect:
    def test_constant_latency(self):
        system = MemorySystem(PERFECT_MEMORY)
        for now in (0, 5, 100):
            start, done = system.issue(now, 0x2000, 4, is_write=False)
            assert start == now
            assert done == now + PERFECT_MEMORY.perfect_latency

    def test_no_port_contention(self):
        system = MemorySystem(PERFECT_MEMORY)
        dones = [system.issue(0, 0x2000 + i, 4, False)[1] for i in range(16)]
        assert len(set(dones)) == 1


class TestHierarchy:
    def test_cold_miss_pays_full_path(self):
        system = MemorySystem(REALISTIC_MEMORY)
        _, done = system.issue(0, 0x2000, 4, is_write=False)
        config = REALISTIC_MEMORY
        minimum = config.l1_hit + config.l2_hit + config.mem_latency
        assert done >= minimum

    def test_hit_after_fill_is_fast(self):
        system = MemorySystem(REALISTIC_MEMORY)
        _, first = system.issue(0, 0x2000, 4, is_write=False)
        start, second = system.issue(first, 0x2000, 4, is_write=False)
        assert second - start <= REALISTIC_MEMORY.l1_hit + REALISTIC_MEMORY.tlb_miss

    def test_same_line_hits(self):
        system = MemorySystem(REALISTIC_MEMORY)
        _, first = system.issue(0, 0x2000, 4, is_write=False)
        start, second = system.issue(first, 0x2004, 4, is_write=False)
        assert (second - start) <= REALISTIC_MEMORY.l1_hit

    def test_tlb_miss_cost(self):
        system = MemorySystem(REALISTIC_MEMORY)
        system.issue(0, 0x2000, 4, False)
        baseline = system.stats.tlb_misses
        system.issue(1000, 0x2000 + 65 * 4096, 4, False)
        assert system.stats.tlb_misses == baseline + 1

    def test_l1_capacity_eviction(self):
        system = MemorySystem(REALISTIC_MEMORY)
        config = REALISTIC_MEMORY
        lines = config.l1_size // config.l1_line
        # Touch 3x the L1 capacity within one page set, then re-touch the
        # first line: it must have been evicted from L1 (L2 or memory).
        now = 0
        for i in range(3 * lines):
            _, now = system.issue(now, 0x2000 + i * config.l1_line, 4, False)
        before_l1 = system.stats.l1_hits
        system.issue(now, 0x2000, 4, False)
        assert system.stats.l1_hits == before_l1

    def test_port_contention_serializes(self):
        config = REALISTIC_MEMORY.with_ports(1)
        system = MemorySystem(config)
        starts = [system.issue(0, 0x2000 + i * 4, 4, False)[0]
                  for i in range(4)]
        assert starts == [0, 1, 2, 3]

    def test_more_ports_more_throughput(self):
        two = MemorySystem(REALISTIC_MEMORY.with_ports(2))
        starts = [two.issue(0, 0x2000 + i * 4, 4, False)[0] for i in range(4)]
        assert starts == [0, 0, 1, 1]

    def test_lsq_occupancy_limits_inflight(self):
        config = MemoryConfig(name="tiny", lsq_entries=2, lsq_ports=4)
        system = MemorySystem(config)
        # Fill the LSQ with two slow misses, the third must start later.
        system.issue(0, 0x2000, 4, False)
        system.issue(0, 0x9000, 4, False)
        start, _ = system.issue(0, 0x11000, 4, False)
        assert start > 0

    def test_reset_restores_cold_state(self):
        system = MemorySystem(REALISTIC_MEMORY)
        system.issue(0, 0x2000, 4, False)
        system.reset()
        assert system.stats.accesses == 0
        _, done = system.issue(0, 0x2000, 4, False)
        assert done >= REALISTIC_MEMORY.mem_latency


class TestConfig:
    def test_with_ports_renames(self):
        config = REALISTIC_MEMORY.with_ports(4)
        assert config.lsq_ports == 4
        assert "4port" in config.name
