"""Sequential-oracle specifics: statistics, recursion, call handling."""

import pytest

from repro.errors import SimulationError
from repro.frontend import parse_program
from repro.cfg.lower import lower_program
from repro.sim.memsys import MemorySystem, REALISTIC_MEMORY
from repro.sim.sequential import SequentialInterpreter


def interp(source: str, **kwargs) -> SequentialInterpreter:
    return SequentialInterpreter(lower_program(parse_program(source)),
                                 **kwargs)


class TestCalls:
    def test_recursion(self):
        result = interp(
            "int fib(int n) { if (n < 2) return n; "
            "return fib(n-1) + fib(n-2); }"
        ).run("fib", [12])
        assert result.return_value == 144

    def test_mutual_recursion(self):
        source = """
        int odd(int n);
        int even(int n) { if (n == 0) return 1; return odd(n - 1); }
        int odd(int n) { if (n == 0) return 0; return even(n - 1); }
        """
        assert interp(source).run("even", [10]).return_value == 1
        assert interp(source).run("even", [7]).return_value == 0

    def test_per_function_instruction_attribution(self):
        source = """
        int helper(int x) { return x * 2; }
        int f(int n) { int i; int s = 0;
            for (i = 0; i < n; i++) s += helper(i);
            return s; }
        """
        result = interp(source).run("f", [10])
        assert result.per_function.get("helper", 0) > 0
        assert result.per_function.get("f", 0) > 0

    def test_wrong_arity_rejected(self):
        with pytest.raises(SimulationError):
            interp("int f(int a) { return a; }").run("f", [])

    def test_call_to_prototype_only_rejected(self):
        source = "int g(int); int f(void) { return g(1); }"
        with pytest.raises(SimulationError):
            interp(source).run("f", [])


class TestStatistics:
    SOURCE = """
    int a[16];
    int f(int n) {
        int i; int s = 0;
        for (i = 0; i < n; i++) a[i] = i;
        for (i = 0; i < n; i++) s += a[i];
        return s;
    }
    """

    def test_load_store_counts(self):
        result = interp(self.SOURCE).run("f", [8])
        assert result.stores == 8
        assert result.loads == 8
        assert result.memory_operations == 16

    def test_branch_count_scales_with_iterations(self):
        small = interp(self.SOURCE).run("f", [2])
        large = interp(self.SOURCE).run("f", [12])
        assert large.branches > small.branches

    def test_cycles_depend_on_memory_system(self):
        fast = interp(self.SOURCE).run("f", [16])
        slow = interp(self.SOURCE,
                      memsys=MemorySystem(REALISTIC_MEMORY)).run("f", [16])
        assert slow.cycles > fast.cycles

    def test_addr_of_helper(self):
        from repro.frontend import types as ty
        source = "int table[4]; int f(int *p) { return p[2]; }"
        engine = interp(source)
        addr = engine.addr_of("table")
        engine.memory.write(addr + 8, 55, ty.INT)
        assert engine.run("f", [addr]).return_value == 55

    def test_addr_of_unknown_global(self):
        with pytest.raises(SimulationError):
            interp("int f(void) { return 0; }").addr_of("nope")
