"""Execution tracing tool."""

from repro import compile_minic
from repro.sim.dataflow import DataflowSimulator
from repro.sim.trace import TraceRecorder, busiest_nodes, render_timeline

SOURCE = """
int a[32];
int f(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 3; s += a[i]; }
    return s;
}
"""


def traced_run(args, level="none"):
    program = compile_minic(SOURCE, "f", opt_level=level)
    simulator = DataflowSimulator(program.graph, memory=program.new_memory())
    recorder = TraceRecorder.attach(simulator)
    result = simulator.run(list(args))
    return program, recorder, result


class TestRecorder:
    def test_events_collected(self):
        _, recorder, result = traced_run([8])
        assert recorder.events
        assert len(recorder.events) >= result.fired

    def test_span_covers_run(self):
        _, recorder, result = traced_run([8])
        start, end = recorder.span
        assert start == 0
        assert end <= result.cycles

    def test_attach_does_not_change_results(self):
        program = compile_minic(SOURCE, "f")
        plain = program.simulate([10])
        _, _, traced = traced_run([10], level="full")
        assert plain.return_value == traced.return_value

    def test_empty_recorder_span(self):
        recorder = TraceRecorder()
        assert recorder.span == (0, 0)

    def test_same_cycle_refire_is_not_dropped(self):
        # Regression: the old recorder deduplicated against the previous
        # event, silently dropping a second firing of the same node in
        # the same cycle (a pipelined operator draining two queued
        # values). The probe bus delivers one event per firing.
        class Node:
            id = 7

        recorder = TraceRecorder()
        recorder.on_fire(Node(), 5)
        recorder.on_fire(Node(), 5)
        assert recorder.events == [(7, 5), (7, 5)]
        assert recorder.counts() == {7: 2}

    def test_counts_share_the_simulator_counter(self):
        # One probe-backed counter: the recorder's counts and the
        # result's fire_counts are the same bookkeeping, not parallel
        # re-derivations that could drift.
        _, recorder, result = traced_run([8])
        assert recorder.counts() == result.fire_counts
        derived: dict[int, int] = {}
        for node_id, _time in recorder.events:
            derived[node_id] = derived.get(node_id, 0) + 1
        assert derived == result.fire_counts


class TestReports:
    def test_busiest_nodes_ranked(self):
        program, recorder, _ = traced_run([12])
        ranked = busiest_nodes(recorder, program.graph, top=5)
        assert len(ranked) == 5
        counts = [count for _, count in ranked]
        assert counts == sorted(counts, reverse=True)
        # Loop plumbing fires once per iteration: the busiest node fires at
        # least n times.
        assert counts[0] >= 12

    def test_timeline_renders(self):
        program, recorder, _ = traced_run([12])
        text = render_timeline(recorder, program.graph, width=40, top=6)
        lines = text.splitlines()
        assert lines[0].startswith("timeline:")
        assert len(lines) == 7
        assert all("|" in line for line in lines[1:])

    def test_timeline_empty(self):
        recorder = TraceRecorder()
        program = compile_minic(SOURCE, "f")
        assert render_timeline(recorder, program.graph) == "(no events)"
