"""Memory image: layout, typed access, faults."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault
from repro.frontend import ast
from repro.frontend import types as ty
from repro.sim.memory_image import MemoryImage, NULL_GUARD


def array_symbol(name="a", element=ty.INT, length=8, init=None):
    return ast.Symbol(name=name, type=ty.ArrayType(element, length),
                      kind="global", init_values=init)


class TestLayout:
    def test_alignment(self):
        image = MemoryImage()
        a = image.allocate(array_symbol("a", ty.CHAR, 3))
        b = image.allocate(array_symbol("b", ty.LONG, 2))
        assert a % 8 == 0 and b % 8 == 0
        assert b >= a + 3

    def test_idempotent_allocation(self):
        image = MemoryImage()
        symbol = array_symbol()
        assert image.allocate(symbol) == image.allocate(symbol)

    def test_extern_array_gets_default_extent(self):
        image = MemoryImage(extern_elements=64)
        symbol = array_symbol("ext", ty.INT, None)
        base = image.allocate(symbol)
        image.write(base + 63 * 4, 7, ty.INT)
        with pytest.raises(MemoryFault):
            image.write(base + 64 * 4, 7, ty.INT)

    def test_initializers_applied(self):
        image = MemoryImage()
        symbol = array_symbol(init=[5, -6, 7])
        base = image.allocate(symbol)
        assert image.read(base, ty.INT) == 5
        assert image.read(base + 4, ty.INT) == -6

    def test_addr_of_unallocated_faults(self):
        image = MemoryImage()
        with pytest.raises(MemoryFault):
            image.addr_of(array_symbol())


class TestAccess:
    def test_null_guard(self):
        image = MemoryImage([array_symbol()])
        with pytest.raises(MemoryFault):
            image.read(0, ty.INT)
        with pytest.raises(MemoryFault):
            image.read(NULL_GUARD - 4, ty.INT)

    def test_out_of_range(self):
        image = MemoryImage()
        base = image.allocate(array_symbol(length=2))
        with pytest.raises(MemoryFault):
            image.read(base + 8, ty.INT)

    def test_signed_roundtrip(self):
        image = MemoryImage()
        base = image.allocate(array_symbol(element=ty.SHORT))
        image.write(base, -12345, ty.SHORT)
        assert image.read(base, ty.SHORT) == -12345

    def test_unsigned_roundtrip(self):
        image = MemoryImage()
        base = image.allocate(array_symbol(element=ty.UINT))
        image.write(base, 2**32 - 1, ty.UINT)
        assert image.read(base, ty.UINT) == 2**32 - 1

    def test_narrow_write_truncates(self):
        image = MemoryImage()
        base = image.allocate(array_symbol(element=ty.UCHAR))
        image.write(base, 0x1234, ty.UCHAR)
        assert image.read(base, ty.UCHAR) == 0x34

    def test_little_endian_overlap(self):
        image = MemoryImage()
        base = image.allocate(array_symbol(element=ty.INT, length=1))
        image.write(base, 0x04030201, ty.INT)
        assert image.read(base, ty.UCHAR) == 0x01
        assert image.read(base + 1, ty.UCHAR) == 0x02

    def test_float_roundtrip(self):
        image = MemoryImage()
        base = image.allocate(array_symbol(element=ty.DOUBLE))
        image.write(base, 3.25, ty.DOUBLE)
        assert image.read(base, ty.DOUBLE) == 3.25

    def test_float32_rounds_on_store(self):
        image = MemoryImage()
        base = image.allocate(array_symbol(element=ty.FLOAT))
        image.write(base, 1 + 2**-30, ty.FLOAT)
        assert image.read(base, ty.FLOAT) == 1.0

    @given(st.integers(-2**31, 2**31 - 1))
    def test_int_roundtrip_property(self, value):
        image = MemoryImage()
        base = image.allocate(array_symbol())
        image.write(base, value, ty.INT)
        assert image.read(base, ty.INT) == value


class TestFaultDiagnostics:
    """MemoryFault carries the address and a reason a human can act on."""

    def test_addr_of_unallocated_names_the_object(self):
        image = MemoryImage()
        with pytest.raises(MemoryFault) as info:
            image.addr_of(array_symbol("frame_buf"))
        assert "'frame_buf'" in str(info.value)
        assert "never allocated" in str(info.value)
        assert info.value.address is None

    def test_null_dereference_reports_address_in_hex(self):
        image = MemoryImage([array_symbol()])
        with pytest.raises(MemoryFault) as info:
            image.read(0x10, ty.INT)
        assert info.value.address == 0x10
        assert "null or near-null dereference" in str(info.value)
        assert "(address 0x10)" in str(info.value)

    def test_near_null_guard_band(self):
        image = MemoryImage([array_symbol()])
        with pytest.raises(MemoryFault) as info:
            image.write(NULL_GUARD - 1, 1, ty.CHAR)
        assert info.value.address == NULL_GUARD - 1

    def test_out_of_bounds_reports_faulting_address(self):
        image = MemoryImage()
        base = image.allocate(array_symbol(length=2))
        bad = base + 1024
        with pytest.raises(MemoryFault) as info:
            image.read(bad, ty.INT)
        assert info.value.address == bad
        assert "beyond allocated memory" in str(info.value)
        assert f"(address {bad:#x})" in str(info.value)

    def test_straddling_read_at_the_top_faults(self):
        # The access starts in bounds but its width crosses the top.
        image = MemoryImage()
        base = image.allocate(array_symbol(element=ty.CHAR, length=10))
        with pytest.raises(MemoryFault):
            image.read(base + 8, ty.INT)
        assert image.read(base + 8, ty.CHAR) is not None

    def test_negative_address_wraps_to_unsigned(self):
        # Hardware addresses are unsigned: -8 is a huge out-of-range
        # address, not an index below the heap.
        image = MemoryImage([array_symbol()])
        with pytest.raises(MemoryFault) as info:
            image.read(-8, ty.INT)
        assert info.value.address == 2**64 - 8

    def test_fault_without_address_has_no_suffix(self):
        fault = MemoryFault("bad access")
        assert str(fault) == "bad access"
        assert fault.address is None


class TestHelpers:
    def test_array_helpers(self):
        image = MemoryImage()
        symbol = array_symbol(length=4)
        image.allocate(symbol)
        image.write_array(symbol, [1, 2, 3, 4])
        assert image.read_array(symbol) == [1, 2, 3, 4]

    def test_snapshot_equality(self):
        first = MemoryImage()
        second = MemoryImage()
        symbol = array_symbol(init=[9, 9])
        for image in (first, second):
            image.allocate(array_symbol("other"))
        assert first.snapshot() == second.snapshot()
