"""Compiled engine vs reference interpreter: the equivalence matrix.

The interpreter (:class:`~repro.sim.dataflow.DataflowSimulator`) is the
executable specification of dataflow semantics; the compiled engine
(:class:`~repro.sim.engine.CompiledEngine`) must reproduce it
bit-for-bit — same cycles, same per-node fire counts, same memory
hierarchy statistics, same final memory image, same errors — across
optimization levels, memory systems, probes, fault plans, deadlocks and
event-limit overruns. Determinism is asserted separately: the same
(plan, seed, config) twice must give the same answer on both executors.
"""

from __future__ import annotations

import pytest

from repro import compile_minic
from repro.api import SIM_ENGINES, resolve_engine
from repro.errors import DeadlockError, EventLimitError
from repro.harness.cache import compiled
from repro.harness.section2 import SECTION2_SOURCE
from repro.programs import get_kernel
from repro.resilience.faults import SHAKE_EVERYTHING
from repro.sim.dataflow import DataflowSimulator
from repro.sim.engine import CompiledEngine
from repro.sim.memsys import PERFECT_MEMORY, REALISTIC_2PORT
from repro.sim.plan import plan_for

from tests.resilience.fixtures import cyclic_wait_graph, starved_chain_graph

SECTION2_DRIVER = SECTION2_SOURCE + """
unsigned buffer[8];
unsigned value = 5;
unsigned drive(int i, int use_p)
{
    int k;
    for (k = 0; k < 8; k++) buffer[k] = k + 1;
    f(use_p ? &value : (unsigned*)0, buffer, i);
    return buffer[i];
}
"""

KERNELS = ("adpcm_e", "li", "mesa", "vortex")
SYSTEMS = (PERFECT_MEMORY, REALISTIC_2PORT)

#: The observable DataflowResult surface (memory images compared on top).
FIELDS = ("return_value", "cycles", "fired", "loads", "stores",
          "skipped_memops", "fire_counts", "memory_stats")


def observe(result) -> dict:
    seen = {field: getattr(result, field) for field in FIELDS}
    seen["memory"] = result.memory.snapshot()
    return seen


def run_both(program, args, **kwargs) -> tuple:
    interp = program.simulate(list(args), engine="interp", **kwargs)
    engine = program.simulate(list(args), engine="compiled", **kwargs)
    return interp, engine


def assert_equivalent(program, args, **kwargs) -> tuple:
    interp, engine = run_both(program, args, **kwargs)
    assert observe(engine) == observe(interp)
    return interp, engine


class TestEngineSelection:
    def test_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert resolve_engine(None) == "compiled"

    def test_env_var_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "interp")
        assert resolve_engine(None) == "interp"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "interp")
        assert resolve_engine("compiled") == "compiled"

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            resolve_engine("jit")
        assert set(SIM_ENGINES) == {"compiled", "interp"}

    def test_simulate_rejects_invalid_engine(self):
        program = compile_minic("int f(int a) { return a; }", "f",
                                opt_level="none")
        with pytest.raises(ValueError, match="engine"):
            program.simulate([1], engine="jit")


class TestSection2Equivalence:
    @pytest.mark.parametrize("level", ["none", "medium", "full"])
    @pytest.mark.parametrize("use_p", [1, 0])
    def test_driver_matches_interpreter(self, level, use_p):
        program = compile_minic(SECTION2_DRIVER, "drive", opt_level=level)
        assert_equivalent(program, [3, use_p])

    def test_realistic_memory_matches(self):
        program = compile_minic(SECTION2_DRIVER, "drive", opt_level="full")
        assert_equivalent(program, [3, 1],
                          memsys=REALISTIC_2PORT)


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", KERNELS)
    @pytest.mark.parametrize("level", ["none", "full"])
    def test_kernel_matches_interpreter(self, name, level):
        kernel = get_kernel(name)
        program = compiled(name, level).program
        for config in SYSTEMS:
            interp, _ = assert_equivalent(program, kernel.args,
                                          memsys=config)
            kernel.check(interp.return_value)

    def test_with_probes_attached(self):
        # Probes force the engine off its fast path; the profile built
        # over the probe stream must match too (same event order).
        kernel = get_kernel("li")
        program = compiled("li", "full").program
        interp, engine = assert_equivalent(
            program, kernel.args, memsys=REALISTIC_2PORT,
            profile=True)
        assert dict(engine.profile.critical_path.by_category) \
            == dict(interp.profile.critical_path.by_category)

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_under_fault_injection(self, seed):
        # Same plan seed => same perturbation draws => same trajectory.
        kernel = get_kernel("li")
        program = compiled("li", "full").program
        interp, engine = assert_equivalent(
            program, kernel.args, memsys=REALISTIC_2PORT,
            faults=SHAKE_EVERYTHING.with_seed(seed))
        assert engine.cycles == interp.cycles


class TestErrorParity:
    @pytest.mark.parametrize("fixture", [starved_chain_graph,
                                         cyclic_wait_graph])
    def test_deadlock_reports_match(self, fixture):
        graph, _ = fixture()
        with pytest.raises(DeadlockError) as interp_info:
            DataflowSimulator(graph).run([])
        with pytest.raises(DeadlockError) as engine_info:
            CompiledEngine(graph).run([])
        interp_report = interp_info.value.report
        engine_report = engine_info.value.report
        assert engine_info.value.cycle == interp_info.value.cycle
        assert engine_report.graph_name == interp_report.graph_name
        assert [(entry.node_id, [m.slot for m in entry.missing])
                for entry in engine_report.blocked] \
            == [(entry.node_id, [m.slot for m in entry.missing])
                for entry in interp_report.blocked]

    def test_event_limit_overrun_matches(self):
        kernel = get_kernel("li")
        program = compiled("li", "full").program

        def overrun(engine):
            with pytest.raises(EventLimitError) as info:
                program.simulate(list(kernel.args), event_limit=500,
                                 engine=engine)
            return info.value

        interp, engine = overrun("interp"), overrun("compiled")
        assert engine.cycle == interp.cycle
        assert engine.event_limit == interp.event_limit
        assert engine.hot_nodes == interp.hot_nodes

    def test_engine_accepts_prebuilt_plan(self):
        graph, _ = starved_chain_graph()
        plan = plan_for(graph)
        assert plan_for(graph) is plan  # cached per graph version
        with pytest.raises(DeadlockError):
            CompiledEngine(plan).run([])


class TestDeterminism:
    """Same program, same seed/config, run twice: bit-identical."""

    DETERMINISM_FIELDS = ("return_value", "cycles", "fire_counts",
                          "memory_stats")

    def _twice(self, program, args, engine, **kwargs):
        runs = [program.simulate(list(args), engine=engine, **kwargs)
                for _ in range(2)]
        first, second = ({field: getattr(run, field)
                          for field in self.DETERMINISM_FIELDS}
                         for run in runs)
        assert second == first, f"{engine} run is not deterministic"
        return runs[0]

    @pytest.mark.parametrize("engine", SIM_ENGINES)
    def test_section2_driver(self, engine):
        program = compile_minic(SECTION2_DRIVER, "drive", opt_level="full")
        self._twice(program, [3, 1], engine)

    @pytest.mark.parametrize("engine", SIM_ENGINES)
    @pytest.mark.parametrize("name", KERNELS)
    def test_fig19_kernels(self, engine, name):
        kernel = get_kernel(name)
        program = compiled(name, "full").program
        run = self._twice(program, kernel.args, engine,
                          memsys=REALISTIC_2PORT)
        kernel.check(run.return_value)

    @pytest.mark.parametrize("engine", SIM_ENGINES)
    def test_seeded_faults_are_reproducible(self, engine):
        kernel = get_kernel("li")
        program = compiled("li", "full").program
        self._twice(program, kernel.args, engine,
                    faults=SHAKE_EVERYTHING.with_seed(7))
