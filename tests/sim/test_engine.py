"""Compiled engines vs reference interpreter: the equivalence matrix.

The interpreter (:class:`~repro.sim.dataflow.DataflowSimulator`) is the
executable specification of dataflow semantics; the compiled engine
(:class:`~repro.sim.engine.CompiledEngine`) and the code generator
(:class:`~repro.sim.codegen.CodegenEngine`) must reproduce it
bit-for-bit — same cycles, same per-node fire counts, same memory
hierarchy statistics, same final memory image, same errors — across
optimization levels, memory systems, probes, fault plans, deadlocks and
event-limit overruns. Determinism is asserted separately: the same
(plan, seed, config) twice must give the same answer on every executor.
"""

from __future__ import annotations

import pytest

from repro import compile_minic
from repro.api import SIM_ENGINES, resolve_engine
from repro.errors import DeadlockError, EventLimitError
from repro.harness.cache import compiled
from repro.harness.section2 import SECTION2_SOURCE
from repro.programs import get_kernel
from repro.resilience.faults import SHAKE_EVERYTHING
from repro.sim import codegen as codegen_mod
from repro.sim import plan as plan_mod
from repro.sim.codegen import CodegenEngine
from repro.sim.dataflow import DataflowSimulator
from repro.sim.engine import CompiledEngine
from repro.sim.memsys import PERFECT_MEMORY, REALISTIC_2PORT
from repro.sim.plan import plan_for

from tests.resilience.fixtures import cyclic_wait_graph, starved_chain_graph

SECTION2_DRIVER = SECTION2_SOURCE + """
unsigned buffer[8];
unsigned value = 5;
unsigned drive(int i, int use_p)
{
    int k;
    for (k = 0; k < 8; k++) buffer[k] = k + 1;
    f(use_p ? &value : (unsigned*)0, buffer, i);
    return buffer[i];
}
"""

KERNELS = ("adpcm_e", "li", "mesa", "vortex")
SYSTEMS = (PERFECT_MEMORY, REALISTIC_2PORT)

#: The engines under test, each held to the interpreter bit-for-bit.
ENGINES = ("compiled", "codegen")

#: The observable DataflowResult surface (memory images compared on top).
FIELDS = ("return_value", "cycles", "fired", "loads", "stores",
          "skipped_memops", "fire_counts", "memory_stats")


def observe(result) -> dict:
    seen = {field: getattr(result, field) for field in FIELDS}
    seen["memory"] = result.memory.snapshot()
    return seen


def run_both(program, args, engine="compiled", **kwargs) -> tuple:
    interp = program.simulate(list(args), engine="interp", **kwargs)
    run = program.simulate(list(args), engine=engine, **kwargs)
    return interp, run


def assert_equivalent(program, args, **kwargs) -> tuple:
    """Every compiled engine against one interpreter reference run."""
    interp = program.simulate(list(args), engine="interp", **kwargs)
    want = observe(interp)
    last = interp
    for engine in ENGINES:
        last = program.simulate(list(args), engine=engine, **kwargs)
        assert observe(last) == want, f"{engine} diverged from interp"
    return interp, last


class TestEngineSelection:
    def test_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert resolve_engine(None) == "compiled"

    def test_env_var_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "interp")
        assert resolve_engine(None) == "interp"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "interp")
        assert resolve_engine("compiled") == "compiled"

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            resolve_engine("jit")
        assert set(SIM_ENGINES) == {"compiled", "codegen", "interp"}

    def test_simulate_rejects_invalid_engine(self):
        program = compile_minic("int f(int a) { return a; }", "f",
                                opt_level="none")
        with pytest.raises(ValueError, match="engine"):
            program.simulate([1], engine="jit")


class TestSection2Equivalence:
    @pytest.mark.parametrize("level", ["none", "medium", "full"])
    @pytest.mark.parametrize("use_p", [1, 0])
    def test_driver_matches_interpreter(self, level, use_p):
        program = compile_minic(SECTION2_DRIVER, "drive", opt_level=level)
        assert_equivalent(program, [3, use_p])

    def test_realistic_memory_matches(self):
        program = compile_minic(SECTION2_DRIVER, "drive", opt_level="full")
        assert_equivalent(program, [3, 1],
                          memsys=REALISTIC_2PORT)


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", KERNELS)
    @pytest.mark.parametrize("level", ["none", "full"])
    def test_kernel_matches_interpreter(self, name, level):
        kernel = get_kernel(name)
        program = compiled(name, level).program
        for config in SYSTEMS:
            interp, _ = assert_equivalent(program, kernel.args,
                                          memsys=config)
            kernel.check(interp.return_value)

    def test_with_probes_attached(self):
        # Probes force the engine off its fast path; the profile built
        # over the probe stream must match too (same event order).
        kernel = get_kernel("li")
        program = compiled("li", "full").program
        interp, engine = assert_equivalent(
            program, kernel.args, memsys=REALISTIC_2PORT,
            profile=True)
        assert dict(engine.profile.critical_path.by_category) \
            == dict(interp.profile.critical_path.by_category)

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_under_fault_injection(self, seed):
        # Same plan seed => same perturbation draws => same trajectory,
        # on every engine (codegen delegates to the instrumented path).
        kernel = get_kernel("li")
        program = compiled("li", "full").program
        interp, engine = assert_equivalent(
            program, kernel.args, memsys=REALISTIC_2PORT,
            faults=SHAKE_EVERYTHING.with_seed(seed))
        assert engine.cycles == interp.cycles

    @pytest.mark.parametrize("name", KERNELS)
    def test_fault_trajectories_all_kernels(self, name):
        # One seed across the whole kernel set: seeded fault draws are a
        # function of the plan, so every executor walks one trajectory.
        kernel = get_kernel(name)
        program = compiled(name, "full").program
        assert_equivalent(program, kernel.args, memsys=REALISTIC_2PORT,
                          faults=SHAKE_EVERYTHING.with_seed(7))


class TestErrorParity:
    @pytest.mark.parametrize("executor", [CompiledEngine, CodegenEngine])
    @pytest.mark.parametrize("fixture", [starved_chain_graph,
                                         cyclic_wait_graph])
    def test_deadlock_reports_match(self, fixture, executor):
        graph, _ = fixture()
        with pytest.raises(DeadlockError) as interp_info:
            DataflowSimulator(graph).run([])
        with pytest.raises(DeadlockError) as engine_info:
            executor(graph).run([])
        interp_report = interp_info.value.report
        engine_report = engine_info.value.report
        assert engine_info.value.cycle == interp_info.value.cycle
        assert engine_report.graph_name == interp_report.graph_name
        assert [(entry.node_id, [m.slot for m in entry.missing])
                for entry in engine_report.blocked] \
            == [(entry.node_id, [m.slot for m in entry.missing])
                for entry in interp_report.blocked]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_event_limit_overrun_matches(self, engine):
        kernel = get_kernel("li")
        program = compiled("li", "full").program

        def overrun(engine):
            with pytest.raises(EventLimitError) as info:
                program.simulate(list(kernel.args), event_limit=500,
                                 engine=engine)
            return info.value

        interp, got = overrun("interp"), overrun(engine)
        assert got.cycle == interp.cycle
        assert got.event_limit == interp.event_limit
        assert got.hot_nodes == interp.hot_nodes

    def test_engine_accepts_prebuilt_plan(self):
        graph, _ = starved_chain_graph()
        plan = plan_for(graph)
        assert plan_for(graph) is plan  # cached per graph version
        with pytest.raises(DeadlockError):
            CompiledEngine(plan).run([])


class TestDeterminism:
    """Same program, same seed/config, run twice: bit-identical."""

    DETERMINISM_FIELDS = ("return_value", "cycles", "fire_counts",
                          "memory_stats")

    def _twice(self, program, args, engine, **kwargs):
        runs = [program.simulate(list(args), engine=engine, **kwargs)
                for _ in range(2)]
        first, second = ({field: getattr(run, field)
                          for field in self.DETERMINISM_FIELDS}
                         for run in runs)
        assert second == first, f"{engine} run is not deterministic"
        return runs[0]

    @pytest.mark.parametrize("engine", SIM_ENGINES)
    def test_section2_driver(self, engine):
        program = compile_minic(SECTION2_DRIVER, "drive", opt_level="full")
        self._twice(program, [3, 1], engine)

    @pytest.mark.parametrize("engine", SIM_ENGINES)
    @pytest.mark.parametrize("name", KERNELS)
    def test_fig19_kernels(self, engine, name):
        kernel = get_kernel(name)
        program = compiled(name, "full").program
        run = self._twice(program, kernel.args, engine,
                          memsys=REALISTIC_2PORT)
        kernel.check(run.return_value)

    @pytest.mark.parametrize("engine", SIM_ENGINES)
    def test_seeded_faults_are_reproducible(self, engine):
        kernel = get_kernel("li")
        program = compiled("li", "full").program
        self._twice(program, kernel.args, engine,
                    faults=SHAKE_EVERYTHING.with_seed(7))


SMALL_SOURCE = """
int acc[16];
int small(int n)
{
    int i; int s = 0;
    for (i = 0; i < n; i++) { acc[i] = i + 3; s = s + acc[i]; }
    return s;
}
"""


class TestCodegenLifecycle:
    """Generated-module caching, invalidation, and the fallback rule."""

    def test_module_cached_per_plan(self):
        program = compile_minic(SMALL_SOURCE, "small", opt_level="none")
        plan = program.sim_plan()
        before = codegen_mod.GENERATION_COUNT
        first = program.simulate([4], engine="codegen")
        assert codegen_mod.GENERATION_COUNT == before + 1
        second = program.simulate([4], engine="codegen")
        # Same plan, same module: no re-generation.
        assert codegen_mod.GENERATION_COUNT == before + 1
        assert program.sim_plan() is plan
        assert observe(second) == observe(first)

    def test_version_bump_regenerates(self):
        program = compile_minic(SMALL_SOURCE, "small", opt_level="none")
        graph = program.graph
        reference = program.simulate([4], engine="codegen")
        stale = program.sim_plan()
        count = codegen_mod.GENERATION_COUNT
        # A pass mutating the graph behind the cache's back bumps the
        # structural version; the stale plan (and the generated module
        # hanging off it) must be invalidated and rebuilt.
        graph.version += 1
        fresh_plan = program.sim_plan()
        assert fresh_plan is not stale
        rerun = program.simulate([4], engine="codegen")
        assert codegen_mod.GENERATION_COUNT == count + 1
        assert observe(rerun) == observe(reference)

    def test_generated_source_is_inspectable(self):
        program = compile_minic(SMALL_SOURCE, "small", opt_level="none")
        source = codegen_mod.source_for(program.graph)
        assert "def make_runner" in source
        assert "def run_one" in source

    def test_probe_and_fault_construction_fall_back(self):
        # With instrumentation attached, constructing a CodegenEngine
        # yields the CompiledEngine heap path — transparent delegation,
        # not a reimplementation of the probe/injector contract.
        program = compile_minic(SMALL_SOURCE, "small", opt_level="none")
        assert type(CodegenEngine(program.graph)) is CodegenEngine
        faulted = CodegenEngine(program.graph,
                                faults=SHAKE_EVERYTHING.with_seed(3))
        assert type(faulted) is CompiledEngine
        from repro.observe import ProbeBus
        probed = CodegenEngine(program.graph, probes=ProbeBus())
        assert type(probed) is CompiledEngine

    def test_probe_fallback_profile_parity(self):
        kernel = get_kernel("li")
        program = compiled("li", "full").program
        interp, engine = run_both(program, kernel.args, engine="codegen",
                                  memsys=REALISTIC_2PORT, profile=True)
        assert observe(engine) == observe(interp)
        assert dict(engine.profile.critical_path.by_category) \
            == dict(interp.profile.critical_path.by_category)


class TestPlanCacheLifecycle:
    """The bounded plan cache: hits, eviction, and codegen coupling."""

    def _programs(self, count):
        return [compile_minic(
            SMALL_SOURCE.replace("i + 3", f"i + {10 + index}"), "small",
            opt_level="none") for index in range(count)]

    def test_lru_bound_evicts_oldest(self, monkeypatch):
        monkeypatch.setattr(plan_mod, "PLAN_CACHE_LIMIT", 2)
        plan_mod.clear_plan_cache()
        programs = self._programs(3)
        plans = [plan_for(program.graph) for program in programs]
        entries, limit = plan_mod.plan_cache_info()
        assert (entries, limit) == (2, 2)
        # Oldest evicted: a fresh plan (and generated module) next time.
        assert plan_for(programs[0].graph) is not plans[0]
        # Newest survived.
        assert plan_for(programs[2].graph) is plans[2]

    def test_hit_refreshes_recency(self, monkeypatch):
        monkeypatch.setattr(plan_mod, "PLAN_CACHE_LIMIT", 2)
        plan_mod.clear_plan_cache()
        programs = self._programs(3)
        plans = [plan_for(program.graph) for program in programs[:2]]
        assert plan_for(programs[0].graph) is plans[0]  # refresh #0
        plan_for(programs[2].graph)                     # evicts #1, not #0
        assert plan_for(programs[0].graph) is plans[0]
        assert plan_for(programs[1].graph) is not plans[1]

    def test_eviction_releases_generated_module(self, monkeypatch):
        monkeypatch.setattr(plan_mod, "PLAN_CACHE_LIMIT", 1)
        plan_mod.clear_plan_cache()
        import weakref
        programs = self._programs(2)
        programs[0].simulate([4], engine="codegen")
        module = weakref.ref(
            codegen_mod.generated_for(plan_for(programs[0].graph)))
        assert module() is not None
        programs[1].simulate([4], engine="codegen")  # evicts program 0
        import gc
        gc.collect()
        assert module() is None, \
            "evicted plan kept its generated module alive"


class TestBatchedExecution:
    """simulate_batch vs a serial loop: same results, any engine."""

    @pytest.mark.parametrize("engine", SIM_ENGINES)
    def test_batch_matches_serial(self, engine):
        program = compile_minic(SMALL_SOURCE, "small", opt_level="none")
        arg_sets = [[n] for n in (0, 3, 7, 11)]
        batch = program.simulate_batch(
            arg_sets, memsys=REALISTIC_2PORT, engine=engine)
        for args, got in zip(arg_sets, batch):
            want = program.simulate(list(args), memsys=REALISTIC_2PORT,
                                    engine=engine)
            assert observe(got) == observe(want)

    def test_batch_mixed_fault_contexts(self):
        program = compiled("li", "full").program
        kernel = get_kernel("li")
        plans = [None, SHAKE_EVERYTHING.with_seed(7), None]
        batch = program.simulate_batch(
            [list(kernel.args)] * 3, memsys=REALISTIC_2PORT, faults=plans)
        for plan, got in zip(plans, batch):
            want = program.simulate(list(kernel.args),
                                    memsys=REALISTIC_2PORT, faults=plan,
                                    engine="codegen")
            assert observe(got) == observe(want)

    def test_batch_returns_exceptions_when_asked(self):
        program = compile_minic(SMALL_SOURCE, "small", opt_level="none")
        batch = program.simulate_batch([[3], [5]], event_limit=2,
                                       return_exceptions=True)
        assert all(isinstance(item, EventLimitError) for item in batch)
        with pytest.raises(EventLimitError):
            program.simulate_batch([[3]], event_limit=2)

    def test_batch_rejects_shared_memsys_object(self):
        from repro.sim.memsys import MemorySystem
        program = compile_minic(SMALL_SOURCE, "small", opt_level="none")
        with pytest.raises(TypeError, match="MemoryConfig"):
            program.simulate_batch([[1]],
                                   memsys=MemorySystem(PERFECT_MEMORY))
