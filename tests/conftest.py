"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import compile_minic
from repro.api import OPT_LEVELS


def compile_and_compare(source: str, entry: str, args: list,
                        levels: tuple[str, ...] = OPT_LEVELS,
                        entry_points_to: dict | None = None,
                        check_memory: bool = True):
    """Differential harness: every opt level must match the oracle.

    Compiles ``source`` at each level, runs both interpreters, and asserts
    that return values (and final memory images, unless the program is
    nondeterministic in padding) all agree. Returns the per-level dataflow
    results keyed by level for further assertions.
    """
    results = {}
    reference = None
    ref_memory = None
    for level in levels:
        program = compile_minic(source, entry, opt_level=level,
                                entry_points_to=entry_points_to)
        oracle = program.run_sequential(list(args))
        spatial = program.simulate(list(args))
        assert spatial.return_value == oracle.return_value, (
            f"level {level}: dataflow returned {spatial.return_value}, "
            f"oracle {oracle.return_value}"
        )
        if check_memory:
            assert spatial.memory.snapshot() == oracle.memory.snapshot(), (
                f"level {level}: final memory differs from the oracle"
            )
        if reference is None:
            reference = oracle.return_value
            ref_memory = oracle.memory.snapshot()
        else:
            assert oracle.return_value == reference
            if check_memory:
                assert oracle.memory.snapshot() == ref_memory
        results[level] = spatial
    return results


@pytest.fixture
def differential():
    return compile_and_compare


# The paper's §2 motivating example, verbatim (modulo the array parameter
# name, which C allows either way).
SECTION2_SOURCE = """
void f(unsigned *p, unsigned a[], int i)
{
    if (p) a[i] += *p;
    else a[i] = 1;
    a[i] <<= a[i+1];
}
"""


@pytest.fixture
def section2_source() -> str:
    return SECTION2_SOURCE
