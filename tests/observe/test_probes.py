"""Probe bus: typed hooks, multicast, zero cost when off."""

import pytest

from repro import compile_minic
from repro.observe.probes import HOOKS, HistoryRing, ProbeBus
from repro.sim.dataflow import DataflowSimulator

SOURCE = """
int a[32];
int f(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 3; s += a[i]; }
    return s;
}
"""


def simulator(program, bus=None):
    return DataflowSimulator(program.graph, memory=program.new_memory(),
                             probes=bus)


@pytest.fixture(scope="module")
def program():
    return compile_minic(SOURCE, "f", opt_level="none")


class TestBusWiring:
    def test_hooks_start_unwired(self):
        bus = ProbeBus()
        assert all(getattr(bus, hook) is None for hook in HOOKS)

    def test_subscribe_wires_only_implemented_hooks(self):
        class FireOnly:
            def __init__(self):
                self.fires = []

            def on_fire(self, node, time):
                self.fires.append((node.id, time))

        bus = ProbeBus()
        listener = bus.subscribe(FireOnly())
        assert bus.fire == listener.on_fire
        assert all(getattr(bus, hook) is None for hook in HOOKS
                   if hook != "fire")

    def test_two_listeners_multicast_in_order(self):
        order = []

        class Tap:
            def __init__(self, name):
                self.name = name

            def on_fire(self, node, time):
                order.append(self.name)

        bus = ProbeBus()
        bus.subscribe(Tap("first"))
        bus.subscribe(Tap("second"))
        bus.fire(None, 0)
        assert order == ["first", "second"]

    def test_find_by_type(self):
        bus = ProbeBus()
        ring = bus.subscribe(HistoryRing(4))
        assert bus.find(HistoryRing) is ring
        assert bus.find(ProbeBus) is None


class TestSimulatorIntegration:
    def test_no_bus_leaves_channels_cold(self, program):
        sim = simulator(program)
        sim.run([6])
        assert sim._p_fire is None and sim._p_emit is None
        assert sim._p_enqueue is None and sim._p_dequeue is None

    def test_empty_bus_is_equivalent_to_none(self, program):
        # The zero-cost contract: an empty bus keeps every channel None,
        # so the instrumented simulator takes the exact same branches.
        sim = simulator(program, ProbeBus())
        result = sim.run([6])
        assert sim._p_fire is None and sim._p_enqueue is None
        plain = simulator(program).run([6])
        assert result.return_value == plain.return_value
        assert result.cycles == plain.cycles

    def test_fire_hook_sees_every_firing(self, program):
        class FireCount:
            def __init__(self):
                self.count = 0

            def on_fire(self, node, time):
                self.count += 1

        bus = ProbeBus()
        counter = bus.subscribe(FireCount())
        result = simulator(program, bus).run([6])
        assert counter.count == result.fired

    def test_enqueues_match_dequeues_on_a_completed_run(self, program):
        class QueueTap:
            def __init__(self):
                self.enqueued = 0
                self.dequeued = 0

            def on_enqueue(self, producer, consumer, slot, time):
                self.enqueued += 1

            def on_dequeue(self, node, slot, time):
                self.dequeued += 1

        bus = ProbeBus()
        tap = bus.subscribe(QueueTap())
        simulator(program, bus).run([6])
        assert tap.enqueued > 0
        # Sticky constant wires are read without consuming; everything
        # queued beyond them is drained by the time the return fires.
        assert tap.dequeued <= tap.enqueued

    def test_memory_hooks_fire_per_access(self, program):
        from repro.sim.memsys import MemorySystem, REALISTIC_MEMORY

        class MemTap:
            def __init__(self):
                self.accesses = []
                self.lsq = []

            def on_mem_access(self, now, start, done, addr, width,
                              is_write, level, tlb_miss):
                self.accesses.append((is_write, level))

            def on_lsq(self, now, depth, wait):
                self.lsq.append(depth)

        bus = ProbeBus()
        tap = bus.subscribe(MemTap())
        sim = DataflowSimulator(program.graph, memory=program.new_memory(),
                                memsys=MemorySystem(REALISTIC_MEMORY),
                                probes=bus)
        result = sim.run([6])
        assert len(tap.accesses) == result.loads + result.stores
        assert tap.lsq and all(depth >= 0 for depth in tap.lsq)
        assert {level for _, level in tap.accesses} <= {"l1", "l2", "mem"}


class TestHistoryRing:
    def test_bounded_capacity(self):
        class Node:
            def __init__(self, id):
                self.id = id

            def label(self):
                return "n"

        ring = HistoryRing(4)
        for cycle in range(10):
            ring.on_fire(Node(cycle % 2), cycle)
        assert len(ring.events) == 4
        assert ring.tail(2) == [(0, 8), (1, 9)]
        assert ring.last_fired[0] == 8 and ring.last_fired[1] == 9
