"""The metrics registry: instruments, worker-snapshot merging, and the
Prometheus exposition round trip.

The ambient discipline mirrors tracing and telemetry — ``metrics()``
returns None unless someone enabled a registry, so instrumented sites
cost one call and one ``is None`` test when metrics are off.
"""

import json
import math
import threading

import pytest

from repro.observe.metrics import (
    DEFAULT_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    merge_snapshots,
    metrics,
    parse_prometheus,
    read_snapshots,
    render_prometheus,
    snapshot_path,
    sum_series,
    write_snapshot,
)


@pytest.fixture()
def registry():
    reg = enable_metrics()
    yield reg
    disable_metrics(reg)


class TestAmbientStack:
    def test_inert_by_default(self):
        assert metrics() is None

    def test_enable_nests_and_disable_pops(self):
        outer = enable_metrics()
        inner = enable_metrics()
        try:
            assert metrics() is inner
            disable_metrics(inner)
            assert metrics() is outer
        finally:
            disable_metrics(outer)
        assert metrics() is None

    def test_disable_removes_a_specific_registry_anywhere(self):
        outer = enable_metrics()
        inner = enable_metrics()
        disable_metrics(outer)  # not the innermost
        assert metrics() is inner
        disable_metrics(inner)
        assert metrics() is None


class TestInstruments:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("repro_things_total", kind="a")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_same_name_and_labels_is_the_same_instrument(self, registry):
        a = registry.counter("repro_things_total", kind="a")
        again = registry.counter("repro_things_total", kind="a")
        other = registry.counter("repro_things_total", kind="b")
        assert a is again and a is not other

    def test_label_order_does_not_split_series(self, registry):
        one = registry.counter("repro_x_total", a="1", b="2")
        two = registry.counter("repro_x_total", b="2", a="1")
        assert one is two

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("repro_in_flight")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1.0
        gauge.set(7)
        assert gauge.value == 7.0

    def test_histogram_buckets_and_overflow(self, registry):
        hist = registry.histogram("repro_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 99.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1]  # le=0.1, le=1.0, +Inf
        assert hist.count == 4
        assert hist.sum == pytest.approx(100.05)

    def test_concurrent_get_or_create_yields_one_instrument(self):
        reg = MetricsRegistry()
        seen = []

        def worker():
            seen.append(reg.counter("repro_racy_total"))

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1


class TestSnapshotsAndMerge:
    def test_snapshot_is_json_safe_and_tagged(self, registry):
        registry.counter("repro_a_total").inc()
        registry.histogram("repro_b_seconds").observe(0.2)
        snap = registry.snapshot(tags={"worker": "w1"})
        json.dumps(snap)  # round-trippable, no custom types
        assert snap["tags"] == {"worker": "w1"}
        assert snap["host"] and snap["pid"]
        types = {row["name"]: row["type"] for row in snap["metrics"]}
        assert types == {"repro_a_total": "counter",
                        "repro_b_seconds": "histogram"}

    def test_merge_sums_counters_and_histograms(self):
        def snap(count, ts):
            reg = MetricsRegistry()
            reg.counter("repro_jobs_total", status="ok").inc(count)
            hist = reg.histogram("repro_job_seconds", buckets=(1.0, 5.0))
            hist.observe(0.5)
            out = reg.snapshot()
            out["ts"] = ts
            return out

        merged = merge_snapshots([snap(2, 1.0), snap(3, 2.0)])
        rows = {row["name"]: row for row in merged["metrics"]}
        assert rows["repro_jobs_total"]["value"] == 5.0
        assert rows["repro_job_seconds"]["counts"] == [2, 0, 0]
        assert rows["repro_job_seconds"]["count"] == 2
        assert merged["tags"] == {"merged_from": 2}

    def test_merge_keeps_the_newest_gauge(self):
        def snap(depth, ts):
            reg = MetricsRegistry()
            reg.gauge("repro_queue_depth").set(depth)
            out = reg.snapshot()
            out["ts"] = ts
            return out

        # Delivery order must not matter, only the snapshot timestamps.
        merged = merge_snapshots([snap(9, 5.0), snap(3, 1.0)])
        (row,) = merged["metrics"]
        assert row["value"] == 9.0

    def test_mismatched_histogram_buckets_are_not_summed(self):
        def snap(buckets):
            reg = MetricsRegistry()
            reg.histogram("repro_h_seconds", buckets=buckets).observe(0.1)
            return reg.snapshot()

        merged = merge_snapshots([snap((1.0,)), snap((1.0, 2.0))])
        (row,) = merged["metrics"]
        assert row["buckets"] == [1.0]  # first wins, second dropped
        assert row["count"] == 1


class TestPrometheusRoundTrip:
    def test_content_type_is_exposition_0_0_4(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE

    def test_render_types_labels_and_values(self, registry):
        registry.counter("repro_reqs_total", kind="simulate").inc(3)
        registry.gauge("repro_in_flight").set(2)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_reqs_total counter" in text
        assert "# TYPE repro_in_flight gauge" in text
        assert 'repro_reqs_total{kind="simulate"} 3' in text
        assert text.endswith("\n")

    def test_histogram_renders_cumulative_buckets(self, registry):
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_count 2" in text

    def test_parse_inverts_render(self, registry):
        registry.counter("repro_reqs_total", kind="a").inc(2)
        registry.counter("repro_reqs_total", kind="b").inc(5)
        hist = registry.histogram("repro_s_seconds", buckets=(1.0,))
        hist.observe(0.5)
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert parsed['repro_reqs_total{kind="a"}'] == 2.0
        assert parsed['repro_reqs_total{kind="b"}'] == 5.0
        assert parsed['repro_s_seconds_bucket{le="+Inf"}'] == 1.0
        assert sum_series(parsed, "repro_reqs_total") == 7.0
        # _bucket/_sum/_count are distinct series, not the base name.
        assert sum_series(parsed, "repro_s_seconds") == 0.0

    def test_label_values_are_escaped(self, registry):
        registry.counter("repro_odd_total",
                         path='a"b' + chr(92) + "c").inc()
        text = render_prometheus(registry.snapshot())
        assert chr(92) + chr(34) in text  # the quote arrives escaped
        parsed = parse_prometheus(text)
        assert sum_series(parsed, "repro_odd_total") == 1.0


class TestSnapshotFiles:
    def test_write_is_a_noop_when_metrics_are_inert(self, tmp_path):
        assert metrics() is None
        assert write_snapshot(tmp_path, "w1") is None
        assert not list(tmp_path.glob("metrics-*.json"))

    def test_write_then_read_merges_worker_files(self, tmp_path, registry):
        registry.counter("repro_worker_jobs_total", status="ok").inc(4)
        path = write_snapshot(tmp_path, "vm-101", tags={"worker": "vm-101"})
        assert path == snapshot_path(tmp_path, "vm-101")
        # A second worker's snapshot, written by another registry.
        other = MetricsRegistry()
        other.counter("repro_worker_jobs_total", status="ok").inc(2)
        enable_metrics(other)
        try:
            write_snapshot(tmp_path, "vm-102")
        finally:
            disable_metrics(other)
        merged = read_snapshots(tmp_path)
        parsed = parse_prometheus(render_prometheus(merged))
        assert sum_series(parsed, "repro_worker_jobs_total") == 6.0

    def test_torn_snapshot_files_are_skipped(self, tmp_path, registry):
        registry.counter("repro_ok_total").inc()
        write_snapshot(tmp_path, "good")
        (tmp_path / "metrics-torn.json").write_text('{"schema": 1, "metr')
        merged = read_snapshots(tmp_path)
        (row,) = merged["metrics"]
        assert row["name"] == "repro_ok_total"
        assert merged["tags"] == {"merged_from": 1}

    def test_worker_ids_are_sanitized_into_filenames(self, tmp_path):
        path = snapshot_path(tmp_path, "host:1/evil")
        assert path.name == "metrics-host-1-evil.json"

    def test_default_buckets_cover_sub_ms_to_a_minute(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 60.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert math.inf not in DEFAULT_BUCKETS  # +Inf is implicit
