"""Concurrent writers into one TelemetrySession.

The compile service records from many asyncio tasks (and from worker
threads entered via ``asyncio.to_thread``) into a single session. Tags
live in a ContextVar, so each task's overlay must stay isolated from
its siblings, every record must survive the interleaved appends, and
the JSONL segments must read back clean.
"""

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor

from repro.observe.store import TelemetryStore
from repro.observe.telemetry import RunRecord, TelemetrySession

TASKS = 24


def test_concurrent_asyncio_tasks_tag_isolation(tmp_path):
    session = TelemetrySession(store=TelemetryStore(tmp_path),
                               label="concurrency")

    async def one(i: int) -> None:
        with session.tags(task=f"t{i}"):
            # Yield inside the tagged block so tasks interleave while
            # their overlays are live.
            await asyncio.sleep(0.001 * (i % 3))
            session.record(RunRecord(kind="run", entry=f"loop-{i}"))
            # The overlay must follow into to_thread (context copy).
            await asyncio.to_thread(
                session.record,
                RunRecord(kind="run", entry=f"thread-{i}"))

    async def main() -> None:
        await asyncio.gather(*(one(i) for i in range(TASKS)))

    with session:
        asyncio.run(main())

    records = session.records()
    assert len(records) == 2 * TASKS
    for record in records:
        flavor, _, i = record.entry.partition("-")
        assert record.tags["task"] == f"t{i}", \
            f"{record.entry} cross-talked: {record.tags}"
    # No task leaked its overlay into the session default.
    assert session._tags == {}


def test_concurrent_thread_writers_no_lost_records(tmp_path):
    session = TelemetrySession(store=TelemetryStore(tmp_path),
                               label="threads")
    per_thread = 20

    def writer(i: int) -> None:
        with session.tags(writer=f"w{i}"):
            for j in range(per_thread):
                session.record(RunRecord(kind="run", entry=f"w{i}-{j}"))

    with session:
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(writer, range(8)))

    records = session.records()
    assert len(records) == 8 * per_thread
    entries = {record.entry for record in records}
    assert len(entries) == 8 * per_thread
    for record in records:
        assert record.entry.startswith(record.tags["writer"] + "-")

    # The segment files themselves parse line-by-line: interleaved
    # appends never tore a line.
    segments = list(tmp_path.glob("segments/*.jsonl"))
    assert segments
    lines = [line
             for segment in segments
             for line in segment.read_text().splitlines() if line]
    payloads = [json.loads(line) for line in lines]
    assert len(payloads) == 8 * per_thread
