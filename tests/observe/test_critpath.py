"""Critical-path analysis on hand-computable graphs.

The invariant under test everywhere: the per-category attribution sums
*exactly* to the simulated cycle count — no cycle is lost or counted
twice (the telescoping argument in :mod:`repro.observe.critpath`).
"""

import pytest

from repro import compile_minic
from repro.harness.section2 import SECTION2_SOURCE
from repro.observe import CriticalPathReport
from repro.observe.critpath import CATEGORIES, categorize
from repro.pegasus import nodes as N
from repro.sim.memsys import PERFECT_MEMORY, REALISTIC_MEMORY

SECTION2_DRIVER = SECTION2_SOURCE + """
unsigned buffer[8];
unsigned value = 5;
unsigned drive(int i, int use_p)
{
    int k;
    for (k = 0; k < 8; k++) buffer[k] = k + 1;
    f(use_p ? &value : (unsigned*)0, buffer, i);
    return buffer[i];
}
"""

LOAD_CHAIN = """
int a[8];
int chase(int i) { return a[a[i]]; }
"""


def profiled(source, entry, args, memsys=PERFECT_MEMORY, level="full"):
    program = compile_minic(source, entry, opt_level=level)
    result = program.simulate(list(args), memsys=memsys, profile=True)
    return program, result


def total(report: CriticalPathReport) -> int:
    return sum(report.by_category.values())


class TestSection2Example:
    @pytest.mark.parametrize("level", ["none", "full"])
    @pytest.mark.parametrize("use_p", [1, 0])
    def test_attribution_sums_to_cycle_count(self, level, use_p):
        _, result = profiled(SECTION2_DRIVER, "drive", [3, use_p],
                             level=level)
        report = result.profile.critical_path
        assert total(report) == result.cycles == report.cycles
        assert report.chain_length > 0
        assert set(report.by_category) == set(CATEGORIES)

    def test_memory_share_rises_with_a_real_memory_system(self):
        _, perfect = profiled(SECTION2_DRIVER, "drive", [3, 1])
        _, realistic = profiled(SECTION2_DRIVER, "drive", [3, 1],
                                memsys=REALISTIC_MEMORY)
        assert realistic.return_value == perfect.return_value
        share_perfect = perfect.profile.critical_path.share("memory")
        share_realistic = realistic.profile.critical_path.share("memory")
        assert share_realistic > share_perfect

    def test_predicated_false_memop_stays_consistent(self):
        # With use_p=0 the `*p` load is predicated off: it must not
        # appear in the memory counts, and attribution still telescopes.
        _, result = profiled(SECTION2_DRIVER, "drive", [3, 0])
        assert result.skipped_memops > 0
        report = result.profile.critical_path
        assert total(report) == result.cycles
        stats = result.profile.memory_stats
        assert stats["accesses"] == result.loads + result.stores


class TestLoadChain:
    """Two dependent loads: the path's memory cost is hand-computable."""

    def test_perfect_memory_attributes_exactly_two_load_cycles(self):
        # a[a[i]] is a serial chain of two loads; under perfect memory
        # each costs exactly perfect_latency (1 cycle), and both sit on
        # the critical path — so the memory category is exactly 2.
        _, result = profiled(LOAD_CHAIN, "chase", [2])
        report = result.profile.critical_path
        assert result.loads == 2 and result.stores == 0
        assert report.by_category["memory"] == 2 * PERFECT_MEMORY.perfect_latency
        assert total(report) == result.cycles

    def test_both_loads_appear_on_the_path(self):
        program, result = profiled(LOAD_CHAIN, "chase", [2])
        report = result.profile.critical_path
        load_ids = {node.id for node in program.graph.nodes.values()
                    if isinstance(node, N.LoadNode)}
        assert load_ids <= set(report.by_node)

    def test_segments_walk_backward_and_abut(self):
        _, result = profiled(LOAD_CHAIN, "chase", [2])
        segments = result.profile.critical_path.segments
        assert segments, "chain must be non-empty"
        # Walking backward from the return: each hop completes no later
        # than the next one starts (consecutive hops abut through waits).
        for later, earlier in zip(segments, segments[1:]):
            assert earlier.done <= later.start + later.wait + \
                (later.done - later.start)
            assert earlier.start <= later.start


class TestCategorize:
    def test_known_node_kinds(self):
        from repro.frontend import types as ty
        assert categorize(N.CombineNode([None])) == "token"
        assert categorize(N.InitialTokenNode()) == "token"
        assert categorize(N.ConstNode(0, ty.INT)) == "control"
        token_merge = N.MergeNode(None, 1, value_class=N.TOKEN)
        assert categorize(token_merge) == "token"
        value_merge = N.MergeNode(None, 1)
        assert categorize(value_merge) == "control"
