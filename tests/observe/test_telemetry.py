"""Telemetry sessions, the persistent store, and the regression differ.

The acceptance criteria of the telemetry subsystem:

- a session wraps compile+simulate into schema-versioned RunRecords and
  persists them content-addressed under the store root;
- ``repro-telemetry compare`` flags an artificially injected >= 10%
  cycle regression on a fig19 kernel (same kernel, same nominal config,
  degraded memory timings) and reports no regression for a same-config
  re-run;
- the watchdog replays committed baselines and turns regressions into a
  failing verdict.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.cache import compiled, get_kernel
from repro.observe.diff import (
    Thresholds,
    compare,
    diff_runs,
    load_baselines,
    make_baselines,
    perturbed,
    save_baselines,
    watchdog,
)
from repro.observe.store import TelemetryStore, TelemetryStoreError
from repro.observe.telemetry import (
    SCHEMA_VERSION,
    RunRecord,
    TelemetrySession,
    build_run_record,
    current_session,
    telemetry_tags,
)
from repro.sim.memsys import MemorySystem, PERFECT_MEMORY, REALISTIC_2PORT

KERNEL = "li"  # small fig19 kernel: fast to simulate, realistic shape


@pytest.fixture()
def store(tmp_path):
    return TelemetryStore(tmp_path / "telemetry")


def _run_kernel(name, level, config, *, profile=False, telemetry=None):
    kernel = get_kernel(name)
    entry = compiled(name, level)
    result = entry.program.simulate(
        list(kernel.args), memsys=MemorySystem(config), profile=profile,
        telemetry=telemetry)
    kernel.check(result.return_value)
    return entry.program, result, kernel


class TestStore:
    def test_round_trip_and_content_address(self, store):
        program, result, kernel = _run_kernel(KERNEL, "full",
                                              PERFECT_MEMORY,
                                              telemetry=False)
        record = build_run_record(program, result, engine="compiled",
                                  memsys_name="perfect",
                                  args=list(kernel.args),
                                  tags={"kernel": KERNEL})
        run_id = store.append(record, segment="t")
        assert record.run_id == run_id and len(run_id) == 64

        loaded = store.get(run_id)
        assert loaded.schema == SCHEMA_VERSION
        assert loaded.kind == "run"
        assert loaded.cycles == result.cycles
        assert loaded.kernel == KERNEL
        assert loaded.comparison_key() == record.comparison_key()
        # Unique prefixes resolve like git short hashes.
        assert store.get(run_id[:12]).run_id == run_id

    def test_identical_payload_dedupes(self, store):
        record = RunRecord(kind="run", entry="f", created_at=1.0,
                           result={"cycles": 10})
        first = store.append(record, segment="t")
        again = store.append(RunRecord(kind="run", entry="f",
                                       created_at=1.0,
                                       result={"cycles": 10}),
                             segment="t")
        assert first == again
        assert len(store.index()) == 1

    def test_unknown_and_ambiguous_ids_raise(self, store):
        with pytest.raises(TelemetryStoreError):
            store.get("deadbeef")

    def test_gc_drops_old_sessions(self, store):
        for session_no in range(3):
            with TelemetrySession(store=store, label=f"s{session_no}"):
                _run_kernel(KERNEL, "none", PERFECT_MEMORY)
        assert len(store.sessions()) == 3
        removed = store.gc(keep_sessions=1)
        assert removed
        assert len(store.sessions()) == 1
        # The survivor is intact and readable.
        (survivor,) = store.sessions()
        assert store.records(session=survivor)


class TestSession:
    def test_ambient_session_records_runs_and_compiles(self, store):
        with TelemetrySession(store=store, label="amb") as session:
            with telemetry_tags(kernel=KERNEL, figure="test"):
                _run_kernel(KERNEL, "full", REALISTIC_2PORT)
        assert current_session() is None
        records = session.records()
        kinds = {record.kind for record in records}
        assert "run" in kinds
        run = next(r for r in records if r.kind == "run")
        assert run.tags["kernel"] == KERNEL
        assert run.tags["figure"] == "test"
        assert run.session == session.session_id
        assert run.memsys == "realistic-2port"
        assert run.cycles and run.cycles > 0
        assert run.result["memory_stats"]["accesses"] > 0
        assert run.host["python"]

    def test_telemetry_false_suppresses(self, store):
        with TelemetrySession(store=store) as session:
            _run_kernel(KERNEL, "none", PERFECT_MEMORY, telemetry=False)
        assert [r for r in session.records() if r.kind == "run"] == []

    def test_explicit_sink_without_ambient_session(self, store):
        with TelemetrySession(store=store) as session:
            pass  # session exists but is no longer ambient
        _run_kernel(KERNEL, "none", PERFECT_MEMORY, telemetry=session)
        assert [r for r in session.records() if r.kind == "run"]

    def test_profiled_run_carries_attribution(self, store):
        with TelemetrySession(store=store) as session:
            _run_kernel(KERNEL, "full", REALISTIC_2PORT, profile=True)
        run = next(r for r in session.records() if r.kind == "run")
        assert run.profile["opcode_fires"]
        shares = run.attribution_shares()
        assert shares and abs(sum(shares.values()) - 1.0) < 1e-6

    def test_compile_record_has_stage_and_pass_telemetry(self, store):
        from repro.api import compile_minic
        source = "int f(int n) { return n + 1; }"
        with TelemetrySession(store=store) as session:
            compile_minic(source, "f", opt_level="full")
        compiles = [r for r in session.records() if r.kind == "compile"]
        assert compiles
        compilation = compiles[-1].compilation
        assert compilation["stages"] and compilation["passes"]
        assert compiles[-1].source_sha and len(compiles[-1].source_sha) == 64


class TestDiff:
    def test_injected_regression_is_flagged(self, store):
        """The headline acceptance: >= 10% cycle regression on a fig19
        kernel, injected by degrading memory timings under the same
        config name, is flagged; a same-config re-run compares clean."""
        with TelemetrySession(store=store, label="base") as base:
            _run_kernel(KERNEL, "full", REALISTIC_2PORT, profile=True)
        with TelemetrySession(store=store, label="same") as same:
            _run_kernel(KERNEL, "full", REALISTIC_2PORT, profile=True)
        with TelemetrySession(store=store, label="hurt") as hurt:
            _run_kernel(KERNEL, "full", perturbed(REALISTIC_2PORT),
                        profile=True)

        clean = compare(base.records(), same.records())
        assert clean.ok
        assert "no regression" in clean.render()

        report = compare(base.records(), hurt.records())
        assert not report.ok
        (delta,) = report.regressions
        assert delta.cycle_pct >= 0.10
        assert "REGRESSION" in report.render()

    def test_noise_floor_swallows_tiny_deltas(self):
        base = RunRecord(result={"cycles": 1000}, tags={"kernel": "k"})
        tiny = RunRecord(result={"cycles": 1010}, tags={"kernel": "k"})
        big = RunRecord(result={"cycles": 1200}, tags={"kernel": "k"})
        assert not diff_runs(base, tiny).regression
        assert diff_runs(base, big).regression

    def test_thresholds_are_configurable(self):
        base = RunRecord(result={"cycles": 1000}, tags={"kernel": "k"})
        worse = RunRecord(result={"cycles": 1100}, tags={"kernel": "k"})
        strict = Thresholds(cycle_pct=0.01, cycle_floor=1)
        lax = Thresholds(cycle_pct=0.50, cycle_floor=1)
        assert diff_runs(base, worse, strict).regression
        assert not diff_runs(base, worse, lax).regression

    def test_schema_skew_refused(self):
        from repro.observe.diff import TelemetryDiffError
        old = RunRecord(schema=SCHEMA_VERSION + 1)
        with pytest.raises(TelemetryDiffError):
            diff_runs(old, RunRecord())

    def test_engine_excluded_from_comparison_key(self):
        compiled_run = RunRecord(engine="compiled", tags={"kernel": "k"},
                                 result={"cycles": 5})
        interp_run = RunRecord(engine="interp", tags={"kernel": "k"},
                               result={"cycles": 5})
        assert compiled_run.comparison_key() == interp_run.comparison_key()


class TestBaselinesAndWatchdog:
    def test_baseline_round_trip_and_clean_watchdog(self, tmp_path):
        records = make_baselines([KERNEL], levels=("full",),
                                 memory_systems=(PERFECT_MEMORY,))
        written = save_baselines(records, tmp_path / "baselines")
        assert written and all(path.exists() for path in written)
        loaded = load_baselines(tmp_path / "baselines")
        assert [r.comparison_key() for r in loaded] == \
            [r.comparison_key() for r in records]

        report = watchdog(tmp_path / "baselines")
        assert report.ok, report.render()

    def test_watchdog_catches_doctored_baseline(self, tmp_path):
        """A baseline claiming fewer cycles than the tree delivers reads
        as a regression when replayed."""
        records = make_baselines([KERNEL], levels=("full",),
                                 memory_systems=(REALISTIC_2PORT,))
        (record,) = records
        record.result["cycles"] = int(record.result["cycles"] * 0.5)
        save_baselines(records, tmp_path / "baselines")
        report = watchdog(tmp_path / "baselines")
        assert not report.ok

    def test_replay_skips_unknown_kernels(self, tmp_path):
        stranger = RunRecord(tags={"kernel": "no_such_kernel"},
                             result={"cycles": 1},
                             memsys="perfect")
        path = tmp_path / "b.json"
        path.write_text(json.dumps([stranger.to_dict()]))
        report = watchdog(path)
        # Nothing replayable: the stranger ends up baseline-only.
        assert not report.deltas
        assert report.unmatched_baseline
