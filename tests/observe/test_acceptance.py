"""The issue's acceptance criteria, on real Figure-19 kernels.

For each kernel: the critical-path attribution is self-consistent (the
per-category cycles sum exactly to the simulated cycle count), and the
memory category's share does not shrink when moving from perfect memory
to the realistic two-level hierarchy.
"""

import pytest

from repro.harness.cache import compiled, get_kernel
from repro.sim.memsys import (
    MemorySystem,
    PERFECT_MEMORY,
    REALISTIC_MEMORY,
)

KERNELS = ("adpcm_e", "gsm_e", "li")


def profiled(name, config):
    kernel = get_kernel(name)
    entry = compiled(name, "full")
    result = entry.program.simulate(list(kernel.args),
                                    memsys=MemorySystem(config),
                                    profile=True)
    kernel.check(result.return_value)
    return result


@pytest.mark.parametrize("name", KERNELS)
class TestFig19Kernels:
    def test_attribution_is_self_consistent(self, name):
        for config in (PERFECT_MEMORY, REALISTIC_MEMORY):
            result = profiled(name, config)
            report = result.profile.critical_path
            assert sum(report.by_category.values()) == result.cycles, \
                f"{name}/{config.name}: attribution must telescope"
            assert report.chain_length > 0

    def test_memory_share_does_not_shrink_with_real_memory(self, name):
        perfect = profiled(name, PERFECT_MEMORY)
        realistic = profiled(name, REALISTIC_MEMORY)
        assert realistic.return_value == perfect.return_value
        share_perfect = perfect.profile.critical_path.share("memory")
        share_realistic = realistic.profile.critical_path.share("memory")
        assert share_realistic >= share_perfect
        # And the realistic run must actually blame memory for something.
        assert realistic.profile.critical_path.by_category["memory"] > 0
