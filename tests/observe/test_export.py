"""Exporters: Perfetto trace-event JSON, VCD waveforms, JSONL metrics."""

import json

import pytest

from repro import compile_minic
from repro.observe import Observation, validate_trace_events
from repro.sim.memsys import REALISTIC_MEMORY

SOURCE = """
int a[32];
int f(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 3; s += a[i]; }
    return s;
}
"""


@pytest.fixture(scope="module")
def observed():
    program = compile_minic(SOURCE, "f", opt_level="full")
    obs = Observation(trace=True)
    result = program.simulate([8], memsys=REALISTIC_MEMORY, profile=obs)
    return program, obs, result


class TestChromeTrace:
    def test_payload_passes_the_schema_check(self, observed, tmp_path):
        program, obs, _ = observed
        payload = obs.export_trace(program.graph, tmp_path / "run.json")
        assert validate_trace_events(payload) == []

    def test_written_file_is_valid_json(self, observed, tmp_path):
        program, obs, _ = observed
        path = tmp_path / "run.json"
        obs.export_trace(program.graph, path)
        payload = json.loads(path.read_text())
        assert validate_trace_events(payload) == []
        assert payload["otherData"]["dropped_events"] == 0

    def test_one_duration_event_per_emitting_firing(self, observed):
        from repro.observe import chrome_trace_events
        program, obs, result = observed
        payload = chrome_trace_events(obs.collector, program.graph)
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"
                    and e["pid"] == 1]
        # Firings that drop their value (a false-predicate eta) produce
        # no visible interval, so X events are bounded by firings.
        assert 0 < len(complete) <= result.fired
        assert len(complete) == len(obs.collector.fires)

    def test_memory_track_present(self, observed):
        from repro.observe import chrome_trace_events
        program, obs, result = observed
        payload = chrome_trace_events(obs.collector, program.graph)
        mem = [e for e in payload["traceEvents"]
               if e["ph"] == "X" and e["pid"] == 2]
        assert len(mem) == result.loads + result.stores
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert counters and all("depth" in e["args"] for e in counters)

    def test_validator_flags_garbage(self):
        assert validate_trace_events([]) == ["payload is not a JSON object"]
        assert validate_trace_events({"traceEvents": None})
        broken = {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1,
                                   "name": "x", "ts": -4, "dur": 1}]}
        assert any("bad ts" in problem
                   for problem in validate_trace_events(broken))


class TestVCD:
    def test_file_parses_and_values_fit_widths(self, observed, tmp_path):
        program, obs, _ = observed
        path = tmp_path / "run.vcd"
        signals = obs.export_vcd(program.graph, path)
        assert signals > 0

        declared = {}
        current_time = None
        times = []
        changes = 0
        in_header = True
        for line in path.read_text().splitlines():
            line = line.strip()
            if in_header:
                if line.startswith("$var"):
                    parts = line.split()
                    assert parts[1] == "wire"
                    declared[parts[3]] = int(parts[2])
                if line == "$enddefinitions $end":
                    in_header = False
                continue
            if line.startswith("#"):
                current_time = int(line[1:])
                times.append(current_time)
            elif line.startswith("b"):
                value, ident = line[1:].split()
                assert ident in declared
                assert len(value) <= declared[ident]
                changes += 1
        assert len(declared) == signals
        assert times == sorted(times)
        assert changes > 0

    def test_top_caps_the_signal_count(self, observed, tmp_path):
        program, obs, _ = observed
        signals = obs.export_vcd(program.graph, tmp_path / "top.vcd", top=3)
        assert signals <= 4  # 3 operators + the LSQ depth signal

    def test_round_trip_reconstructs_firing_pulses(self, observed,
                                                   tmp_path):
        """Replaying the VCD recovers the collector's firing counts.

        Each operator signal pulses to firings-this-cycle and back to
        zero, so integrating value changes over strictly increasing
        timestamps must reproduce the per-node per-cycle counts the
        trace collector measured."""
        program, obs, _ = observed
        path = tmp_path / "roundtrip.vcd"
        obs.export_vcd(program.graph, path)

        name_by_ident = {}
        changes = {}
        now = None
        times = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if line.startswith("$var"):
                parts = line.split()
                name_by_ident[parts[3]] = parts[4]
            elif line.startswith("#"):
                now = int(line[1:])
                times.append(now)
            elif line.startswith("b") and now is not None:
                raw, ident = line[1:].split()
                changes.setdefault(ident, []).append((now, int(raw, 2)))
        assert times == sorted(set(times)), "timestamps must be strictly " \
            "monotonic"

        expected = {}
        for node_id, start, _done in obs.collector.fires:
            per_cycle = expected.setdefault(node_id, {})
            per_cycle[start] = per_cycle.get(start, 0) + 1

        for ident, events in changes.items():
            name = name_by_ident[ident]
            if name == "lsq_depth":
                continue
            # A VCD signal is piecewise constant: each value holds from
            # its timestamp until the next change. Integrating gives the
            # firings-per-cycle series back.
            reconstructed = {}
            for (start, value), (end, _next) in zip(events, events[1:]):
                for cycle in range(start, end):
                    if value:
                        reconstructed[cycle] = value
            assert events[-1][1] == 0, f"{name} must end quiet"
            node_id = int(name.rsplit("#", 1)[1])
            assert reconstructed == expected[node_id], name


class TestJSONL:
    def test_lines_parse_and_cover_the_report(self, observed, tmp_path):
        from repro.observe import export_jsonl
        _, _, result = observed
        path = tmp_path / "run.jsonl"
        count = export_jsonl(result.profile, path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == count
        kinds = {line["kind"] for line in lines}
        assert kinds == {"summary", "opcode", "node", "critical_path"}
        summary = lines[0]
        assert summary["cycles"] == result.cycles
        critical = [line for line in lines
                    if line["kind"] == "critical_path"][0]
        assert sum(critical["by_category"].values()) == result.cycles
