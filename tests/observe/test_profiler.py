"""Profiler: per-opcode/per-node stats, memory breakdowns, report."""

import json

import pytest

from repro import compile_minic
from repro.observe import Observation, ProbeBus
from repro.sim.memsys import MemorySystem, PERFECT_MEMORY, REALISTIC_MEMORY

SOURCE = """
int a[32];
int f(int n) {
    int i; int s = 0;
    for (i = 0; i < n; i++) { a[i] = i * 3; s += a[i]; }
    return s;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_minic(SOURCE, "f", opt_level="full")


@pytest.fixture(scope="module")
def run(program):
    return program.simulate([8], memsys=REALISTIC_MEMORY, profile=True)


class TestProfileReport:
    def test_attached_to_the_result(self, run):
        assert run.profile is not None
        assert run.profile.cycles == run.cycles

    def test_opcode_fires_sum_to_total(self, run):
        assert sum(run.profile.opcode_fires.values()) == run.fired

    def test_loads_and_stores_counted(self, run):
        # Memory-op *firings* include predicated-off ops that skip the
        # actual access, so they exceed the access counts by exactly those.
        memop_fires = (run.profile.opcode_fires.get("load", 0)
                       + run.profile.opcode_fires.get("store", 0))
        assert memop_fires == run.loads + run.stores + run.skipped_memops

    def test_node_profiles_match_fire_counts(self, run):
        by_id = {profile.node_id: profile for profile in run.profile.nodes}
        for node_id, fires in run.fire_counts.items():
            assert by_id[node_id].fires == fires

    def test_memory_breakdown_covers_every_access(self, run):
        stats = run.profile.memory_stats
        assert stats["accesses"] == run.loads + run.stores
        assert sum(run.profile.mem_levels.values()) == stats["accesses"]
        assert set(run.profile.mem_levels) <= {"perfect", "l1", "l2", "mem"}

    def test_perfect_memory_is_all_perfect_level(self, program):
        result = program.simulate([8], memsys=PERFECT_MEMORY, profile=True)
        assert set(result.profile.mem_levels) == {"perfect"}

    def test_lsq_histogram_present_under_realistic_memory(self, run):
        assert run.profile.lsq_depth_hist
        assert all(depth >= 0 for depth in run.profile.lsq_depth_hist)

    def test_render_mentions_the_key_sections(self, run):
        text = run.profile.render()
        assert "firings by opcode" in text
        assert "busiest operators" in text
        assert "critical path" in text

    def test_to_json_round_trips(self, run):
        payload = json.loads(json.dumps(run.profile.to_json()))
        assert payload["cycles"] == run.cycles
        assert payload["critical_path"]["cycles"] == run.cycles


class TestSimulateWiring:
    def test_profile_false_attaches_nothing(self, program):
        result = program.simulate([8])
        assert result.profile is None

    def test_custom_observation_is_honoured(self, program):
        obs = Observation(trace=True)
        result = program.simulate([8], profile=obs)
        assert result.profile is not None
        assert obs.collector is not None and obs.collector.fires

    def test_explicit_bus_hosts_the_profile_listeners(self, program):
        bus = ProbeBus()
        taps = []

        class Tap:
            def on_fire(self, node, time):
                taps.append(node.id)

        bus.subscribe(Tap())
        result = program.simulate([8], profile=True, probes=bus)
        assert result.profile is not None
        assert len(taps) == result.fired

    def test_profiling_does_not_change_semantics(self, program):
        plain = program.simulate([8])
        profiled = program.simulate([8], profile=True)
        assert profiled.return_value == plain.return_value
        assert profiled.cycles == plain.cycles
        assert profiled.fire_counts == plain.fire_counts
