"""Distributed tracing: ambient spans, cross-process propagation,
crash evidence.

The span API must be a strict no-op when no tracer is active (the
zero-cost guard every instrumented call site relies on), and when
tracing *is* on, spans written by pool workers, remote workers, and
the coordinator must merge into one parent-linked tree — even when a
worker is SIGKILLed mid-run and leaves a torn shard tail behind.
"""

import json
import os
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.observe.export import validate_trace_events
from repro.observe.tracing import (
    SPAN_OPEN,
    Span,
    Tracer,
    adopt_context,
    current_trace_id,
    current_tracer,
    export_trace,
    find_trace_id,
    list_traces,
    propagation_context,
    read_trace,
    render_tree,
    span,
    span_children,
    trace_events,
    trace_main,
)
from repro.orchestrate.dag import JobDAG
from repro.orchestrate.executors import PoolExecutor
from repro.orchestrate.remote import RemoteExecutor
from repro.orchestrate.scheduler import Scheduler

ROOT = Path(__file__).resolve().parents[2]
SRC = str(ROOT / "src")

CHAOS_ENVS = ("REPRO_WORKER_KILL_AFTER", "REPRO_WORKER_STALL",
              "REPRO_NET_DROP_AFTER", "REPRO_SWEEP_KILL_AFTER",
              "REPRO_SWEEP_FLAKE")

#: Failure-detection timings shrunk so the chaos tests run in seconds.
FAST = dict(heartbeat=0.2, lease_timeout=1.5, wall_grace=0.5)


def _cell(i):
    return {"cell": i, "value": i * i}


def _dag(n=4):
    dag = JobDAG("trace-test")
    for i in range(n):
        dag.job(f"cell/{i}", _cell, i, category="cell")
    return dag


@pytest.fixture()
def worker_env(monkeypatch):
    """Spawned workers unpickle this module's functions by reference,
    so they need the repo root and ``src`` on their PYTHONPATH; also
    scrub chaos hooks leaking in from outside."""
    parts = [str(ROOT), SRC]
    existing = os.environ.get("PYTHONPATH")
    if existing:
        parts.append(existing)
    monkeypatch.setenv("PYTHONPATH", os.pathsep.join(parts))
    for name in CHAOS_ENVS:
        monkeypatch.delenv(name, raising=False)
    return monkeypatch


class TestAmbientSpans:
    def test_span_is_a_noop_without_a_tracer(self):
        assert current_tracer() is None
        with span("anything", job="j") as item:
            assert item is None
        assert current_trace_id() is None

    def test_root_span_mints_a_trace_children_parent_under_it(self, tmp_path):
        with Tracer(tmp_path) as tracer:
            with span("sweep:demo", dag="d1") as root:
                assert current_trace_id() == root.trace
                with span("job:one", job="one") as child:
                    assert child.trace == root.trace
                    assert child.parent == root.span
            assert tracer.traces == [root.trace]
        # Outside the tracer everything is inert again.
        assert current_trace_id() is None
        spans = read_trace(tmp_path, root.trace)
        assert [s.name for s in spans] == ["sweep:demo", "job:one"]
        assert all(not s.open for s in spans)
        assert spans[0].parent is None
        assert spans[1].parent == spans[0].span

    def test_exception_marks_the_span_failed_and_reraises(self, tmp_path):
        with Tracer(tmp_path):
            with pytest.raises(ValueError, match="boom"):
                with span("job:bad"):
                    raise ValueError("boom")
        (item,) = read_trace(tmp_path)
        assert item.ok is False
        assert item.error == "ValueError: boom"
        assert not item.open  # still finished: end_ns recorded

    def test_none_tags_are_dropped(self, tmp_path):
        with Tracer(tmp_path):
            with span("job:x", job="x", lease=None, attempt=1) as item:
                assert item.tags == {"job": "x", "attempt": 1}

    def test_sibling_spans_share_a_parent_not_each_other(self, tmp_path):
        with Tracer(tmp_path):
            with span("root") as root:
                with span("a") as a:
                    pass
                with span("b") as b:
                    pass
        assert a.parent == root.span
        assert b.parent == root.span  # not under "a": cursor restored

    def test_tracer_env_var_names_the_default_root(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "via-env"))
        assert Tracer().root == (tmp_path / "via-env").resolve()


class TestShardsAndHealing:
    def test_every_process_gets_its_own_shard_file(self, tmp_path):
        with Tracer(tmp_path) as tracer:
            with span("solo"):
                pass
        shards = list(tmp_path.glob("shard-*.jsonl"))
        assert len(shards) == 1
        assert shards[0].name == f"shard-{tracer.host}-{os.getpid()}.jsonl"

    def test_torn_shard_tail_heals_on_read(self, tmp_path):
        with Tracer(tmp_path):
            with span("survivor"):
                pass
        (shard,) = tmp_path.glob("shard-*.jsonl")
        # A SIGKILL mid-append leaves half a JSON line at the tail.
        with open(shard, "a") as handle:
            handle.write('{"key": "torn-span", "status": "span", "na')
        spans = read_trace(tmp_path)
        assert [s.name for s in spans] == ["survivor"]

    def test_open_entry_surfaces_as_an_unfinished_span(self, tmp_path):
        # A process that dies mid-span leaves only the span-open entry.
        tracer = Tracer(tmp_path)
        dead = Span(trace="t" * 16, span="s" * 16, parent=None,
                    name="job:died", start_ns=1000, tags={"job": "died"})
        tracer.write(dead, SPAN_OPEN)
        (item,) = read_trace(tmp_path)
        assert item.open and item.end_ns is None
        assert item.duration_ns == 0
        payload = trace_events([item])
        assert validate_trace_events(payload) == []
        (event,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert event["dur"] == 0 and event["args"]["open"] is True

    def test_done_entry_supersedes_the_open_one(self, tmp_path):
        with Tracer(tmp_path):
            with span("job:finished"):
                pass
        (shard,) = tmp_path.glob("shard-*.jsonl")
        lines = [json.loads(line)
                 for line in shard.read_text().splitlines()]
        assert [line["status"] for line in lines] == ["span-open", "span"]
        (item,) = read_trace(tmp_path)  # merged: latest status wins
        assert not item.open


class TestPropagation:
    def test_context_roundtrip_parents_across_the_boundary(self, tmp_path):
        with Tracer(tmp_path):
            with span("sweep:root") as root:
                ctx = propagation_context()
        assert ctx == {"dir": str(Path(tmp_path).resolve()),
                       "trace": root.trace, "span": root.span}
        # "The other process": no ambient tracer of its own.
        with adopt_context(ctx):
            with span("job:far") as far:
                assert far.trace == root.trace
                assert far.parent == root.span
        assert current_tracer() is None  # adopted tracer popped again

    def test_adopt_none_is_a_noop(self):
        with adopt_context(None):
            with span("untraced") as item:
                assert item is None

    def test_untraced_sweep_propagates_nothing(self):
        sweep = Scheduler(_dag(2)).run()
        assert sweep.ok
        assert propagation_context() is None

    def test_pool_executor_jobs_parent_under_the_sweep_root(self, tmp_path,
                                                            worker_env):
        executor = PoolExecutor(max_workers=2)
        with Tracer(tmp_path) as tracer:
            sweep = Scheduler(_dag(4), executor=executor).run()
        executor.shutdown()
        assert sweep.ok, sweep.report()
        spans = read_trace(tmp_path, tracer.traces[-1])
        (root,) = [s for s in spans if s.parent is None]
        assert root.name == "sweep:trace-test"
        jobs = [s for s in spans if s.name.startswith("job:")]
        assert len(jobs) == 4
        assert all(j.parent == root.span for j in jobs)
        if executor.degraded_reason is None:
            # Real pool workers wrote shards of their own.
            assert {(s.host, s.pid) for s in jobs} != {(root.host, root.pid)}

    def test_remote_executor_trace_merges_all_processes(self, tmp_path,
                                                        worker_env):
        executor = RemoteExecutor(workers=2, **FAST)
        with Tracer(tmp_path) as tracer:
            sweep = Scheduler(_dag(6), executor=executor).run()
        executor.shutdown()
        assert sweep.ok, sweep.report()
        spans = read_trace(tmp_path, tracer.traces[-1])
        (root,) = [s for s in spans if s.parent is None]
        jobs = [s for s in spans if s.name.startswith("job:")]
        assert len(jobs) == 6
        assert all(j.parent == root.span for j in jobs)
        # Identity tags on every job attempt.
        for job in jobs:
            assert job.tags["job"].startswith("cell/")
            assert job.tags["attempt"] == 1
            assert job.tags["worker"] and job.tags["lease"]
        # Coordinator + at least one worker process in the merged view.
        processes = {(s.host, s.pid) for s in spans}
        assert (root.host, root.pid) in processes
        assert len(processes) >= 2
        payload = trace_events(spans)
        assert validate_trace_events(payload) == []

    def test_sigkilled_worker_leaves_a_healable_trace(self, tmp_path,
                                                      worker_env):
        # The worker dies (SIGKILL, no atexit) after its 2nd completion;
        # whatever it managed to append must still merge and validate.
        worker_env.setenv("REPRO_WORKER_KILL_AFTER", "2")
        executor = RemoteExecutor(workers=2, **FAST)
        with Tracer(tmp_path) as tracer:
            sweep = Scheduler(_dag(8), executor=executor, retries=3).run()
        executor.shutdown()
        assert sweep.ok, sweep.report()
        assert executor.stats["worker_losses"] >= 1
        spans = read_trace(tmp_path, tracer.traces[-1])
        jobs = [s for s in spans if s.name.startswith("job:")]
        # Retried attempts may add extra job spans; every cell appears.
        assert {j.tags["job"] for j in jobs} == \
            {f"cell/{i}" for i in range(8)}
        payload = trace_events(spans)
        assert validate_trace_events(payload) == []


class TestMergeAndRender:
    def _populate(self, tmp_path):
        with Tracer(tmp_path) as tracer:
            with span("sweep:alpha", dag="dag-a"):
                with span("job:a1", job="a1"):
                    pass
        return tracer.traces[-1]

    def test_find_trace_id_by_prefix_name_and_tag(self, tmp_path):
        trace_id = self._populate(tmp_path)
        assert find_trace_id(tmp_path, trace_id[:6]) == trace_id
        assert find_trace_id(tmp_path, "sweep:alpha") == trace_id
        assert find_trace_id(tmp_path, "alpha") == trace_id
        assert find_trace_id(tmp_path, "dag-a") == trace_id
        with pytest.raises(ReproError, match="no trace matches"):
            find_trace_id(tmp_path, "nonesuch")
        with pytest.raises(ReproError, match="no traces"):
            find_trace_id(tmp_path / "empty", "alpha")

    def test_ambiguous_name_resolves_to_the_newest_run(self, tmp_path):
        first = self._populate(tmp_path)
        second = self._populate(tmp_path)
        assert first != second
        assert find_trace_id(tmp_path, "alpha") == second

    def test_orphan_spans_graft_under_the_synthetic_root(self):
        orphan = Span(trace="t", span="child", parent="gone-parent",
                      name="job:x", start_ns=5)
        children = span_children([orphan])
        assert children == {None: [orphan]}
        assert "job:x" in render_tree([orphan])

    def test_list_traces_summarizes_per_trace(self, tmp_path):
        self._populate(tmp_path)
        (summary,) = list_traces(tmp_path)
        assert summary["root"] == "sweep:alpha"
        assert summary["spans"] == 2
        assert summary["open"] == 0
        assert summary["tags"] == {"dag": "dag-a"}

    def test_export_writes_valid_perfetto_json(self, tmp_path):
        self._populate(tmp_path)
        out = tmp_path / "trace.json"
        trace_id, payload = export_trace(tmp_path, "alpha", out)
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        assert validate_trace_events(on_disk) == []
        assert on_disk["otherData"]["traces"] == [trace_id]
        # Process metadata events name each track.
        names = [e["args"]["name"] for e in on_disk["traceEvents"]
                 if e["ph"] == "M"]
        assert len(names) == on_disk["otherData"]["processes"]

    def test_timestamps_are_relative_microseconds(self, tmp_path):
        self._populate(tmp_path)
        payload = trace_events(read_trace(tmp_path))
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)


class TestTraceCLI:
    def _populate(self, tmp_path):
        with Tracer(tmp_path) as tracer:
            with span("sweep:beta", dag="dag-b"):
                with span("job:b1", job="b1"):
                    pass
        return tracer.traces[-1]

    def test_list_show_export(self, tmp_path, capsys):
        trace_id = self._populate(tmp_path)
        assert trace_main(["--dir", str(tmp_path), "list"]) == 0
        assert trace_id in capsys.readouterr().out
        assert trace_main(["--dir", str(tmp_path), "show", "beta"]) == 0
        out = capsys.readouterr().out
        assert "sweep:beta" in out and "  job:b1" in out
        target = tmp_path / "beta.json"
        assert trace_main(["--dir", str(tmp_path), "export", "beta",
                           "--out", str(target)]) == 0
        assert validate_trace_events(json.loads(target.read_text())) == []

    def test_unknown_needle_exits_2(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert trace_main(["--dir", str(tmp_path), "show", "zzz"]) == 2
        assert "no trace matches" in capsys.readouterr().err

    def test_empty_dir_lists_nothing(self, tmp_path, capsys):
        assert trace_main(["--dir", str(tmp_path), "list"]) == 0
        assert "no traces found" in capsys.readouterr().out
