"""Shared machinery for the §6 loop-pipelining transformations.

Each transformation operates on one (loop hyperblock, location class) pair
and rebuilds the class's token circuit from three standard pieces:

- a **generator** loop: a token merge whose back edge circulates the token
  immediately (gated only by the loop predicate), so operation issue is
  decoupled from operation completion;
- a **collector** loop: a token merge accumulating, per iteration, the
  previous accumulation plus the iteration's operation tokens — the loop's
  exit waits for the accumulated token, so termination still means "all
  side effects of all iterations have occurred" (§6.1);
- optionally a **token generator** ``tk(n)`` bounding slip (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.opt.context import OptContext
from repro.pegasus.graph import OutPort
from repro.pegasus import nodes as N
from repro.pegasus.tokens import TokenRelation, combine_ports


@dataclass
class ClassCircuit:
    """The token circuit of one class through one loop hyperblock."""

    class_id: int
    boundary_merge: N.MergeNode
    entry_port: OutPort          # the eta output entering the loop
    back_etas: list[N.EtaNode]   # etas feeding the merge's back inputs
    exit_etas: list[N.EtaNode]   # etas leaving the loop for this class


def find_class_circuit(ctx: OptContext, hb_id: int,
                       class_id: int) -> ClassCircuit | None:
    """Locate the merge/eta token circuit of ``class_id`` around a loop."""
    relation = ctx.relations[hb_id]
    boundary = relation.boundary.get(class_id)
    if boundary is None or not isinstance(boundary.node, N.MergeNode):
        return None
    merge = boundary.node
    if merge.hyperblock != hb_id or not merge.back_inputs:
        return None
    forward_slots = merge.entry_slots()
    if len(forward_slots) != 1:
        return None
    entry_port = merge.inputs[forward_slots[0]]
    if entry_port is None:
        return None
    back_etas = []
    for slot in sorted(merge.back_inputs):
        port = merge.inputs[slot]
        if port is None or not isinstance(port.node, N.EtaNode):
            return None
        back_etas.append(port.node)
    if len(back_etas) != 1:
        return None  # multi-latch loops keep their serial circuit
    exit_etas = [
        node for node in ctx.graph.by_kind(N.EtaNode)
        if node.hyperblock == hb_id and node.value_class == N.TOKEN
        and node.location_class == class_id and node not in back_etas
    ]
    return ClassCircuit(class_id, merge, entry_port, back_etas, exit_etas)


def class_ops(relation: TokenRelation, class_id: int) -> list[N.Node]:
    return [op for op in relation.ops if class_id in relation.classes[op]]


def loop_body_class_profile(ctx: OptContext, header_hb: int,
                            class_id: int) -> tuple[int, int]:
    """(op count, write count) of ``class_id`` in the loop body *outside*
    the header hyperblock.

    A multi-hyperblock loop body can touch the class in regions the header
    circuit does not see; restructuring the header circuit while another
    body region writes the class would break cross-iteration ordering.
    """
    partition = ctx.build.partition
    header = partition.hyperblocks[header_hb]
    loop = header.loop
    if loop is None:
        return 0, 0
    ops = 0
    writes = 0
    for hb in partition.hyperblocks:
        if hb.id == header_hb or hb.entry not in loop.blocks:
            continue
        relation = ctx.relations.get(hb.id)
        if relation is None:
            continue
        for op in relation.ops:
            if class_id in relation.classes[op]:
                ops += 1
                if relation.is_write[op]:
                    writes += 1
    return ops, writes


def only_boundary_deps(relation: TokenRelation, ops: list[N.Node],
                       class_id: int) -> bool:
    """Are the class's ops synchronized only with the iteration boundary?

    Intra-iteration token edges between the class's own ops would make the
    generator transform unsound (it removes nothing but the cross-iteration
    order); edges to *other* classes' ops are fine — those stay in force.
    """
    class_set = set(id(op) for op in ops)
    for op in ops:
        for dep in relation.deps[op]:
            if isinstance(dep, N.Node) and id(dep) in class_set:
                return False
    return True


def install_generator_collector(ctx: OptContext, hb_id: int,
                                circuit: ClassCircuit,
                                issue_sources: dict[int, OutPort] | None = None) -> None:
    """Replace a class's serializing circuit with generator + collector.

    ``issue_sources`` optionally overrides, per op id, the port the op
    draws its issue token from (used by loop decoupling to route one group
    through a ``tk(n)``); ops not listed use the generator merge.
    """
    relation = ctx.relations[hb_id]
    loop_pred = ctx.loop_predicates[hb_id]
    graph = ctx.graph
    ops = class_ops(relation, circuit.class_id)

    # Generator loop: the token circulates gated only by the loop predicate.
    generator = N.MergeNode(None, 2, hb_id, N.TOKEN)
    generator.location_class = circuit.class_id
    graph.add(generator)
    generator_back = graph.add(N.EtaNode(None, generator.out(), loop_pred,
                                         hb_id, N.TOKEN))
    generator_back.location_class = circuit.class_id
    graph.set_input(generator, 0, circuit.entry_port)
    graph.set_input(generator, 1, generator_back.out())
    generator.back_inputs.add(1)
    generator.add_control(graph, loop_pred)

    # Collector loop: accumulate previous iterations + this iteration's ops.
    collector = N.MergeNode(None, 2, hb_id, N.TOKEN)
    collector.location_class = circuit.class_id
    graph.add(collector)
    op_tokens = [_token_out(op) for op in ops]
    accumulated = combine_ports(graph, [collector.out()] + op_tokens, hb_id)
    assert accumulated is not None
    collector_back = graph.add(N.EtaNode(None, accumulated, loop_pred,
                                         hb_id, N.TOKEN))
    collector_back.location_class = circuit.class_id
    graph.set_input(collector, 0, circuit.entry_port)
    graph.set_input(collector, 1, collector_back.out())
    collector.back_inputs.add(1)
    collector.add_control(graph, loop_pred)

    # Rewrite op dependences: issue tokens now come from the generator (or
    # a per-group source), not from the old boundary/frontier chain.
    old_boundary = circuit.boundary_merge.out()
    for op in ops:
        source = (issue_sources or {}).get(op.id, generator.out())
        relation.deps[op] = list(dict.fromkeys(
            source if (isinstance(dep, OutPort) and dep == old_boundary) else dep
            for dep in relation.deps[op]
        ))
    relation.boundary[circuit.class_id] = generator.out()
    relation.pipelined.add(circuit.class_id)

    # Exit etas wait for the accumulated token.
    for eta in circuit.exit_etas:
        graph.set_input(eta, 0, accumulated)

    ctx.rewire_hyperblock(hb_id)

    # The old serializing circuit is now disconnected: remove it.
    _remove_circuit(ctx, circuit)
    ctx.invalidate()


def _token_out(op: N.Node) -> OutPort:
    if isinstance(op, N.LoadNode):
        return op.out(N.LoadNode.TOKEN_OUT)
    assert isinstance(op, N.StoreNode)
    return op.out(N.StoreNode.TOKEN_OUT)


def _remove_circuit(ctx: OptContext, circuit: ClassCircuit) -> None:
    graph = ctx.graph
    merge = circuit.boundary_merge
    # Anything still reading the old merge (stale combines) must be gone by
    # now; sweep orphans first, then detach.
    ctx.sweep_orphan_combines()
    if graph.has_uses(merge.out()):
        return  # conservatively keep the old circuit alive
    for index in range(len(merge.inputs)):
        graph.set_input(merge, index, None)
    graph.remove(merge)
    for eta in circuit.back_etas:
        if not graph.has_uses(eta.out()):
            for index in range(len(eta.inputs)):
                graph.set_input(eta, index, None)
            graph.remove(eta)
    ctx.sweep_orphan_combines()
