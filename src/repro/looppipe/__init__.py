"""§6 — pipelining loops with fine-grained synchronization.

Three transformations, each replacing a loop's per-class token circuit
(which serializes iterations) with structures that let iterations overlap:

- :mod:`readonly` (§6.1): classes only read in the loop split into a token
  *generator* loop and a *collector* loop, so reads from many iterations
  issue simultaneously;
- :mod:`monotone` (§6.2): classes whose accesses advance strictly
  monotonically (Wolfe-style induction analysis) get the same treatment —
  no two iterations touch the same address;
- :mod:`decoupling` (§6.3): accesses at a constant dependence distance
  split into independent loops whose relative slip is bounded dynamically
  by a **token generator** ``tk(n)``.
"""

from repro.looppipe.readonly import ReadOnlySplit
from repro.looppipe.monotone import MonotonePipelining
from repro.looppipe.decoupling import LoopDecoupling

__all__ = ["ReadOnlySplit", "MonotonePipelining", "LoopDecoupling"]
