"""§6.3 — loop decoupling with token generators.

When dependence analysis shows two access groups at a fixed distance of
``d`` iterations (Figure 15: ``a[i]`` and ``a[i+3]``, d = 3), the loop is
"vertically" sliced: each group gets its own independent token loop and the
groups may slip relative to each other. A **token generator** ``tk(d)``
dynamically bounds the slip: the constrained group draws its per-iteration
issue tokens from ``tk``, which holds ``d`` initial credits and gains one
credit whenever the free group completes an iteration. The free group can
run arbitrarily far ahead (extra credits accumulate in the counter); the
constrained group can be at most ``d`` iterations ahead of the free one,
so no dependence is ever violated (Figure 16).

After decoupling, each slice touches strictly monotone addresses, which is
exactly the §6.2 situation — the generator/collector structure built here
is the Figure 17 result.
"""

from __future__ import annotations

from repro.opt.context import OptContext
from repro.pegasus.graph import OutPort
from repro.pegasus import nodes as N
from repro.pegasus.tokens import combine_ports
from repro.looppipe.base import (
    class_ops,
    find_class_circuit,
    install_generator_collector,
    loop_body_class_profile,
    only_boundary_deps,
    _token_out,
)


class LoopDecoupling:
    name = "loop-decoupling"

    def run(self, ctx: OptContext) -> int:
        transformed = 0
        for hb_id, relation in ctx.relations.items():
            if hb_id not in ctx.loop_predicates:
                continue
            induction = ctx.induction(hb_id)
            for class_id in sorted(relation.boundary):
                if class_id in relation.pipelined:
                    continue
                ops = class_ops(relation, class_id)
                if len(ops) < 2:
                    continue
                if not only_boundary_deps(relation, ops, class_id):
                    continue
                other_ops, _ = loop_body_class_profile(ctx, hb_id, class_id)
                if other_ops:
                    continue  # the body touches the class outside the header
                plan = self._plan(ctx, induction, relation, ops)
                if plan is None:
                    continue
                circuit = find_class_circuit(ctx, hb_id, class_id)
                if circuit is None:
                    continue
                self._apply(ctx, hb_id, circuit, plan)
                transformed += 1
                ctx.count("decoupling.classes")
                ctx.count("decoupling.distance", plan[2])
        if transformed:
            ctx.invalidate()
        return transformed

    # ------------------------------------------------------------------

    def _plan(self, ctx: OptContext, induction, relation, ops):
        """Group the class's ops by offset; return (free, constrained, d).

        Requirements: every op decomposes over one common IV with one pace
        that clears every width; exactly two offset groups; the distance is
        a positive whole number of iterations.
        """
        groups: dict[int, list[N.Node]] = {}
        shared_iv = None
        shared_terms = None
        pace = None
        for op in ops:
            decomposition = induction.address_iv_form(ctx.addr_port(op))
            if decomposition is None:
                return None
            iv, coeff, rest = decomposition
            if shared_iv is None:
                shared_iv, pace = iv, coeff * iv.step
                shared_terms = rest.terms
            elif iv.merge is not shared_iv.merge or coeff * iv.step != pace:
                return None
            elif rest.terms != shared_terms:
                return None  # different bases: offsets are incomparable
            if abs(pace) < op.width:  # type: ignore[attr-defined]
                return None
            groups.setdefault(rest.const, []).append(op)
        if pace is None or len(groups) != 2:
            return None
        offsets = sorted(groups)
        delta = offsets[1] - offsets[0]
        if delta % pace != 0:
            return None  # residues never meet: plain monotone handles it
        distance = delta // pace
        if distance == 0:
            return None
        # The group whose conflicting access happens in the *later*
        # iteration is the constrained one.
        if distance > 0:
            free, constrained = groups[offsets[1]], groups[offsets[0]]
        else:
            free, constrained = groups[offsets[0]], groups[offsets[1]]
            distance = -distance
        # Groups must share object roots, else offsets aren't comparable.
        return free, constrained, distance

    # ------------------------------------------------------------------

    def _apply(self, ctx: OptContext, hb_id: int, circuit, plan) -> None:
        free, constrained, distance = plan
        graph = ctx.graph
        loop_pred = ctx.loop_predicates[hb_id]

        # Per-iteration completion token of the free group feeds tk(d).
        free_tokens = [_token_out(op) for op in free]
        free_done = combine_ports(graph, free_tokens, hb_id)
        assert free_done is not None
        generator = graph.add(N.TokenGenNode(distance, loop_pred, free_done,
                                             hb_id))

        issue_sources = {op.id: generator.out() for op in constrained}
        install_generator_collector(ctx, hb_id, circuit,
                                    issue_sources=issue_sources)
