"""§6.1 — pipelining read-only accesses.

If a memory object accessed in a loop appears in no write set, iterations
need not serialize on it: the loop is split into a generator loop (tokens
enabling the reads of all iterations), the reads themselves, and a
collector loop (ensuring the loop terminates only when all reads of all
iterations have occurred) — Figures 12→13.
"""

from __future__ import annotations

from repro.opt.context import OptContext
from repro.pegasus import nodes as N
from repro.looppipe.base import (
    class_ops,
    find_class_circuit,
    install_generator_collector,
    loop_body_class_profile,
    only_boundary_deps,
)


class ReadOnlySplit:
    name = "readonly-split"

    def run(self, ctx: OptContext) -> int:
        transformed = 0
        for hb_id, relation in ctx.relations.items():
            if hb_id not in ctx.loop_predicates:
                continue
            for class_id in sorted(relation.boundary):
                if class_id in relation.pipelined:
                    continue
                ops = class_ops(relation, class_id)
                if not ops:
                    continue
                if any(relation.is_write[op] for op in ops):
                    continue
                if any(not isinstance(op, N.LoadNode) for op in ops):
                    continue
                if not only_boundary_deps(relation, ops, class_id):
                    continue
                # Reads elsewhere in a multi-hyperblock body are fine
                # (reads always commute); writes are not.
                _, other_writes = loop_body_class_profile(ctx, hb_id, class_id)
                if other_writes:
                    continue
                circuit = find_class_circuit(ctx, hb_id, class_id)
                if circuit is None:
                    continue
                install_generator_collector(ctx, hb_id, circuit)
                transformed += 1
                ctx.count("readonly-split.classes")
        return transformed
