"""§6.2 — pipelining via address monotonicity.

Writes to strictly monotone addresses never collide across iterations, so
the class needs no cross-iteration serialization: the same generator +
collector structure as §6.1 applies (Figures 13→14). The analysis is the
extended induction-variable analysis of Wolfe, provided by
:class:`~repro.analysis.induction.LoopInduction`.

Soundness conditions, checked per (loop, class):

- every access decomposes as ``pace·iv + invariant`` and the pace clears
  the access width (no self-overlap across iterations);
- every *pair* of accesses is cross-iteration conflict-free: same pace and
  an offset difference that is not congruent to zero modulo the pace
  (distance-0, i.e. same-iteration, conflicts are fine — they are ordered
  by intra-iteration token edges, which this transform preserves... and
  when there are none, by the §4.3 disambiguation that removed them);
- accesses carry no leftover intra-class token edges (see
  :func:`~repro.looppipe.base.only_boundary_deps`).

Classes with a genuine nonzero dependence distance are left for loop
decoupling (§6.3).
"""

from __future__ import annotations

from repro.opt.context import OptContext
from repro.looppipe.base import (
    class_ops,
    find_class_circuit,
    install_generator_collector,
    loop_body_class_profile,
    only_boundary_deps,
)


class MonotonePipelining:
    name = "monotone-pipelining"

    def run(self, ctx: OptContext) -> int:
        transformed = 0
        for hb_id, relation in ctx.relations.items():
            if hb_id not in ctx.loop_predicates:
                continue
            induction = ctx.induction(hb_id)
            for class_id in sorted(relation.boundary):
                if class_id in relation.pipelined:
                    continue
                ops = class_ops(relation, class_id)
                if not ops:
                    continue
                if not only_boundary_deps(relation, ops, class_id):
                    continue
                other_ops, _ = loop_body_class_profile(ctx, hb_id, class_id)
                if other_ops:
                    continue  # the body touches the class outside the header
                if not self._iterations_independent(ctx, induction, relation,
                                                    ops):
                    continue
                circuit = find_class_circuit(ctx, hb_id, class_id)
                if circuit is None:
                    continue
                install_generator_collector(ctx, hb_id, circuit)
                transformed += 1
                ctx.count("monotone.classes")
        return transformed

    # ------------------------------------------------------------------

    def _iterations_independent(self, ctx: OptContext, induction, relation,
                                ops) -> bool:
        for op in ops:
            addr = ctx.addr_port(op)
            if not induction.is_monotone_non_overlapping(addr, op.width):
                return False
        for i, first in enumerate(ops):
            for second in ops[i:]:
                if not (relation.is_write[first] or relation.is_write[second]):
                    continue  # reads always commute, across iterations too
                distance = induction.dependence_distance(
                    ctx.addr_port(first), first.width,
                    ctx.addr_port(second), second.width,
                )
                if first is second:
                    if distance != 0:
                        return False
                    continue
                if distance is None:
                    # None means "never conflict" only when both decompose;
                    # monotonicity above guarantees they do, and unequal
                    # pace was rejected there as well (same-IV forms), so
                    # None here is a provable miss only for offset
                    # non-divisibility. Verify the pair shares the IV.
                    da = induction.address_iv_form(ctx.addr_port(first))
                    db = induction.address_iv_form(ctx.addr_port(second))
                    assert da is not None and db is not None
                    if da[0].merge is not db[0].merge or da[1] != db[1]:
                        return False  # different IVs: unknown relation
                    continue
                if distance != 0:
                    return False  # genuine loop-carried dependence: §6.3
        return True
