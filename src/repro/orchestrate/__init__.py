"""Sweep orchestration: explicit job DAGs over the experiment harness.

The package the ROADMAP's "distributed sweep orchestration" item names:
figure sweeps declare compile → simulate → aggregate job graphs
(:mod:`~repro.orchestrate.dag`), a scheduler runs them with retry,
timeout, DEGRADED propagation, and checkpoint/resume
(:mod:`~repro.orchestrate.scheduler`, :mod:`~repro.orchestrate.journal`)
over pluggable executors (:mod:`~repro.orchestrate.executors`), and the
``repro sweep`` CLI (:mod:`~repro.orchestrate.sweeps`) drives the named
sweeps end to end.
"""

from repro.orchestrate.dag import DagError, JobDAG, JobSpec
from repro.orchestrate.executors import (
    Executor,
    InlineExecutor,
    PoolExecutor,
    make_executor,
)
from repro.orchestrate.journal import Journal
from repro.orchestrate.scheduler import JobResult, Scheduler, SweepResult

__all__ = [
    "DagError",
    "Executor",
    "InlineExecutor",
    "JobDAG",
    "JobResult",
    "JobSpec",
    "Journal",
    "PoolExecutor",
    "Scheduler",
    "SweepResult",
    "make_executor",
]
