"""Sweep orchestration: explicit job DAGs over the experiment harness.

The package the ROADMAP's "distributed sweep orchestration" item names:
figure sweeps declare compile → simulate → aggregate job graphs
(:mod:`~repro.orchestrate.dag`), a scheduler runs them with retry,
timeout, DEGRADED propagation, and checkpoint/resume
(:mod:`~repro.orchestrate.scheduler`, :mod:`~repro.orchestrate.journal`)
over pluggable executors (:mod:`~repro.orchestrate.executors`) — local
inline, self-healing process pool, or the fault-tolerant socket worker
pool (:mod:`~repro.orchestrate.remote` / :mod:`~repro.orchestrate.worker`)
with lease-based job recovery and cross-host journal-shard merge — and
the ``repro sweep`` CLI (:mod:`~repro.orchestrate.sweeps`) drives the
named sweeps end to end.
"""

from repro.orchestrate.dag import DagError, JobDAG, JobSpec
from repro.orchestrate.executors import (
    Executor,
    InlineExecutor,
    PoolExecutor,
    make_executor,
)
from repro.orchestrate.journal import Journal, merge_shards
from repro.orchestrate.remote import RemoteExecutor, WorkerLost
from repro.orchestrate.scheduler import JobResult, Scheduler, SweepResult

__all__ = [
    "DagError",
    "Executor",
    "InlineExecutor",
    "JobDAG",
    "JobResult",
    "JobSpec",
    "Journal",
    "PoolExecutor",
    "RemoteExecutor",
    "Scheduler",
    "SweepResult",
    "WorkerLost",
    "make_executor",
    "merge_shards",
]
