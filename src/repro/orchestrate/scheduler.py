"""The sweep scheduler: run a JobDAG to completion, whatever happens.

Execution policy, in one place instead of hand-rolled per figure:

- **ready-set dispatch** — every job whose dependencies completed OK is
  submitted to the executor; completions unlock dependents incrementally
  (no barrier between waves);
- **bounded retry with jittered backoff** — transient failures (a
  killed worker, a revoked lease, an OSError) are retried up to
  ``retries`` times; the sleep before attempt *n* is drawn uniformly
  from ``[0, backoff * (n - 1)]`` (full jitter, seeded per job key so
  it is deterministic yet decorrelated — N workers retrying one flaky
  job do not stampede in lockstep); deterministic failures (any
  :class:`~repro.errors.ReproError`) and cooperative timeouts are
  terminal on the first attempt;
- **DEGRADED propagation** — a job whose dependency degraded is skipped
  (transitively) rather than run against missing inputs; ``tolerant``
  jobs (aggregates) run anyway with ``None`` for each degraded input;
- **checkpoint/resume** — completed jobs are appended to a
  :class:`~repro.orchestrate.journal.Journal` keyed by content-addressed
  job key; a rerun replays them as ``resumed`` without executing;
- **provenance** — under an active
  :class:`~repro.observe.telemetry.TelemetrySession` every job execution
  is tagged with the DAG id, job name, attempt number, and executor
  backend, worker processes included, so a whole sweep is one diffable,
  provenance-complete run-set.

Two chaos hooks exist for CI and the crash-resume tests (and nothing
else): ``REPRO_SWEEP_KILL_AFTER=<n>`` SIGKILLs the scheduler process
after the *n*-th freshly-executed job is journaled, and
``REPRO_SWEEP_FLAKE=<substr>`` makes the first attempt of every matching
job raise an injected ``OSError``. The distributed failure matrix has
its own worker-side hooks (``REPRO_WORKER_KILL_AFTER``,
``REPRO_WORKER_STALL``, ``REPRO_NET_DROP_AFTER``) — see
:mod:`repro.orchestrate.worker`.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError, SimulationTimeout
from repro.orchestrate.dag import JobDAG, JobSpec
from repro.orchestrate.executors import Executor, InlineExecutor
from repro.orchestrate.journal import Journal, merge_shards

#: Statuses carrying a value.
OK_STATUSES = ("ok", "resumed")

#: Environment chaos hooks (see module docstring).
KILL_AFTER_ENV = "REPRO_SWEEP_KILL_AFTER"
FLAKE_ENV = "REPRO_SWEEP_FLAKE"

#: Filled by :mod:`repro.orchestrate.worker` in remote worker processes
#: (worker id, host, lease id); :func:`_run_job` folds it into the
#: telemetry tags so every RunRecord names the lease that produced it.
_worker_provenance: dict = {}


@dataclass
class JobResult:
    """Terminal state of one job in one scheduler run."""

    name: str
    status: str              # ok | resumed | timeout | error | skipped
    value: object = None
    error: str | None = None
    attempts: int = 0
    elapsed: float = 0.0
    executor: str | None = None
    category: str = "job"
    #: The original exception object for failed jobs (never journaled;
    #: lets strict callers re-raise instead of wrapping the message).
    exception: BaseException | None = None
    #: Distributed provenance: which worker/host executed the final
    #: attempt, under which lease (None on in-process executors).
    worker: str | None = None
    host: str | None = None
    lease: str | None = None

    @property
    def ok(self) -> bool:
        return self.status in OK_STATUSES

    @property
    def degraded(self) -> bool:
        return not self.ok

    def describe(self) -> str:
        if self.status == "resumed":
            return "resumed from journal"
        if self.status == "ok":
            retried = (f" ({self.attempts} attempts)"
                       if self.attempts > 1 else "")
            where = f" on {self.worker}" if self.worker else ""
            return f"ok in {self.elapsed:.2f}s{retried}{where}"
        if self.status == "skipped":
            return f"SKIPPED: {self.error or 'upstream degraded'}"
        detail = self.error or "unknown failure"
        return (f"{self.status.upper()} after {self.attempts} "
                f"attempt{'s' if self.attempts != 1 else ''}: {detail}")


@dataclass
class SweepResult:
    """Everything one :meth:`Scheduler.run` produced."""

    dag_name: str
    dag_id: str
    executor: str
    results: dict[str, JobResult] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)

    def __getitem__(self, name: str) -> JobResult:
        return self.results[name]

    def value(self, name: str):
        result = self.results.get(name)
        return result.value if result is not None and result.ok else None

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results.values())

    @property
    def degraded(self) -> list[JobResult]:
        return [self.results[name] for name in self.order
                if self.results[name].degraded]

    @property
    def retries(self) -> int:
        """Extra attempts spent across the whole sweep."""
        return sum(max(0, result.attempts - 1)
                   for result in self.results.values())

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results.values():
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    def report(self) -> str:
        """One line per job plus a summary — the sweep post-mortem."""
        lines = [f"{name}: {self.results[name].describe()}"
                 for name in self.order]
        counts = self.counts()
        summary = ", ".join(f"{count} {status}"
                            for status, count in sorted(counts.items()))
        lines.append(f"{summary}; {self.retries} retries; "
                     f"executor {self.executor}; dag {self.dag_id[:12]}")
        return "\n".join(lines)


class Scheduler:
    """Run a :class:`~repro.orchestrate.dag.JobDAG` under one policy.

    ``retries`` is the number of *extra* attempts a transiently-failing
    job gets (per-spec override wins); the sleep before attempt *n* is
    drawn uniformly from ``[0, backoff * (n - 1)]`` — full jitter over
    the linear ceiling, seeded by ``jitter_seed`` and the job's content
    key, so the spread is deterministic per job yet decorrelated across
    jobs. ``wall_limit`` is the cooperative per-attempt budget, injected
    as a ``wall_limit=`` kwarg into jobs that accept one; on executors
    that cannot be trusted to honor it (the process pool), a job
    ``hard_grace`` seconds past its wall-limit has its worker reaped and
    is recorded ``timeout``. ``journal`` enables checkpoint/resume —
    resuming first folds any per-worker journal shards from a previous
    distributed run into the main journal; ``key_by="name"`` journals by
    job name instead of content key (the legacy-checkpoint compatibility
    mode the :class:`~repro.resilience.harness.ExperimentRunner` adapter
    uses).
    """

    def __init__(self, dag: JobDAG, executor: Executor | None = None,
                 journal: Journal | str | os.PathLike | None = None,
                 *, retries: int = 0, backoff: float = 0.0,
                 wall_limit: float | None = None,
                 key_by: str = "content", jitter_seed: int = 0,
                 hard_grace: float = 5.0, tags: dict | None = None):
        self.dag = dag
        #: Extra telemetry tags stamped on every job execution of this
        #: run (the compile service tags {service, client, request});
        #: they ride the same path as the dag/job/attempt tags, so they
        #: survive the process boundary into pool and remote workers.
        self.extra_tags = dict(tags or {})
        self.executor = executor if executor is not None else InlineExecutor()
        if isinstance(journal, (str, os.PathLike)):
            journal = Journal(journal)
        self.journal = journal
        self.retries = max(0, retries)
        self.backoff = max(0.0, backoff)
        self.wall_limit = wall_limit
        self.jitter_seed = jitter_seed
        self.hard_grace = max(0.0, hard_grace)
        if key_by not in ("content", "name"):
            raise ValueError(f"key_by must be 'content' or 'name', "
                             f"not {key_by!r}")
        self.key_by = key_by
        kill_after = os.environ.get(KILL_AFTER_ENV)
        self._kill_after = int(kill_after) if kill_after else None

    def _backoff_delay(self, spec: JobSpec, attempt: int) -> float:
        """Full-jitter retry delay before ``attempt`` (0 for the first).

        Deterministic for a given ``jitter_seed`` + job key + attempt,
        but decorrelated across jobs: a fleet of workers retrying the
        same transiently-failing sweep spreads out instead of stampeding
        in lockstep.
        """
        if attempt <= 1 or not self.backoff:
            return 0.0
        ceiling = self.backoff * (attempt - 1)
        rng = random.Random(f"{self.jitter_seed}\x1f{spec.key}\x1f{attempt}")
        return rng.uniform(0.0, ceiling)

    def _shard_dir(self) -> Path | None:
        """Where this sweep's per-worker journal shards live."""
        if self.journal is None:
            return None
        return self.journal.path.parent / self.dag.name

    # ------------------------------------------------------------------

    def run(self, *, resume: bool = True) -> SweepResult:
        """Execute the DAG; returns one :class:`JobResult` per job.

        Under an active :class:`~repro.observe.tracing.Tracer` the whole
        run is one root span (``sweep:<name>``); each submit captures
        the ambient trace position and ships it to the worker, so every
        job attempt — pool or remote — parents under this root.
        """
        from repro.observe.tracing import span
        with span(f"sweep:{self.dag.name}", dag=self.dag.dag_id,
                  executor=self.executor.name, **self.extra_tags):
            return self._run(resume=resume)

    def _run(self, *, resume: bool) -> SweepResult:
        self.dag.validate()
        order = self.dag.topo_order()
        dag_id = self.dag.dag_id
        sweep = SweepResult(dag_name=self.dag.name, dag_id=dag_id,
                            executor=self.executor.name,
                            order=[spec.name for spec in self.dag])
        results = sweep.results
        attempts: dict[str, int] = {}
        started: dict[str, float] = {}
        outstanding: dict = {}  # future -> spec
        deadlines: dict = {}    # future -> hard wall-limit deadline
        session_spec = self._worker_session_spec()
        executed_ok = 0
        shard_dir = self._shard_dir()
        from repro.observe.metrics import metrics
        from repro.observe.tracing import propagation_context

        if resume and self.journal is not None and shard_dir is not None:
            # A previous (distributed) run may have finished work whose
            # results never crossed the wire: fold the per-worker shards
            # in first so the replay scan below sees them.
            merge_shards(self.journal, shard_dir)

        if resume and self.journal is not None:
            for spec in order:
                if spec.transient:
                    continue
                key = self._key(spec)
                if self.journal.has_value(key):
                    entry = self.journal.get(key)
                    results[spec.name] = JobResult(
                        name=spec.name, status="resumed",
                        value=self.journal.value(key),
                        attempts=entry.get("attempts", 0),
                        executor=self.executor.name,
                        category=spec.category)

        def submit(spec: JobSpec) -> None:
            attempt = attempts.get(spec.name, 0) + 1
            attempts[spec.name] = attempt
            started.setdefault(spec.name, time.monotonic())
            delay = self._backoff_delay(spec, attempt)
            if delay:
                time.sleep(delay)
            tags = {**self.extra_tags,
                    "dag": dag_id, "job": spec.name, "attempt": attempt,
                    "executor": self.executor.name}
            degraded = getattr(self.executor, "degraded_reason", None)
            if degraded:
                tags["degraded"] = degraded
            kwargs = dict(spec.kwargs)
            if spec.pass_deps:
                kwargs["deps"] = [results[dep].value if results[dep].ok
                                  else None for dep in spec.deps]
            wall_limit = (spec.wall_limit if spec.wall_limit is not None
                          else self.wall_limit)
            meta = {"key": self._key(spec), "name": spec.name,
                    "attempt": attempt, "dag": dag_id,
                    "wall_limit": wall_limit}
            if shard_dir is not None and not spec.transient \
                    and getattr(self.executor, "shards", False):
                meta["shard_dir"] = str(shard_dir)
            future = self.executor.submit(_run_job, spec.fn, spec.args,
                                          kwargs, wall_limit, tags,
                                          session_spec,
                                          propagation_context(), meta=meta)
            if wall_limit is not None \
                    and getattr(self.executor, "reaps_on_timeout", False) \
                    and not getattr(self.executor, "leased", False):
                deadlines[future] = time.monotonic() + wall_limit \
                    + self.hard_grace
            outstanding[future] = spec

        def finalize(spec: JobSpec, result: JobResult) -> None:
            results[spec.name] = result
            registry = metrics()
            if registry is not None:
                registry.counter("repro_sweep_jobs_total",
                                 status=result.status).inc()
                if result.attempts > 1:
                    registry.counter("repro_sweep_retries_total").inc(
                        result.attempts - 1)
                if result.status == "ok":
                    registry.histogram("repro_job_seconds").observe(
                        result.elapsed)
            if self.journal is not None and not spec.transient \
                    and result.status != "resumed":
                self.journal.record(self._key(spec), name=spec.name,
                                    status=result.status,
                                    value=result.value,
                                    attempts=result.attempts,
                                    elapsed=result.elapsed,
                                    error=result.error,
                                    worker=result.worker,
                                    host=result.host,
                                    lease=result.lease)
            if result.status == "ok":
                nonlocal executed_ok
                executed_ok += 1
                if self._kill_after is not None \
                        and executed_ok >= self._kill_after:
                    import signal
                    os.kill(os.getpid(), signal.SIGKILL)

        while len(results) < len(self.dag.jobs):
            submitted_names = {spec.name for spec in outstanding.values()}
            for spec in order:
                if spec.name in results or spec.name in submitted_names:
                    continue
                dep_results = [results.get(dep) for dep in spec.deps]
                if any(dep is None for dep in dep_results):
                    continue  # a dependency is still pending
                failed = [dep for dep, res in zip(spec.deps, dep_results)
                          if res.degraded]
                if failed and not spec.tolerant:
                    finalize(spec, JobResult(
                        name=spec.name, status="skipped",
                        error="upstream degraded: " + ", ".join(failed),
                        executor=self.executor.name,
                        category=spec.category))
                    continue
                submit(spec)
                submitted_names.add(spec.name)
            if not outstanding:
                continue  # skip-propagation made progress; re-scan
            timeout = None
            pending_deadlines = [deadlines[future] for future in outstanding
                                 if future in deadlines]
            if pending_deadlines:
                timeout = max(0.0, min(pending_deadlines) - time.monotonic())
            done, _ = wait(list(outstanding), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for future in [f for f in outstanding
                           if f not in done
                           and deadlines.get(f, now + 1) <= now]:
                # Hard wall-limit: the job blew through its cooperative
                # budget plus grace — reap whatever process is running
                # it (no orphaned workers) and record the timeout.
                spec = outstanding.pop(future)
                deadlines.pop(future, None)
                self.executor.reap(future)
                finalize(spec, JobResult(
                    name=spec.name, status="timeout",
                    error=f"hard wall-limit: no result "
                          f"{self.hard_grace:.1f}s past the "
                          f"{spec.wall_limit or self.wall_limit}s budget; "
                          f"worker reaped",
                    attempts=attempts[spec.name],
                    elapsed=now - started[spec.name],
                    executor=self.executor.name, category=spec.category))
            for future in done:
                spec = outstanding.pop(future)
                deadlines.pop(future, None)
                self._complete(spec, future, attempts, started,
                               submit, finalize)
        return sweep

    # ------------------------------------------------------------------

    def _complete(self, spec, future, attempts, started,
                  submit, finalize) -> None:
        """Classify one finished future: finalize or retry."""
        attempt = attempts[spec.name]
        elapsed = time.monotonic() - started[spec.name]
        provenance = getattr(future, "_repro_provenance", None) or {}
        base = dict(name=spec.name, attempts=attempt, elapsed=elapsed,
                    executor=self.executor.name, category=spec.category,
                    worker=provenance.get("worker"),
                    host=provenance.get("host"),
                    lease=provenance.get("lease"))
        try:
            value = future.result()
        except SimulationTimeout as error:
            # A cooperative timeout will time out again: terminal.
            finalize(spec, JobResult(status="timeout", error=str(error),
                                     exception=error, **base))
        except BrokenProcessPool as error:
            self.executor.reset()
            self._retry_or_fail(spec, error, attempt, submit, finalize, base)
        except ReproError as error:
            # Deterministic failure (compile bug, deadlock, golden
            # mismatch): retrying cannot help.
            finalize(spec, JobResult(
                status="error", error=f"{type(error).__name__}: {error}",
                exception=error, **base))
        except Exception as error:  # noqa: BLE001 — isolation boundary
            self._retry_or_fail(spec, error, attempt, submit, finalize, base)
        else:
            finalize(spec, JobResult(status="ok", value=value, **base))

    def _retry_or_fail(self, spec, error, attempt, submit, finalize,
                       base) -> None:
        budget = spec.retries if spec.retries is not None else self.retries
        if attempt <= budget:
            submit(spec)  # environmental flake: retry within budget
            return
        finalize(spec, JobResult(
            status="error", error=f"{type(error).__name__}: {error}",
            exception=error, **base))

    def _key(self, spec: JobSpec) -> str:
        return spec.name if self.key_by == "name" else spec.key

    def _worker_session_spec(self) -> dict | None:
        """Ambient telemetry session, serialized for worker processes."""
        if not self.executor.remote:
            return None
        from repro.observe.telemetry import current_session
        session = current_session()
        if session is None:
            return None
        return {"root": str(session.store.root),
                "session_id": session.session_id,
                "label": session.label,
                "record_compiles": session.record_compiles,
                "pid": os.getpid()}


# ----------------------------------------------------------------------
# The in-worker job wrapper. Module-level so it pickles into pool
# workers; everything environment-dependent (wall-limit injection,
# telemetry re-establishment, flake injection) happens here, on the
# process that actually runs the job.


def _run_job(fn, args, kwargs, wall_limit, tags, session_spec,
             trace_ctx=None):
    _maybe_flake(tags)
    if _worker_provenance:
        # Running inside a remote worker: tag the RunRecords with the
        # worker id, host, and lease that produced them.
        tags = {**tags, **_worker_provenance}
    if wall_limit is not None and _accepts_wall_limit(fn) \
            and "wall_limit" not in kwargs:
        kwargs = dict(kwargs, wall_limit=wall_limit)
    from repro.observe.telemetry import telemetry_tags
    from repro.observe.tracing import adopt_context, span
    if session_spec is not None and os.getpid() != session_spec["pid"]:
        # Worker process of a recorded sweep: rebuild the parent's
        # session identity so RunRecords land in the same run-set. Each
        # worker writes its own segment file (suffix ``.w<pid>``) to
        # keep concurrent appends from interleaving — a forked worker
        # inherits the parent's session object, so the pid check (not
        # ``current_session() is None``) decides.
        from repro.observe.store import TelemetryStore
        from repro.observe.telemetry import TelemetrySession
        session = TelemetrySession(
            store=TelemetryStore(session_spec["root"]),
            label=session_spec["label"],
            record_compiles=session_spec.get("record_compiles", True))
        session.session_id = session_spec["session_id"]
        session.segment = f"{session_spec['session_id']}.w{os.getpid()}"
        with session:
            with adopt_context(trace_ctx), telemetry_tags(**tags):
                with span(f"job:{tags['job']}", **tags):
                    return fn(*args, **kwargs)
    with adopt_context(trace_ctx), telemetry_tags(**tags):
        with span(f"job:{tags['job']}", **tags):
            return fn(*args, **kwargs)


def _maybe_flake(tags) -> None:
    """CI chaos hook: fail the first attempt of matching jobs."""
    needle = os.environ.get(FLAKE_ENV)
    if needle and needle in tags["job"] and tags["attempt"] == 1:
        raise OSError(f"injected transient flake for {tags['job']}")


def _accepts_wall_limit(fn) -> bool:
    import inspect
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind == parameter.VAR_KEYWORD:
            return True
        if parameter.name == "wall_limit":
            return True
    return False
