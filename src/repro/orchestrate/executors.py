"""Pluggable executor backends for the sweep scheduler.

An executor turns ``submit(fn, *args, **kwargs)`` into a
:class:`concurrent.futures.Future`; the scheduler is written against
exactly that surface, so backends are interchangeable:

- :class:`InlineExecutor` runs the job in the calling process before
  ``submit`` returns (a pre-completed future) — zero isolation, zero
  overhead, lambdas welcome;
- :class:`PoolExecutor` fans out over a ``ProcessPoolExecutor``, heals
  itself after a killed worker (the pool is torn down and rebuilt on the
  next submit), and degrades to inline execution in sandboxes without
  process primitives or after repeated pool deaths.

The multi-host backend the interface was sized for lives in
:mod:`repro.orchestrate.remote`: :class:`RemoteExecutor` ships pickled
payloads to a socket worker pool with lease-based recovery, and
``make_executor("remote")`` resolves to it.
"""

from __future__ import annotations

import os
import signal
from concurrent.futures import Future, ProcessPoolExecutor

#: Pool rebuilds tolerated before PoolExecutor degrades to inline.
MAX_POOL_DEATHS = 3


class Executor:
    """Backend interface: ``submit`` returns a standard ``Future``."""

    #: Telemetry/report label; mutable so a degraded backend can say so.
    name = "abstract"
    #: True when jobs run in another process: payloads must pickle and
    #: ambient telemetry sessions must be re-established worker-side.
    remote = False
    #: True when the backend revokes leases itself (heartbeats, wall
    #: deadlines); the scheduler then skips its own hard-timeout reaping.
    leased = False
    #: True when workers journal completions to per-worker shard files
    #: the scheduler should merge on resume.
    shards = False
    #: True when the scheduler should enforce a hard wall-limit deadline
    #: by calling :meth:`reap` on overdue futures.
    reaps_on_timeout = False
    #: Why the backend fell back to inline execution (None = it didn't);
    #: propagated into telemetry tags as ``degraded``.
    degraded_reason: str | None = None

    def submit(self, fn, *args, meta=None, **kwargs) -> Future:
        """Run ``fn(*args, **kwargs)`` somewhere; ``meta`` carries
        scheduler-side job identity (content key, attempt, shard dir)
        for backends that journal or lease — others ignore it."""
        raise NotImplementedError

    def reset(self) -> None:
        """Called after a backend-infrastructure failure (dead worker)."""

    def reap(self, future: Future | None = None) -> None:
        """Kill whatever is (or may be) executing ``future`` — called by
        the scheduler when a job blows through its hard wall-limit, so a
        wedged worker process cannot outlive its job."""

    def shutdown(self) -> None:
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class InlineExecutor(Executor):
    """Run each job synchronously in the calling process."""

    name = "inline"
    remote = False

    def submit(self, fn, *args, meta=None, **kwargs) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            result = fn(*args, **kwargs)
        except Exception as error:  # noqa: BLE001 — delivered via result()
            future.set_exception(error)
        else:
            future.set_result(result)
        return future


class PoolExecutor(Executor):
    """Process-pool backend with self-healing and inline degradation."""

    remote = True
    reaps_on_timeout = True

    def __init__(self, max_workers: int | None = None, mp_context=None):
        self.max_workers = max_workers or os.cpu_count() or 1
        self.name = f"process-pool[{self.max_workers}]"
        self.degraded_reason: str | None = None
        #: Optional multiprocessing context. Long-running hosts with
        #: open sockets (the compile service) pass a forkserver context
        #: so workers never inherit client connection fds — a forked
        #: worker holding a duplicate fd keeps the peer's EOF from ever
        #: arriving after the server closes its copy.
        self.mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._inline: InlineExecutor | None = None
        self._deaths = 0

    def submit(self, fn, *args, meta=None, **kwargs) -> Future:
        pool = self._ensure_pool()
        if pool is None:
            return self._fallback().submit(fn, *args, **kwargs)
        try:
            future = pool.submit(fn, *args, **kwargs)
        except (RuntimeError, OSError):
            # Pool died between our health check and the submit.
            self.reset()
            return self._fallback().submit(fn, *args, **kwargs)
        future._repro_remote = True
        return future

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._inline is not None:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=self.mp_context)
            except (OSError, PermissionError, NotImplementedError,
                    ValueError):
                # No process primitives (restricted sandbox).
                self._degrade("no process primitives")
                return None
        return self._pool

    def reset(self) -> None:
        """Tear down a broken pool; the next submit rebuilds or degrades.

        The workers are SIGKILLed explicitly: ``shutdown(wait=False)``
        on a pool with a *wedged* child would leave that child running
        as an orphan until interpreter exit — a timed-out job must not
        outlive its sweep.
        """
        self._deaths += 1
        pool, self._pool = self._pool, None
        if pool is not None:
            self._kill_workers(pool)
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001 — already broken
                pass
        if self._deaths >= MAX_POOL_DEATHS:
            self._degrade(f"{self._deaths} pool deaths")

    def reap(self, future: Future | None = None) -> None:
        """Hard wall-limit enforcement: kill the pool's worker processes
        (one of them is running the overdue job) and rebuild. In-flight
        siblings fail with ``BrokenProcessPool`` and are retried as
        transient by the scheduler."""
        self.reset()

    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        for pid in list(getattr(pool, "_processes", None) or {}):
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass

    def _degrade(self, reason: str) -> None:
        if self._inline is None:
            self._inline = InlineExecutor()
            self.degraded_reason = reason
            self.name = f"{self.name}->inline ({reason})"

    def _fallback(self) -> InlineExecutor:
        self._degrade("fallback")
        return self._inline

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(kind: str | Executor | None, *,
                  max_workers: int | None = None,
                  listen: str | tuple[str, int] | None = None) -> Executor:
    """Resolve an executor spec: an instance, ``"inline"``,
    ``"process"``/``"process-pool"``, or ``"remote"`` (``None`` means
    inline). ``listen`` (``"host:port"`` or a tuple) makes the remote
    coordinator accept workers from other hosts."""
    if isinstance(kind, Executor):
        return kind
    if kind in (None, "inline"):
        return InlineExecutor()
    if kind in ("process", "process-pool", "pool"):
        return PoolExecutor(max_workers=max_workers)
    if kind in ("remote", "remote-pool", "socket"):
        from repro.orchestrate.remote import RemoteExecutor
        if isinstance(listen, str):
            host, _, port = listen.rpartition(":")
            listen = (host or "0.0.0.0", int(port))
        workers = max_workers if max_workers is not None else 2
        return RemoteExecutor(workers=workers, listen=listen)
    raise ValueError(f"unknown executor {kind!r} "
                     "(expected 'inline', 'process', or 'remote')")
