"""Pluggable executor backends for the sweep scheduler.

An executor turns ``submit(fn, *args, **kwargs)`` into a
:class:`concurrent.futures.Future`; the scheduler is written against
exactly that surface, so backends are interchangeable:

- :class:`InlineExecutor` runs the job in the calling process before
  ``submit`` returns (a pre-completed future) — zero isolation, zero
  overhead, lambdas welcome;
- :class:`PoolExecutor` fans out over a ``ProcessPoolExecutor``, heals
  itself after a killed worker (the pool is torn down and rebuilt on the
  next submit), and degrades to inline execution in sandboxes without
  process primitives or after repeated pool deaths.

The interface is deliberately sized so a multi-host backend (one that
ships the payload to a remote agent and returns a future over the
reply) can slot in without touching the scheduler.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor

#: Pool rebuilds tolerated before PoolExecutor degrades to inline.
MAX_POOL_DEATHS = 3


class Executor:
    """Backend interface: ``submit`` returns a standard ``Future``."""

    #: Telemetry/report label; mutable so a degraded backend can say so.
    name = "abstract"
    #: True when jobs run in another process: payloads must pickle and
    #: ambient telemetry sessions must be re-established worker-side.
    remote = False

    def submit(self, fn, *args, **kwargs) -> Future:
        raise NotImplementedError

    def reset(self) -> None:
        """Called after a backend-infrastructure failure (dead worker)."""

    def shutdown(self) -> None:
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class InlineExecutor(Executor):
    """Run each job synchronously in the calling process."""

    name = "inline"
    remote = False

    def submit(self, fn, *args, **kwargs) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            result = fn(*args, **kwargs)
        except Exception as error:  # noqa: BLE001 — delivered via result()
            future.set_exception(error)
        else:
            future.set_result(result)
        return future


class PoolExecutor(Executor):
    """Process-pool backend with self-healing and inline degradation."""

    remote = True

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers or os.cpu_count() or 1
        self.name = f"process-pool[{self.max_workers}]"
        self._pool: ProcessPoolExecutor | None = None
        self._inline: InlineExecutor | None = None
        self._deaths = 0

    def submit(self, fn, *args, **kwargs) -> Future:
        pool = self._ensure_pool()
        if pool is None:
            return self._fallback().submit(fn, *args, **kwargs)
        try:
            future = pool.submit(fn, *args, **kwargs)
        except (RuntimeError, OSError):
            # Pool died between our health check and the submit.
            self.reset()
            return self._fallback().submit(fn, *args, **kwargs)
        future._repro_remote = True
        return future

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._inline is not None:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers)
            except (OSError, PermissionError, NotImplementedError):
                # No process primitives (restricted sandbox).
                self._degrade("no process primitives")
                return None
        return self._pool

    def reset(self) -> None:
        """Tear down a broken pool; the next submit rebuilds or degrades."""
        self._deaths += 1
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001 — already broken
                pass
        if self._deaths >= MAX_POOL_DEATHS:
            self._degrade(f"{self._deaths} pool deaths")

    def _degrade(self, reason: str) -> None:
        if self._inline is None:
            self._inline = InlineExecutor()
            self.name = f"{self.name}->inline ({reason})"

    def _fallback(self) -> InlineExecutor:
        self._degrade("fallback")
        return self._inline

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(kind: str | Executor | None, *,
                  max_workers: int | None = None) -> Executor:
    """Resolve an executor spec: an instance, ``"inline"``, or
    ``"process"``/``"process-pool"`` (``None`` means inline)."""
    if isinstance(kind, Executor):
        return kind
    if kind in (None, "inline"):
        return InlineExecutor()
    if kind in ("process", "process-pool", "pool"):
        return PoolExecutor(max_workers=max_workers)
    raise ValueError(f"unknown executor {kind!r} "
                     "(expected 'inline' or 'process')")
