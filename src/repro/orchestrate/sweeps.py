"""Named sweeps and the ``repro sweep`` command-line surface.

Every figure/table harness registers here as a :class:`SweepDef` — a DAG
builder plus a renderer for the aggregated rows — and the CLI drives
them end to end::

    python -m repro sweep list
    python -m repro sweep describe fig19 --kernels li
    python -m repro sweep run fig19 --kernels li --executor process \
        --retries 2 --record
    python -m repro sweep resume fig19 --kernels li
    python -m repro sweep status fig19

``run`` journals every completed job under
``.repro/sweeps/<name>.journal`` (override with ``--journal``), so a
killed run — machine crash, ^C, OOM — picks up where it left off:
``resume`` (or simply re-running) replays finished cells from the
journal and executes only the remainder. ``--fresh`` clears the journal
first; ``status`` reports it without executing anything.

``--executor remote --workers N`` fans the cells out over a
fault-tolerant socket worker pool (leases, heartbeats, per-worker
journal shards — see :mod:`repro.orchestrate.remote`); add
``--listen HOST:PORT`` to accept additional workers from other hosts.
Resuming merges any journal shards left by a previous distributed run,
so a sweep interrupted on either side of the socket still resumes
bit-identical.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.orchestrate.dag import JobDAG, JobSpec
from repro.orchestrate.executors import make_executor
from repro.orchestrate.journal import Journal, read_shards
from repro.orchestrate.scheduler import Scheduler, SweepResult

#: Default journal directory for named sweeps.
SWEEP_DIR = Path(".repro/sweeps")


@dataclass(frozen=True)
class SweepDef:
    """One named, CLI-drivable sweep."""

    name: str
    description: str
    build: object            # (kernels, attribution) -> JobDAG
    aggregate: str           # job whose value is the row list
    render: object           # (rows, attribution, degraded) -> str


def _build_fig18(kernels, attribution) -> JobDAG:
    from repro.harness import fig18
    return fig18.build_dag(kernels, attribution)


def _render_fig18(rows, attribution, degraded) -> str:
    from repro.harness import fig18
    return fig18.render_rows(rows, attribution=attribution,
                             degraded=degraded)


def _build_fig19(kernels, attribution) -> JobDAG:
    from repro.harness import fig19
    return fig19.build_dag(kernels, attribution=attribution)


def _render_fig19(rows, attribution, degraded) -> str:
    from repro.harness import fig19
    return fig19.render_rows(rows, attribution=attribution,
                             degraded=degraded)


def _build_ablation(kernels, attribution) -> JobDAG:
    from repro.harness import ablation
    return ablation.build_dag(kernels)


def _render_ablation(rows, attribution, degraded) -> str:
    from repro.harness import ablation
    return ablation.render_rows(rows)


def _build_section2(kernels, attribution) -> JobDAG:
    from repro.harness import section2
    return section2.build_dag()


def _render_section2(result, attribution, degraded) -> str:
    # The aggregate IS the single cell here: its value is one
    # Section2Result, not a row list.
    from repro.harness import section2
    if not result:
        return "Section 2 example: DEGRADED"
    return section2.render_result(result)


def _build_table2(kernels, attribution) -> JobDAG:
    from repro.harness import table2
    return table2.build_dag(kernels)


def _render_table2(rows, attribution, degraded) -> str:
    from repro.harness import table2
    return table2.render_rows(rows)


SWEEPS: dict[str, SweepDef] = {
    "fig18": SweepDef(
        "fig18", "static/dynamic memory operations removed (Figure 18)",
        _build_fig18, "fig18/aggregate", _render_fig18),
    "fig19": SweepDef(
        "fig19", "speedup across optimization sets and memory systems "
                 "(Figure 19)",
        _build_fig19, "fig19/aggregate", _render_fig19),
    "ablation": SweepDef(
        "ablation", "per-optimization contribution and composition (§7.3)",
        _build_ablation, "ablation/aggregate", _render_ablation),
    "section2": SweepDef(
        "section2", "the §2 motivating example (useless access removal)",
        _build_section2, "section2", _render_section2),
    "table2": SweepDef(
        "table2", "program statistics (Table 2)",
        _build_table2, "table2/aggregate", _render_table2),
}


# ----------------------------------------------------------------------
# CLI


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Declare, run, resume, and inspect figure sweeps as "
                    "explicit job DAGs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="the named sweeps")

    def common(cmd, execution=True):
        cmd.add_argument("sweep", choices=sorted(SWEEPS),
                         help="which sweep")
        cmd.add_argument("--kernels", default=None, metavar="NAMES",
                         help="comma-separated kernel names, or 'all' "
                              "(default: the paper subset)")
        cmd.add_argument("--attribution", action="store_true",
                         help="profile runs and add critical-path columns "
                              "(fig18/fig19)")
        cmd.add_argument("--journal", default=None, metavar="FILE",
                         help="journal path (default: "
                              ".repro/sweeps/<sweep>.journal)")
        if not execution:
            return
        cmd.add_argument("--executor", default="inline",
                         choices=["inline", "process", "remote"],
                         help="job execution backend (default: inline)")
        cmd.add_argument("--workers", type=int, default=None, metavar="N",
                         help="pool size: process-pool workers, or local "
                              "worker processes spawned by the remote "
                              "coordinator (default: 2 for remote)")
        cmd.add_argument("--listen", default=None, metavar="HOST:PORT",
                         help="with --executor remote: accept workers "
                              "from other hosts on this address "
                              "(they join with `python -m "
                              "repro.orchestrate.worker --connect ...`)")
        cmd.add_argument("--retries", type=int, default=1, metavar="N",
                         help="extra attempts per transiently-failing job "
                              "(default: 1)")
        cmd.add_argument("--backoff", type=float, default=0.0,
                         metavar="SECONDS",
                         help="linear retry backoff (default: 0)")
        cmd.add_argument("--wall-limit", type=float, default=None,
                         metavar="SECONDS",
                         help="cooperative per-job wall-clock budget")
        cmd.add_argument("--record", action="store_true",
                         help="record every job into the telemetry store "
                              "(tags: dag, job, attempt, executor)")
        cmd.add_argument("--trace", action="store_true",
                         help="record a distributed trace (sweep root + "
                              "one span per job attempt, across all "
                              "workers) and export merged Perfetto JSON "
                              "on completion")
        cmd.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="trace shard directory (default: "
                              "$REPRO_TRACE_DIR or .repro/traces)")
        cmd.add_argument("--no-render", action="store_true",
                         help="print only the job report, not the table")

    describe_cmd = commands.add_parser(
        "describe", help="print the DAG without running it")
    common(describe_cmd, execution=False)

    run_cmd = commands.add_parser(
        "run", help="execute the sweep (resumes an existing journal)")
    common(run_cmd)
    run_cmd.add_argument("--fresh", action="store_true",
                         help="clear the journal first")

    resume_cmd = commands.add_parser(
        "resume", help="like run, but requires an existing journal")
    common(resume_cmd)

    status_cmd = commands.add_parser(
        "status", help="journal contents: what completed, what remains")
    common(status_cmd, execution=False)
    status_cmd.add_argument("--json", action="store_true",
                            help="machine-readable status (one JSON "
                                 "object; dashboards and CI poll this)")
    status_cmd.add_argument("--watch", action="store_true",
                            help="redraw periodically until the sweep "
                                 "completes, overlaying live metrics "
                                 "merged from the worker snapshots")
    status_cmd.add_argument("--interval", type=float, default=2.0,
                            metavar="SECONDS",
                            help="watch redraw period (default: 2)")
    return parser


def _journal_path(options) -> Path:
    if options.journal is not None:
        return Path(options.journal)
    return SWEEP_DIR / f"{options.sweep}.journal"


def _kernels(options):
    if options.kernels is None:
        return None
    if options.kernels == "all":
        return "all"
    return tuple(name for name in options.kernels.split(",") if name)


def _build(options) -> tuple[SweepDef, JobDAG]:
    sweep_def = SWEEPS[options.sweep]
    dag = sweep_def.build(_kernels(options), options.attribution)
    return sweep_def, dag


def sweep_main(argv: list[str] | None = None) -> int:
    options = build_sweep_parser().parse_args(argv)
    try:
        return _sweep_command(options)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _sweep_command(options) -> int:
    if options.command == "list":
        for name in sorted(SWEEPS):
            print(f"{name:10s} {SWEEPS[name].description}")
        return 0
    if options.command == "describe":
        return _sweep_describe(options)
    if options.command == "status":
        return _sweep_status(options)
    return _sweep_run(options)


def _sweep_describe(options) -> int:
    _, dag = _build(options)
    dag.validate()
    print(f"sweep {dag.name}: {len(dag)} jobs, dag {dag.dag_id[:12]}")
    counts = dag.counts()
    print("  " + ", ".join(f"{count} {category}"
                           for category, count in sorted(counts.items())))
    for spec in dag.topo_order():
        deps = f"  <- {', '.join(spec.deps)}" if spec.deps else ""
        print(f"  [{spec.category:9s}] {spec.name}{deps}")
    print(f"journal: {_journal_path(options)}")
    return 0


def _status_report(options) -> dict:
    """Structured sweep status: the DAG's (content-addressed) job keys
    mapped against the journal, overlaid with any per-worker shards (a
    distributed sweep in flight, or one whose coordinator died)."""
    _, dag = _build(options)
    path = _journal_path(options)
    shard_dir = path.parent / dag.name
    report = {
        "sweep": dag.name,
        "dag": dag.dag_id,
        "journal": str(path),
        "shard_dir": str(shard_dir),
        "journal_exists": path.exists() or shard_dir.is_dir(),
        "torn_tail": False,
        "unmerged_shards": 0,
        "jobs": [],
    }
    entry_for = None
    if report["journal_exists"]:
        journal = Journal(path)
        shards = read_shards(shard_dir)
        report["torn_tail"] = bool(journal.tail_dropped)
        report["unmerged_shards"] = len(shards)

        def entry_for(spec: JobSpec) -> dict | None:
            mine = journal.get(spec.key)
            shard = shards.get(spec.key)
            if mine is None or shard is None:
                return mine or shard
            return shard if shard.get("ts", 0) >= mine.get("ts", 0) \
                else mine

    counts: dict[str, int] = {}
    for spec in dag.topo_order():
        if spec.transient:
            continue
        entry = entry_for(spec) if entry_for is not None else None
        status = entry["status"] if entry is not None else "pending"
        counts[status] = counts.get(status, 0) + 1
        job = {"name": spec.name, "category": spec.category,
               "status": status}
        if entry is not None:
            for field in ("attempts", "worker", "host", "lease", "error"):
                if entry.get(field):
                    job[field] = entry[field]
        report["jobs"].append(job)
    report["counts"] = counts
    report["total"] = len(report["jobs"])
    report["complete"] = counts.get("ok", 0)
    return report


def _sweep_status(options) -> int:
    if getattr(options, "watch", False) and not options.json:
        return _sweep_watch(options)
    report = _status_report(options)
    if options.json:
        import json
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    _print_status(report)
    return 0


def _print_status(report: dict) -> None:
    if not report["journal_exists"]:
        print(f"no journal at {report['journal']}: nothing completed")
        return
    print(f"sweep {report['sweep']}: {report['complete']}/"
          f"{report['total']} journaled jobs complete "
          f"({report['journal']})")
    if report["torn_tail"]:
        print("  note: a torn tail from an interrupted write will be "
              "discarded on the next run")
    if report["unmerged_shards"]:
        count = report["unmerged_shards"]
        print(f"  note: {count} worker-shard entr"
              f"{'y' if count == 1 else 'ies'} not yet merged "
              f"(folded into the journal on the next run)")
    print("  " + ", ".join(f"{count} {status}" for status, count
                           in sorted(report["counts"].items())))
    for job in report["jobs"]:
        line = f"  [{job['status']:8s}] {job['name']}"
        if job.get("attempts", 0) > 1:
            line += f"  x{job['attempts']}"
        worker = job.get("worker")
        if job["status"] == "leased" and worker:
            line += f"  held by {worker} (lease {job.get('lease', '?')})"
        elif worker:
            line += f"  ({worker})"
        if job.get("error"):
            line += f"  last: {job['error']}"
        print(line)


def _metrics_overlay(shard_dir) -> list[str]:
    """Worker metrics snapshots under ``shard_dir``, merged to one line
    per series (the live half of ``status --watch``)."""
    from repro.observe.metrics import read_snapshots
    merged = read_snapshots(shard_dir)
    lines = []
    for row in merged.get("metrics", []):
        labels = ",".join(f"{key}={value}" for key, value
                          in sorted(row["labels"].items()))
        series = row["name"] + (f"{{{labels}}}" if labels else "")
        if row["type"] == "histogram":
            mean = row["sum"] / row["count"] if row["count"] else 0.0
            lines.append(f"  {series}: n={row['count']} mean={mean:.3f}s")
        else:
            lines.append(f"  {series}: {row['value']:g}")
    return lines


def _sweep_watch(options) -> int:
    import time
    while True:
        report = _status_report(options)
        print("\x1b[2J\x1b[H", end="")
        _print_status(report)
        overlay = _metrics_overlay(report["shard_dir"])
        if overlay:
            print("live metrics (merged worker snapshots):")
            for line in overlay:
                print(line)
        if report["journal_exists"] and report["total"] \
                and report["complete"] >= report["total"]:
            return 0
        try:
            time.sleep(options.interval)
        except KeyboardInterrupt:
            return 0


def _sweep_run(options) -> int:
    sweep_def, dag = _build(options)
    path = _journal_path(options)
    if options.command == "resume" and not path.exists():
        print(f"error: nothing to resume: no journal at {path}",
              file=sys.stderr)
        return 2
    path.parent.mkdir(parents=True, exist_ok=True)
    journal = Journal(path)
    if getattr(options, "fresh", False):
        journal.clear()
    executor = make_executor(options.executor, max_workers=options.workers,
                             listen=options.listen)
    session = nullcontext(None)
    if options.record:
        from repro.observe.telemetry import TelemetrySession
        session = TelemetrySession(label=f"sweep-{options.sweep}")
    tracing = nullcontext(None)
    if options.trace:
        from repro.observe.tracing import Tracer
        tracing = Tracer(options.trace_dir)
    scheduler = Scheduler(dag, executor=executor, journal=journal,
                          retries=options.retries, backoff=options.backoff,
                          wall_limit=options.wall_limit)
    try:
        with session as active, tracing as tracer:
            sweep = scheduler.run()
    finally:
        executor.shutdown()
    print(sweep.report())
    if options.record and active is not None:
        print(f"telemetry: {len(active.run_ids)} record(s) in session "
              f"{active.session_id} -> {active.store.root}")
    if tracer is not None and tracer.traces:
        # Merge every process's shard and write one Perfetto JSON file
        # for the sweep's trace.
        from repro.observe.tracing import export_trace
        out = tracer.root / f"{dag.name}-{tracer.traces[-1][:12]}.json"
        _, payload = export_trace(tracer.root, tracer.traces[-1], out)
        print(f"trace: {payload['otherData']['spans']} spans from "
              f"{payload['otherData']['processes']} process(es) -> {out}")
    if not options.no_render:
        print()
        print(_render(sweep_def, sweep, options))
    return 0 if sweep.ok else 1


def _render(sweep_def: SweepDef, sweep: SweepResult, options) -> str:
    from repro.resilience.harness import JobOutcome
    rows = sweep.value(sweep_def.aggregate) or []
    degraded = [JobOutcome.from_result(result) for result in sweep.degraded
                if result.category == "cell"]
    return sweep_def.render(rows, options.attribution, degraded)
