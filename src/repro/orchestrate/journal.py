"""Incremental journal of job completions: append-only, crash-tolerant.

The old :class:`~repro.resilience.harness.Checkpoint` rewrote its whole
pickle on every record — O(n²) bytes over a long sweep. The journal
appends instead: one JSON line per event, values carried as
base64-encoded pickles, so recording the 1000th cell costs the same as
recording the first. Two crash scenarios are first-class:

- a process killed *between* records leaves a well-formed file; resume
  replays every completed job;
- a process killed *mid-write* leaves a truncated tail; loading stops at
  the last complete, parseable line and the next append truncates the
  garbage away, so a torn record can never poison later ones.

Superseded lines (a retried job, a recorded failure) accumulate as dead
weight; when they outnumber the live entries the journal compacts itself
into a fresh file atomically (temp file + rename).
"""

from __future__ import annotations

import base64
import contextlib
import json
import os
import pickle
import tempfile
from pathlib import Path

#: Journal entries with these statuses carry a resumable value.
VALUE_STATUSES = ("ok",)

#: Dead lines tolerated before :meth:`Journal.record` auto-compacts.
COMPACT_FLOOR = 64


class Journal:
    """Append-only {job key -> latest event} log backing sweep resume.

    Keys are caller-chosen strings — the scheduler uses content-addressed
    job keys so a changed job silently invalidates its old entry, while
    the :class:`~repro.resilience.harness.Checkpoint` adapter keys by its
    caller's human-readable names. Only ``status="ok"`` entries carry a
    value and satisfy :meth:`has_value`; failure statuses are recorded
    for post-mortems (``repro sweep status``) but never resumed.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._entries: dict[str, dict] = {}
        self._lines = 0           # parseable lines currently in the file
        self._good_offset = 0     # bytes of trustworthy prefix
        self._tail_dropped = 0    # bytes of torn tail discarded on load
        self._load()

    # ------------------------------------------------------------------
    # Loading

    def _load(self) -> None:
        try:
            data = self.path.read_bytes()
        except OSError:
            return
        offset = 0
        while True:
            newline = data.find(b"\n", offset)
            if newline < 0:
                break  # incomplete tail (torn write): stop trusting here
            line = data[offset:newline]
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict) or "key" not in entry \
                        or "status" not in entry:
                    raise ValueError("not a journal entry")
            except (ValueError, UnicodeDecodeError):
                # A complete-but-corrupt line: everything after it is
                # suspect (interleaved writes, version skew) — discard.
                break
            self._entries[entry["key"]] = entry
            self._lines += 1
            offset = newline + 1
        self._good_offset = offset
        self._tail_dropped = len(data) - offset

    # ------------------------------------------------------------------
    # Recording

    def record(self, key: str, *, name: str | None = None,
               status: str = "ok", value=None, attempts: int = 0,
               elapsed: float = 0.0) -> None:
        """Append one event; ``value`` is kept only for OK statuses."""
        entry = {
            "key": key,
            "name": name or key,
            "status": status,
            "attempts": attempts,
            "elapsed": round(elapsed, 6),
        }
        if status in VALUE_STATUSES:
            entry["value"] = _encode(value)
        self._append(entry)
        self._entries[key] = entry
        self._lines += 1
        if self._dead_lines() > max(COMPACT_FLOOR, len(self._entries)):
            self.compact()

    def _append(self, entry: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True) + "\n"
        if self._tail_dropped and self.path.exists():
            # First write after loading a torn file: drop the garbage
            # tail so the new line starts on a clean boundary.
            with open(self.path, "r+b") as handle:
                handle.truncate(self._good_offset)
        with open(self.path, "a") as handle:
            handle.write(line)
        self._good_offset += len(line.encode())
        self._tail_dropped = 0

    def _dead_lines(self) -> int:
        return self._lines - len(self._entries)

    # ------------------------------------------------------------------
    # Reading

    def get(self, key: str) -> dict | None:
        """The latest event for ``key`` (any status), or ``None``."""
        return self._entries.get(key)

    def has_value(self, key: str) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry.get("status") in VALUE_STATUSES

    def value(self, key: str):
        """The recorded value for an OK entry (``None`` otherwise)."""
        entry = self._entries.get(key)
        if entry is None or entry.get("status") not in VALUE_STATUSES:
            return None
        try:
            return _decode(entry["value"])
        except Exception:
            # Undecodable value (version skew): treat as not recorded.
            return None

    def __contains__(self, key: str) -> bool:
        return self.has_value(key)

    def __len__(self) -> int:
        return sum(1 for entry in self._entries.values()
                   if entry.get("status") in VALUE_STATUSES)

    def statuses(self) -> dict[str, dict]:
        """key -> latest event, insertion order preserved."""
        return dict(self._entries)

    @property
    def tail_dropped(self) -> int:
        """Bytes of torn tail found on load (0 for a clean journal)."""
        return self._tail_dropped

    # ------------------------------------------------------------------
    # Maintenance

    def compact(self) -> None:
        """Rewrite the file with only the latest event per key, atomically."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.path.parent,
                                        suffix=".compact.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                for entry in self._entries.values():
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
            os.replace(tmp_name, self.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        self._lines = len(self._entries)
        self._good_offset = self.path.stat().st_size
        self._tail_dropped = 0

    def clear(self) -> None:
        self._entries = {}
        self._lines = 0
        self._good_offset = 0
        self._tail_dropped = 0
        with contextlib.suppress(OSError):
            self.path.unlink()


def _encode(value) -> str:
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)).decode()


def _decode(blob: str):
    return pickle.loads(base64.b64decode(blob))
