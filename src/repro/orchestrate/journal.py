"""Incremental journal of job completions: append-only, crash-tolerant.

The old :class:`~repro.resilience.harness.Checkpoint` rewrote its whole
pickle on every record — O(n²) bytes over a long sweep. The journal
appends instead: one JSON line per event, values carried as
base64-encoded pickles, so recording the 1000th cell costs the same as
recording the first. Two crash scenarios are first-class:

- a process killed *between* records leaves a well-formed file; resume
  replays every completed job;
- a process killed *mid-write* leaves a truncated tail; loading stops at
  the last complete, parseable line and the next append truncates the
  garbage away, so a torn record can never poison later ones.

Superseded lines (a retried job, a recorded failure) accumulate as dead
weight; when they outnumber the live entries the journal compacts itself
into a fresh file atomically (temp file + rename).

Distributed sweeps add a third failure domain: each remote worker
appends completions to its own **shard** (``shard-<worker>.jsonl`` next
to the coordinator's journal), so a result that never made it back over
the wire — the coordinator died, the connection reset mid-frame — still
survives on disk. :func:`merge_shards` folds those shards into the main
journal on resume, last-write-wins per content-addressed job key, so a
sweep interrupted on *either* side of the socket resumes bit-identical.
"""

from __future__ import annotations

import base64
import contextlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path

#: Journal entries with these statuses carry a resumable value.
VALUE_STATUSES = ("ok",)

#: Worker shard filename pattern (``<worker id>`` is host-pid unique).
SHARD_GLOB = "shard-*.jsonl"

#: Dead lines tolerated before :meth:`Journal.record` auto-compacts.
COMPACT_FLOOR = 64


class Journal:
    """Append-only {job key -> latest event} log backing sweep resume.

    Keys are caller-chosen strings — the scheduler uses content-addressed
    job keys so a changed job silently invalidates its old entry, while
    the :class:`~repro.resilience.harness.Checkpoint` adapter keys by its
    caller's human-readable names. Only ``status="ok"`` entries carry a
    value and satisfy :meth:`has_value`; failure statuses are recorded
    for post-mortems (``repro sweep status``) but never resumed.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._entries: dict[str, dict] = {}
        self._lines = 0           # parseable lines currently in the file
        self._good_offset = 0     # bytes of trustworthy prefix
        self._tail_dropped = 0    # bytes of torn tail discarded on load
        self._load()

    # ------------------------------------------------------------------
    # Loading

    def _load(self) -> None:
        try:
            data = self.path.read_bytes()
        except OSError:
            return
        offset = 0
        while True:
            newline = data.find(b"\n", offset)
            if newline < 0:
                break  # incomplete tail (torn write): stop trusting here
            line = data[offset:newline]
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict) or "key" not in entry \
                        or "status" not in entry:
                    raise ValueError("not a journal entry")
            except (ValueError, UnicodeDecodeError):
                # A complete-but-corrupt line: everything after it is
                # suspect (interleaved writes, version skew) — discard.
                break
            self._entries[entry["key"]] = entry
            self._lines += 1
            offset = newline + 1
        self._good_offset = offset
        self._tail_dropped = len(data) - offset

    # ------------------------------------------------------------------
    # Recording

    def record(self, key: str, *, name: str | None = None,
               status: str = "ok", value=None, attempts: int = 0,
               elapsed: float = 0.0, error: str | None = None,
               worker: str | None = None, host: str | None = None,
               lease: str | None = None, ts: float | None = None) -> None:
        """Append one event; ``value`` is kept only for OK statuses.

        ``error`` preserves the last failure message for post-mortems
        (``repro sweep status``); ``worker``/``host``/``lease`` record
        which lease holder produced the event in a distributed sweep;
        ``ts`` is the event wall-clock time (defaults to now) and is the
        tiebreaker :func:`merge_shards` uses for last-write-wins.
        """
        entry = {
            "key": key,
            "name": name or key,
            "status": status,
            "attempts": attempts,
            "elapsed": round(elapsed, 6),
            "ts": round(time.time() if ts is None else ts, 6),
        }
        for field, content in (("error", error), ("worker", worker),
                               ("host", host), ("lease", lease)):
            if content is not None:
                entry[field] = content
        if status in VALUE_STATUSES:
            entry["value"] = _encode(value)
        self.absorb(entry)

    def absorb(self, entry: dict) -> None:
        """Append a pre-built entry (a :meth:`record` payload or a line
        lifted verbatim from another journal's shard)."""
        if "key" not in entry or "status" not in entry:
            raise ValueError(f"not a journal entry: {entry!r}")
        self._append(entry)
        self._entries[entry["key"]] = entry
        self._lines += 1
        if self._dead_lines() > max(COMPACT_FLOOR, len(self._entries)):
            self.compact()

    def _append(self, entry: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True) + "\n"
        if self._tail_dropped and self.path.exists():
            # First write after loading a torn file: drop the garbage
            # tail so the new line starts on a clean boundary.
            with open(self.path, "r+b") as handle:
                handle.truncate(self._good_offset)
        with open(self.path, "a") as handle:
            handle.write(line)
        self._good_offset += len(line.encode())
        self._tail_dropped = 0

    def _dead_lines(self) -> int:
        return self._lines - len(self._entries)

    # ------------------------------------------------------------------
    # Reading

    def get(self, key: str) -> dict | None:
        """The latest event for ``key`` (any status), or ``None``."""
        return self._entries.get(key)

    def has_value(self, key: str) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry.get("status") in VALUE_STATUSES

    def value(self, key: str):
        """The recorded value for an OK entry (``None`` otherwise)."""
        entry = self._entries.get(key)
        if entry is None or entry.get("status") not in VALUE_STATUSES:
            return None
        try:
            return _decode(entry["value"])
        except Exception:
            # Undecodable value (version skew): treat as not recorded.
            return None

    def __contains__(self, key: str) -> bool:
        return self.has_value(key)

    def __len__(self) -> int:
        return sum(1 for entry in self._entries.values()
                   if entry.get("status") in VALUE_STATUSES)

    def statuses(self) -> dict[str, dict]:
        """key -> latest event, insertion order preserved."""
        return dict(self._entries)

    @property
    def tail_dropped(self) -> int:
        """Bytes of torn tail found on load (0 for a clean journal)."""
        return self._tail_dropped

    # ------------------------------------------------------------------
    # Maintenance

    def compact(self) -> None:
        """Rewrite the file with only the latest event per key, atomically."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.path.parent,
                                        suffix=".compact.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                for entry in self._entries.values():
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
            os.replace(tmp_name, self.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        self._lines = len(self._entries)
        self._good_offset = self.path.stat().st_size
        self._tail_dropped = 0

    def clear(self) -> None:
        self._entries = {}
        self._lines = 0
        self._good_offset = 0
        self._tail_dropped = 0
        with contextlib.suppress(OSError):
            self.path.unlink()


def shard_path(shard_dir: str | os.PathLike, worker_id: str) -> Path:
    """Where worker ``worker_id`` journals its completions."""
    safe = "".join(ch if ch.isalnum() or ch in "-._" else "-"
                   for ch in worker_id)
    return Path(shard_dir) / f"shard-{safe}.jsonl"


def merge_shards(journal: Journal, shard_dir: str | os.PathLike, *,
                 cleanup: bool = True) -> int:
    """Fold per-worker journal shards into ``journal``; returns the
    number of values merged.

    Shards are the worker-side half of the distributed journal: a worker
    records each completion locally *before* shipping the result frame,
    so a coordinator crash or a torn connection cannot lose finished
    work. On resume the coordinator calls this: every OK value found in
    a shard wins over an absent or older main-journal entry —
    last-write-wins per content-addressed job key, by event timestamp
    (shards are loaded through :class:`Journal`, so a shard with a torn
    tail heals exactly like the main journal). With ``cleanup`` the
    consumed shard files are deleted once their values are durably
    appended to the main journal.
    """
    shard_dir = Path(shard_dir)
    shard_files = sorted(shard_dir.glob(SHARD_GLOB)) \
        if shard_dir.is_dir() else []
    winners: dict[str, dict] = {}
    for path in shard_files:
        for key, entry in Journal(path).statuses().items():
            if entry.get("status") not in VALUE_STATUSES:
                continue
            current = winners.get(key)
            if current is None or entry.get("ts", 0) >= current.get("ts", 0):
                winners[key] = entry
    merged = 0
    for key, entry in winners.items():
        mine = journal.get(key)
        if mine is not None and mine.get("status") in VALUE_STATUSES \
                and mine.get("ts", 0) >= entry.get("ts", 0):
            continue
        journal.absorb(entry)
        merged += 1
    if cleanup:
        for path in shard_files:
            with contextlib.suppress(OSError):
                path.unlink()
    return merged


def read_shards(shard_dir: str | os.PathLike) -> dict[str, dict]:
    """Read-only merged view of the shards (any status, latest wins) —
    what ``repro sweep status`` overlays for lease/attempt display."""
    shard_dir = Path(shard_dir)
    if not shard_dir.is_dir():
        return {}
    view: dict[str, dict] = {}
    for path in sorted(shard_dir.glob(SHARD_GLOB)):
        for key, entry in Journal(path).statuses().items():
            current = view.get(key)
            if current is None or entry.get("ts", 0) >= current.get("ts", 0):
                view[key] = entry
    return view


def _encode(value) -> str:
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)).decode()


def _decode(blob: str):
    return pickle.loads(base64.b64decode(blob))
