"""Remote sweep worker: ``python -m repro.orchestrate.worker``.

One process, one socket, one job at a time. The worker connects to a
:class:`~repro.orchestrate.remote.RemoteExecutor` coordinator
(``--connect host:port``), announces itself, and then loops: receive a
job frame, heartbeat while the job runs, journal the completion to this
worker's own shard, ship the result back. The ordering is the crash
contract:

1. record ``leased`` in the shard (who holds the job, since when);
2. run the job under the scheduler's usual wrapper (wall-limit
   injection, telemetry session rebuild, provenance tags);
3. record the outcome in the shard — the completion is now durable on
   this host even if everything after this point dies;
4. send the result frame to the coordinator.

A worker killed between 3 and 4 loses nothing: the coordinator revokes
the lease and retries, and on resume
:func:`~repro.orchestrate.journal.merge_shards` recovers the journaled
value (last-write-wins, so the retry's identical value is not counted
twice).

Three deterministic chaos hooks reproduce the distributed failure
matrix in tests and CI:

- ``REPRO_WORKER_KILL_AFTER=<n>`` — SIGKILL this worker after its
  *n*-th completion is journaled, *before* the result is sent (the
  worst-ordered crash);
- ``REPRO_WORKER_STALL=<substr>`` — wedge first attempts of matching
  jobs (heartbeats continue, the job never finishes) so the
  coordinator's wall-limit lease revocation fires;
- ``REPRO_NET_DROP_AFTER=<n>`` — hard-close the socket halfway through
  the *n*-th result frame (a connection reset mid-frame).
"""

from __future__ import annotations

import argparse
import os
import pickle
import signal
import socket
import struct
import sys
import threading
import time

from repro.orchestrate import scheduler as _scheduler
from repro.orchestrate.journal import Journal, shard_path
from repro.orchestrate.remote import _LENGTH, recv_frame, send_frame

#: Chaos hooks (see module docstring).
KILL_AFTER_ENV = "REPRO_WORKER_KILL_AFTER"
STALL_ENV = "REPRO_WORKER_STALL"
NET_DROP_ENV = "REPRO_NET_DROP_AFTER"

#: How long a stalled job sleeps — far past any test's lease timeout.
STALL_SECONDS = 3600.0


class Worker:
    """The worker loop state: socket, shard journals, chaos counters."""

    def __init__(self, sock: socket.socket, *, heartbeat: float = 1.0,
                 shard_dir: str | None = None):
        self.sock = sock
        self.heartbeat = heartbeat
        self.default_shard_dir = shard_dir
        self.host = socket.gethostname()
        self.worker_id = f"{self.host}-{os.getpid()}"
        self.send_lock = threading.Lock()
        self.completed = 0
        self.results_sent = 0
        self._shards: dict[str, Journal] = {}
        # Workers always meter themselves; snapshots land beside the
        # journal shards after every job (same durability ordering), so
        # the coordinator's `sweep status --watch` can merge live rates.
        from repro.observe.metrics import enable_metrics
        self.metrics = enable_metrics()
        kill_after = os.environ.get(KILL_AFTER_ENV)
        self.kill_after = int(kill_after) if kill_after else None
        net_drop = os.environ.get(NET_DROP_ENV)
        self.net_drop_after = int(net_drop) if net_drop else None
        self.stall_needle = os.environ.get(STALL_ENV) or None

    # ------------------------------------------------------------------

    def run(self) -> int:
        send_frame(self.sock, {"kind": "hello", "worker": self.worker_id,
                               "host": self.host, "pid": os.getpid()})
        while True:
            try:
                message = recv_frame(self.sock)
            except OSError:
                return 1
            if message is None or message.get("kind") == "shutdown":
                return 0
            if message.get("kind") == "job":
                try:
                    self._job(message)
                except OSError:
                    # The coordinator went away mid-send; nothing left
                    # to report to. The shard already has the result.
                    return 1

    # ------------------------------------------------------------------

    def _job(self, message: dict) -> None:
        job_id = message["job_id"]
        lease = message["lease"]
        fn, args, kwargs = message["payload"]
        meta = message.get("meta", {})
        interval = message.get("heartbeat", self.heartbeat)
        shard = self._shard(meta.get("shard_dir") or self.default_shard_dir)
        key = meta.get("key")
        name = meta.get("name", key)
        attempt = int(meta.get("attempt", 1))

        if shard is not None and key:
            shard.record(key, name=name, status="leased", attempts=attempt,
                         worker=self.worker_id, host=self.host, lease=lease)

        stop = threading.Event()
        beater = threading.Thread(
            target=self._beat, args=(job_id, lease, interval, stop),
            daemon=True)
        beater.start()
        if self.stall_needle and name and self.stall_needle in name \
                and attempt == 1:
            # Chaos: wedge, heartbeats still flowing — only the
            # wall-limit deadline can catch this.
            time.sleep(STALL_SECONDS)

        started = time.monotonic()
        _scheduler._worker_provenance.update(
            worker=self.worker_id, host=self.host, lease=lease)
        try:
            value = fn(*args, **kwargs)
            status, error = "ok", None
        except BaseException as exc:  # noqa: BLE001 — shipped upstream
            value, status, error = None, "error", exc
        finally:
            _scheduler._worker_provenance.clear()
            stop.set()
        elapsed = time.monotonic() - started

        if status == "ok" and not _picklable(value):
            status, error = "error", RuntimeError(
                f"job {name!r} returned an unpicklable value")
        if error is not None and not _picklable(error):
            error = RuntimeError(f"{type(error).__name__}: {error}")

        if shard is not None and key:
            shard.record(key, name=name, status=status, value=value,
                         attempts=attempt, elapsed=elapsed,
                         error=None if error is None else
                         f"{type(error).__name__}: {error}",
                         worker=self.worker_id, host=self.host, lease=lease)
        self.metrics.counter("repro_worker_jobs_total", status=status).inc()
        self.metrics.histogram("repro_worker_job_seconds").observe(elapsed)
        shard_dir = meta.get("shard_dir") or self.default_shard_dir
        if shard_dir:
            from repro.observe.metrics import write_snapshot
            write_snapshot(shard_dir, self.worker_id,
                           tags={"worker": self.worker_id,
                                 "host": self.host})
        self.completed += 1
        if self.kill_after is not None and self.completed >= self.kill_after:
            # Chaos: die with the result journaled but never sent.
            os.kill(os.getpid(), signal.SIGKILL)

        frame = {"kind": "result", "job_id": job_id, "lease": lease,
                 "status": status, "value": value, "error": error,
                 "worker": self.worker_id, "host": self.host}
        self.results_sent += 1
        if self.net_drop_after is not None \
                and self.results_sent >= self.net_drop_after:
            self._drop_mid_frame(frame)
        with self.send_lock:
            send_frame(self.sock, frame)

    def _beat(self, job_id: int, lease: str, interval: float,
              stop: threading.Event) -> None:
        while not stop.wait(interval):
            with self.send_lock:
                try:
                    send_frame(self.sock, {"kind": "heartbeat",
                                           "job_id": job_id,
                                           "lease": lease})
                except OSError:
                    return

    def _drop_mid_frame(self, frame: dict) -> None:
        """Chaos: send half a result frame, then reset the connection."""
        data = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
        with self.send_lock:
            try:
                self.sock.sendall(_LENGTH.pack(len(data))
                                  + data[:max(1, len(data) // 2)])
                self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                     struct.pack("ii", 1, 0))
                self.sock.close()
            except OSError:
                pass
        sys.exit(1)

    def _shard(self, shard_dir: str | None) -> Journal | None:
        if not shard_dir:
            return None
        journal = self._shards.get(shard_dir)
        if journal is None:
            journal = Journal(shard_path(shard_dir, self.worker_id))
            self._shards[shard_dir] = journal
        return journal


def _picklable(value) -> bool:
    try:
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except Exception:  # noqa: BLE001 — anything unpicklable
        return False


# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrate.worker",
        description="Connect to a sweep coordinator and execute jobs.")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    parser.add_argument("--heartbeat", type=float, default=1.0,
                        metavar="SECONDS",
                        help="heartbeat interval while a job runs")
    parser.add_argument("--shard-dir", default=None, metavar="DIR",
                        help="journal shard directory (normally supplied "
                             "per-job by the coordinator)")
    options = parser.parse_args(argv)
    host, _, port = options.connect.rpartition(":")
    try:
        sock = socket.create_connection((host or "127.0.0.1", int(port)),
                                        timeout=30)
    except OSError as error:
        print(f"worker: cannot connect to {options.connect}: {error}",
              file=sys.stderr)
        return 2
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    worker = Worker(sock, heartbeat=options.heartbeat,
                    shard_dir=options.shard_dir)
    try:
        return worker.run()
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
