"""Distributed sweep execution: the coordinator side of the worker pool.

:class:`RemoteExecutor` is the multi-host backend the executor interface
was sized for: it speaks length-prefixed pickle frames over plain
sockets (stdlib only) to a pool of :mod:`repro.orchestrate.worker`
processes — spawned locally by default, or connecting from other hosts
with ``python -m repro.orchestrate.worker --connect host:port``.

Partial failure is the steady state, so robustness is structural rather
than bolted on:

- every dispatched job is held under a revocable **lease**: the worker
  heartbeats while it runs, and the coordinator revokes the lease when
  heartbeats stop (dead or wedged worker), when the socket closes or
  resets mid-frame, or when the job outlives its wall-limit plus grace
  (a worker that is alive but stuck);
- a revoked lease fails the job's future with :class:`WorkerLost` — an
  ``OSError`` — so the scheduler's existing transient-retry
  classification requeues the job with jittered backoff; the work is
  retried, never lost;
- a **late result** from a revoked lease (the worker was merely slow,
  not dead) is discarded by lease-id mismatch, so a job is never
  double-counted;
- locally-spawned workers that die are respawned (with the chaos
  environment hooks stripped, so an injected crash fires once), bounded
  by a respawn budget; with the budget exhausted and nobody connected
  the executor degrades to inline execution, finishing the sweep the
  same way :class:`~repro.orchestrate.executors.PoolExecutor` does;
- workers journal every completion to their own shard
  (``shard-<worker>.jsonl`` beside the coordinator's journal) *before*
  shipping the result, so work finished during a coordinator crash is
  recovered by :func:`~repro.orchestrate.journal.merge_shards` on
  resume.

The deterministic chaos hooks for the failure matrix live in
:mod:`repro.orchestrate.worker` (``REPRO_WORKER_KILL_AFTER``,
``REPRO_WORKER_STALL``, ``REPRO_NET_DROP_AFTER``).
"""

from __future__ import annotations

import os
import pickle
import selectors
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.orchestrate.executors import Executor, InlineExecutor

#: Seconds between worker heartbeats while a job runs.
DEFAULT_HEARTBEAT = 1.0
#: Missed-heartbeat window before a lease is revoked.
DEFAULT_LEASE_TIMEOUT = 5.0
#: Grace added to a job's wall-limit before a live-but-stuck worker's
#: lease is revoked (the cooperative in-job timeout gets first shot).
DEFAULT_WALL_GRACE = 2.0
#: Replacement workers spawned per original slot before degrading.
RESPAWNS_PER_SLOT = 3
#: Chaos hooks that must not survive into respawned workers: each
#: injected failure fires once per original worker, deterministically.
ONESHOT_CHAOS_ENVS = ("REPRO_WORKER_KILL_AFTER", "REPRO_NET_DROP_AFTER")

_LENGTH = struct.Struct(">I")


class WorkerLost(OSError):
    """A lease was revoked: its worker died, hung, or lost its link.

    An ``OSError`` on purpose — the scheduler classifies it transient
    and requeues the job under the normal retry budget.
    """


# ----------------------------------------------------------------------
# Framing: 4-byte big-endian length + pickled message dict. Shared by
# coordinator and worker.


def send_frame(sock: socket.socket, message: dict) -> None:
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> dict | None:
    """Blocking read of one frame; ``None`` on a clean or torn EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    data = _recv_exact(sock, length)
    if data is None:
        return None
    return pickle.loads(data)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


class FrameBuffer:
    """Incremental decoder for the coordinator's non-blocking reads."""

    def __init__(self):
        self._data = b""

    def feed(self, data: bytes) -> list[dict]:
        self._data += data
        messages = []
        while True:
            if len(self._data) < _LENGTH.size:
                break
            (length,) = _LENGTH.unpack(self._data[:_LENGTH.size])
            end = _LENGTH.size + length
            if len(self._data) < end:
                break  # mid-frame: wait for the rest (or the reset)
            messages.append(pickle.loads(self._data[_LENGTH.size:end]))
            self._data = self._data[end:]
        return messages


# ----------------------------------------------------------------------
# Coordinator bookkeeping


@dataclass
class _Job:
    job_id: int
    future: Future
    payload: tuple          # (fn, args, kwargs)
    meta: dict


@dataclass
class _Lease:
    lease_id: str
    job_id: int
    worker: str
    hb_deadline: float
    wall_deadline: float | None


@dataclass
class _Conn:
    sock: socket.socket
    buffer: FrameBuffer = field(default_factory=FrameBuffer)
    worker: str | None = None        # None until HELLO
    host: str | None = None
    pid: int | None = None
    lease: _Lease | None = None      # the job it is running, if any

    @property
    def idle(self) -> bool:
        return self.worker is not None and self.lease is None


class RemoteExecutor(Executor):
    """Socket worker-pool backend with lease-based job recovery.

    ``workers`` local worker processes are spawned against an ephemeral
    loopback listener by default; pass ``listen=("0.0.0.0", port)`` (and
    optionally ``workers=0``) to accept workers from other hosts
    instead, or in addition. ``heartbeat``/``lease_timeout``/
    ``wall_grace`` tune failure detection — tests shrink them to keep
    the chaos matrix fast.
    """

    remote = True
    #: The scheduler leaves wall-limit enforcement to the lease monitor.
    leased = True
    #: Workers journal completions to per-worker shards.
    shards = True

    def __init__(self, workers: int = 2, *,
                 listen: tuple[str, int] | None = None,
                 heartbeat: float = DEFAULT_HEARTBEAT,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 wall_grace: float = DEFAULT_WALL_GRACE,
                 spawn_env: dict | None = None):
        self.workers = max(0, workers)
        self.heartbeat = heartbeat
        self.lease_timeout = lease_timeout
        self.wall_grace = wall_grace
        self.name = f"remote[{self.workers}]"
        self.degraded_reason: str | None = None
        self.stats = {"dispatched": 0, "revoked": 0, "worker_losses": 0,
                      "respawns": 0, "late_results": 0}
        self._spawn_env = spawn_env
        self._lock = threading.RLock()
        self._jobs: dict[int, _Job] = {}
        self._pending: deque[int] = deque()
        self._conns: dict[socket.socket, _Conn] = {}
        self._procs: list[subprocess.Popen] = []
        self._next_job = 0
        self._next_lease = 0
        self._respawn_budget = self.workers * RESPAWNS_PER_SLOT
        self._inline: InlineExecutor | None = None
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None
        self._listener: socket.socket | None = None
        self.address: tuple[str, int] | None = None
        try:
            self._start(listen or ("127.0.0.1", 0))
        except OSError as error:
            self._degrade(f"no sockets: {error}")

    # ------------------------------------------------------------------
    # Lifecycle

    def _start(self, listen: tuple[str, int]) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(listen)
        listener.listen(16)
        listener.setblocking(False)
        self._listener = listener
        self.address = listener.getsockname()
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, "accept")
        self._selector.register(self._wake_recv, selectors.EVENT_READ,
                                "wake")
        for _ in range(self.workers):
            self._spawn(strip_chaos=False)
        self._thread = threading.Thread(target=self._loop,
                                        name="remote-coordinator",
                                        daemon=True)
        self._thread.start()

    def _spawn(self, *, strip_chaos: bool) -> None:
        import repro
        env = dict(self._spawn_env if self._spawn_env is not None
                   else os.environ)
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        if strip_chaos:
            for name in ONESHOT_CHAOS_ENVS:
                env.pop(name, None)
        host, port = self.address
        connect = f"{'127.0.0.1' if host == '0.0.0.0' else host}:{port}"
        try:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.orchestrate.worker",
                 "--connect", connect,
                 "--heartbeat", str(self.heartbeat)],
                env=env, stdout=subprocess.DEVNULL)
        except OSError as error:
            self._respawn_budget = 0
            self._maybe_degrade(f"cannot spawn workers: {error}")
            return
        self._procs.append(proc)

    def shutdown(self) -> None:
        if self._thread is None:
            return
        self._stopping.set()
        self._wake()
        self._thread.join(timeout=10)
        self._thread = None

    def reset(self) -> None:
        """Backend-infrastructure failures are handled internally (lease
        revocation, respawn); nothing to rebuild here."""

    #: stats key -> live-metrics counter mirrored by :meth:`_bump`.
    _STAT_METRICS = {
        "dispatched": "repro_jobs_dispatched_total",
        "revoked": "repro_lease_revocations_total",
        "worker_losses": "repro_worker_losses_total",
        "respawns": "repro_worker_respawns_total",
        "late_results": "repro_late_results_total",
    }

    def _bump(self, stat: str) -> None:
        self.stats[stat] += 1
        from repro.observe.metrics import metrics
        registry = metrics()
        if registry is not None:
            registry.counter(self._STAT_METRICS[stat]).inc()

    # ------------------------------------------------------------------
    # Submission (scheduler thread)

    def submit(self, fn, *args, meta=None, **kwargs) -> Future:
        with self._lock:
            if self._inline is not None:
                return self._inline.submit(fn, *args, **kwargs)
            future: Future = Future()
            job_id = self._next_job
            self._next_job += 1
            self._jobs[job_id] = _Job(job_id, future, (fn, args, kwargs),
                                      dict(meta or {}))
            self._pending.append(job_id)
        self._wake()
        return future

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"x")
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Coordinator loop (IO thread): accept, read, dispatch, monitor.

    def _loop(self) -> None:
        tick = max(0.05, min(0.25, self.heartbeat / 4))
        while not self._stopping.is_set():
            for key, _ in self._selector.select(timeout=tick):
                if key.data == "accept":
                    self._accept()
                elif key.data == "wake":
                    try:
                        self._wake_recv.recv(4096)
                    except OSError:
                        pass
                else:
                    self._read(key.data)
            with self._lock:
                self._dispatch()
                self._check_leases()
                self._reap_procs()
        self._teardown()

    def _accept(self) -> None:
        try:
            sock, _ = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _Conn(sock)
        with self._lock:
            self._conns[sock] = conn
        self._selector.register(sock, selectors.EVENT_READ, conn)

    def _read(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as error:
            self._lose_worker(conn, f"connection error: {error}")
            return
        if not data:
            self._lose_worker(conn, "connection closed")
            return
        try:
            messages = conn.buffer.feed(data)
        except Exception as error:  # noqa: BLE001 — garbled stream
            self._lose_worker(conn, f"corrupt frame: {error}")
            return
        for message in messages:
            self._handle(conn, message)

    def _handle(self, conn: _Conn, message: dict) -> None:
        kind = message.get("kind")
        with self._lock:
            if kind == "hello":
                conn.worker = message.get("worker", "worker-?")
                conn.host = message.get("host")
                conn.pid = message.get("pid")
            elif kind == "heartbeat":
                lease = conn.lease
                if lease is not None \
                        and lease.lease_id == message.get("lease"):
                    lease.hb_deadline = time.monotonic() \
                        + self.lease_timeout
            elif kind == "result":
                self._finish(conn, message)

    def _finish(self, conn: _Conn, message: dict) -> None:
        lease = conn.lease
        job_id = message.get("job_id")
        if lease is None or lease.job_id != job_id \
                or lease.lease_id != message.get("lease"):
            # A result for a lease we already revoked: the job was
            # requeued elsewhere — dropping the frame is what keeps it
            # singly-counted.
            self._bump("late_results")
            return
        conn.lease = None
        job = self._jobs.pop(job_id, None)
        if job is None:
            self._bump("late_results")
            return
        job.future._repro_provenance = {
            "worker": conn.worker, "host": conn.host,
            "lease": lease.lease_id,
        }
        if message.get("status") == "ok":
            job.future.set_result(message.get("value"))
        else:
            error = message.get("error")
            if not isinstance(error, BaseException):
                error = RuntimeError(str(error))
            job.future.set_exception(error)

    # ------------------------------------------------------------------
    # Dispatch and failure detection (called under self._lock)

    def _dispatch(self) -> None:
        idle = [conn for conn in self._conns.values() if conn.idle]
        while idle and self._pending:
            job_id = self._pending.popleft()
            job = self._jobs.get(job_id)
            if job is None:
                continue
            conn = idle.pop()
            lease_id = f"L{self._next_lease}"
            self._next_lease += 1
            now = time.monotonic()
            wall_limit = job.meta.get("wall_limit")
            lease = _Lease(
                lease_id, job_id, conn.worker,
                hb_deadline=now + self.lease_timeout,
                wall_deadline=(now + wall_limit + self.wall_grace
                               if wall_limit else None))
            frame = {"kind": "job", "job_id": job_id, "lease": lease_id,
                     "payload": job.payload, "meta": job.meta,
                     "heartbeat": self.heartbeat}
            try:
                conn.sock.setblocking(True)
                send_frame(conn.sock, frame)
                conn.sock.setblocking(False)
            except OSError as error:
                self._pending.appendleft(job_id)
                self._lose_worker(conn, f"dispatch failed: {error}")
                continue
            conn.lease = lease
            self._bump("dispatched")
        if self._pending and not self._conns and not self._alive_procs():
            if self._respawn_budget > 0:
                self._bump("respawns")
                self._respawn_budget -= 1
                self._spawn(strip_chaos=True)
            else:
                self._maybe_degrade("no workers left")

    def _check_leases(self) -> None:
        now = time.monotonic()
        for conn in list(self._conns.values()):
            lease = conn.lease
            if lease is None:
                continue
            if now > lease.hb_deadline:
                self._revoke(conn, "missed heartbeats")
            elif lease.wall_deadline is not None \
                    and now > lease.wall_deadline:
                self._revoke(conn, "wall-limit exceeded")

    def _revoke(self, conn: _Conn, reason: str) -> None:
        self._bump("revoked")
        self._lose_worker(conn, f"lease revoked: {reason}")

    def _lose_worker(self, conn: _Conn, reason: str) -> None:
        """Tear one worker down and requeue its job via WorkerLost."""
        with self._lock:
            if self._conns.pop(conn.sock, None) is None:
                return  # already handled
            self._bump("worker_losses")
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
            self._kill_proc(conn.pid)
            lease, conn.lease = conn.lease, None
            if lease is not None:
                job = self._jobs.pop(lease.job_id, None)
                if job is not None:
                    error = WorkerLost(
                        f"worker {conn.worker or '?'} lost ({reason}); "
                        f"job {job.meta.get('name', lease.job_id)} "
                        f"requeued")
                    job.future._repro_provenance = {
                        "worker": conn.worker, "host": conn.host,
                        "lease": lease.lease_id,
                    }
                    job.future.set_exception(error)
            if self._respawn_budget > 0 and not self._stopping.is_set():
                self._bump("respawns")
                self._respawn_budget -= 1
                self._spawn(strip_chaos=True)

    def _kill_proc(self, pid: int | None) -> None:
        for proc in list(self._procs):
            if pid is not None and proc.pid != pid:
                continue
            if pid is None:
                continue
            try:
                proc.kill()
            except OSError:
                pass
            try:
                proc.wait(timeout=5)
            except Exception:  # noqa: BLE001 — best effort
                pass
            self._procs.remove(proc)

    def _reap_procs(self) -> None:
        connected = {conn.pid for conn in self._conns.values()}
        for proc in list(self._procs):
            if proc.poll() is not None and proc.pid not in connected:
                # Died before (or without) a socket to report through.
                self._procs.remove(proc)
                if self._respawn_budget > 0 and not self._stopping.is_set():
                    self._bump("respawns")
                    self._respawn_budget -= 1
                    self._spawn(strip_chaos=True)

    def _alive_procs(self) -> int:
        return sum(1 for proc in self._procs if proc.poll() is None)

    # ------------------------------------------------------------------
    # Degradation (mirrors PoolExecutor: finish the sweep no matter what)

    def _maybe_degrade(self, reason: str) -> None:
        self._degrade(reason)
        while self._pending:
            job_id = self._pending.popleft()
            job = self._jobs.pop(job_id, None)
            if job is None:
                continue
            fn, args, kwargs = job.payload
            try:
                job.future.set_result(fn(*args, **kwargs))
            except BaseException as error:  # noqa: BLE001 — via future
                job.future.set_exception(error)

    def _degrade(self, reason: str) -> None:
        if self._inline is None:
            self._inline = InlineExecutor()
            self.degraded_reason = reason
            self.name = f"{self.name}->inline ({reason})"

    # ------------------------------------------------------------------

    def _teardown(self) -> None:
        with self._lock:
            for conn in list(self._conns.values()):
                try:
                    conn.sock.setblocking(True)
                    conn.sock.settimeout(1.0)
                    send_frame(conn.sock, {"kind": "shutdown"})
                except OSError:
                    pass
                try:
                    conn.sock.close()
                except OSError:
                    pass
            self._conns.clear()
            for proc in list(self._procs):
                try:
                    proc.kill()
                    proc.wait(timeout=5)
                except Exception:  # noqa: BLE001 — best effort
                    pass
            self._procs.clear()
            for job in self._jobs.values():
                if not job.future.done():
                    job.future.set_exception(
                        WorkerLost("executor shut down"))
            self._jobs.clear()
            self._pending.clear()
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._listener, self._wake_recv, self._wake_send):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
