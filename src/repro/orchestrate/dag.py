"""Explicit job DAGs for experiment sweeps.

The paper's thesis — computation runs best as explicit dataflow — applies
to our own harness: a figure sweep is a dataflow of *jobs* (compile the
kernel, simulate each cell, aggregate the rows), not an imperative loop.
This module is the static half of that story: :class:`JobSpec` describes
one job (a picklable callable plus arguments, dependencies, and policy
knobs) and :class:`JobDAG` holds the validated graph the
:class:`~repro.orchestrate.scheduler.Scheduler` executes.

Identity is content-addressed twice over:

- ``JobSpec.key`` fingerprints one job — its name, callable, arguments,
  and dependency names — so a journal entry from an earlier run is only
  reused when the job it recorded is byte-for-byte the same work;
- ``JobDAG.dag_id`` fingerprints the whole graph (the sorted job keys),
  so every telemetry record of a sweep names exactly which sweep shape
  produced it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Job categories the harnesses use; purely descriptive, but the
#: ExperimentRunner adapter reports only ``cell`` jobs as outcomes.
CATEGORIES = ("compile", "cell", "aggregate", "job")


class DagError(ReproError):
    """A malformed DAG: duplicate names, unknown deps, or a cycle."""


@dataclass(frozen=True)
class JobSpec:
    """One schedulable job.

    ``fn`` must be a module-level callable (and ``args``/``kwargs``
    picklable) when the DAG runs on a process-pool executor; the inline
    executor accepts anything callable. ``deps`` name jobs that must
    complete OK first — a degraded dependency skips this job unless
    ``tolerant`` is set, in which case the job runs with ``None`` in
    place of each degraded dependency value.

    ``pass_deps=True`` injects ``deps=[value, ...]`` (dependency values
    in declaration order) as a keyword argument — the aggregation hook.
    ``transient=True`` keeps the job out of the journal: it is re-run on
    every invocation instead of resumed (aggregates are transient so a
    resumed sweep re-aggregates fresh rows). ``retries``/``wall_limit``
    override the scheduler-wide policy for this job when not ``None``.
    """

    name: str
    fn: object
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    deps: tuple = ()
    category: str = "job"
    tolerant: bool = False
    pass_deps: bool = False
    transient: bool = False
    retries: int | None = None
    wall_limit: float | None = None

    def __post_init__(self):
        object.__setattr__(self, "args", tuple(self.args))
        object.__setattr__(self, "deps", tuple(self.deps))
        if self.category not in CATEGORIES:
            raise DagError(f"job {self.name!r}: unknown category "
                           f"{self.category!r} (one of {CATEGORIES})")

    @property
    def key(self) -> str:
        """Content address of this job's work (cached after first use)."""
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = _content_key(self)
            self.__dict__["_key"] = cached
        return cached


def _callable_identity(fn) -> str:
    """A stable name for ``fn``: module-qualified when possible.

    Lambdas and bound methods get their repr (which may embed an
    address); they cannot cross a process boundary anyway, and callers
    that journal by content are expected to use module-level functions.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if module and qualname and "<lambda>" not in qualname \
            and "<locals>" not in qualname:
        return f"{module}.{qualname}"
    return repr(fn)


def _content_key(spec: JobSpec) -> str:
    payload = "\x1f".join((
        spec.name,
        _callable_identity(spec.fn),
        repr(spec.args),
        repr(sorted(spec.kwargs.items())),
        repr(spec.deps),
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


class JobDAG:
    """A validated, insertion-ordered job graph.

    Jobs are added with :meth:`add` (or the :meth:`job` convenience
    builder); :meth:`validate` — called by the scheduler — rejects
    duplicate names, unknown dependencies, and cycles, and fixes the
    topological order used for execution and display.
    """

    def __init__(self, name: str):
        self.name = name
        self.jobs: dict[str, JobSpec] = {}

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs.values())

    def add(self, spec: JobSpec) -> JobSpec:
        if spec.name in self.jobs:
            raise DagError(f"duplicate job {spec.name!r} in DAG {self.name!r}")
        self.jobs[spec.name] = spec
        return spec

    def job(self, name: str, fn, *args, deps=(), **options) -> JobSpec:
        """Build and add one :class:`JobSpec`; keyword ``options`` split
        between spec fields and the job's own keyword arguments."""
        fields = {k: options.pop(k) for k in list(options)
                  if k in JobSpec.__dataclass_fields__
                  and k not in ("name", "fn", "args", "kwargs", "deps")}
        return self.add(JobSpec(name=name, fn=fn, args=args, kwargs=options,
                                deps=tuple(deps), **fields))

    # ------------------------------------------------------------------

    def validate(self) -> None:
        for spec in self.jobs.values():
            for dep in spec.deps:
                if dep not in self.jobs:
                    raise DagError(f"job {spec.name!r} depends on unknown "
                                   f"job {dep!r}")
        self.topo_order()  # raises on cycles

    def topo_order(self) -> list[JobSpec]:
        """Jobs in dependency order (stable w.r.t. insertion order)."""
        indegree = {name: len(spec.deps) for name, spec in self.jobs.items()}
        dependents: dict[str, list[str]] = {name: [] for name in self.jobs}
        for spec in self.jobs.values():
            for dep in spec.deps:
                if dep in dependents:
                    dependents[dep].append(spec.name)
        ready = [name for name in self.jobs if indegree[name] == 0]
        order: list[JobSpec] = []
        while ready:
            name = ready.pop(0)
            order.append(self.jobs[name])
            for dependent in dependents[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self.jobs):
            stuck = sorted(name for name, degree in indegree.items()
                           if degree > 0)
            raise DagError(f"cycle in DAG {self.name!r} involving: "
                           + ", ".join(stuck))
        return order

    @property
    def dag_id(self) -> str:
        """Content address of the whole graph (sorted job keys)."""
        digest = hashlib.sha256()
        for key in sorted(spec.key for spec in self.jobs.values()):
            digest.update(key.encode())
            digest.update(b"\n")
        return digest.hexdigest()

    def counts(self) -> dict[str, int]:
        """jobs per category, for describe/status displays."""
        counts: dict[str, int] = {}
        for spec in self.jobs.values():
            counts[spec.category] = counts.get(spec.category, 0) + 1
        return counts
