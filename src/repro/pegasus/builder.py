"""Construction of Pegasus graphs from hyperblock-partitioned CFGs (§3).

Per hyperblock, in topological order:

1. block predicates are built from branch conditions (PSSA path predicates);
2. scalar code is speculated: every side-effect-free instruction becomes an
   unconditional node; decoded multiplexors merge reaching definitions at
   control joins;
3. loads/stores become predicated memory nodes; the §3.3 pairwise rule plus
   transitive reduction (§3.4) produces their token wiring;
4. every live-out value and every location class's token leaves through eta
   nodes gated by the exit-edge predicate, and enters successor hyperblocks
   through merge nodes (loop back edges fill their merge slots once the
   latch hyperblock has been built).

The result is the unoptimized Figure-1A-style graph the optimization passes
then rewrite.
"""

from __future__ import annotations

from repro.errors import PegasusError
from repro.frontend import ast
from repro.frontend import types as ty
from repro.cfg import ir
from repro.cfg.hyperblocks import Hyperblock, HyperblockPartition, form_hyperblocks
from repro.cfg.liveness import Liveness
from repro.analysis.pointers import PointerAnalysis
from repro.pegasus.graph import Graph, OutPort
from repro.pegasus import nodes as N
from repro.pegasus.tokens import TokenRelation, combine_ports, wire_tokens

PREDICATE_PRODUCERS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})


class BuildResult:
    """A built graph plus the analyses the optimizer needs."""

    def __init__(self, graph: Graph, partition: HyperblockPartition,
                 pointers: PointerAnalysis,
                 relations: dict[int, TokenRelation],
                 loop_predicates: dict[int, OutPort]):
        self.graph = graph
        self.partition = partition
        self.pointers = pointers
        # Per-hyperblock token relation (kept in sync by optimizations).
        self.relations = relations
        # For loop-body hyperblocks: the predicate that is true when the
        # loop repeats (the disjunction of back-edge predicates).
        self.loop_predicates = loop_predicates


def build_pegasus(func: ir.Function, globals_: list[ast.Symbol],
                  entry_points_to: dict[str, list[ast.Symbol]] | None = None,
                  partition: HyperblockPartition | None = None) -> BuildResult:
    """Build the Pegasus graph for a flattened (call-free) function.

    ``partition`` lets a caller that already formed the hyperblocks (the
    staged pipeline driver, which times the formation separately) pass
    them in instead of recomputing.
    """
    return _Builder(func, globals_, entry_points_to, partition).build()


class _Builder:
    def __init__(self, func: ir.Function, globals_: list[ast.Symbol],
                 entry_points_to, partition: HyperblockPartition | None = None):
        self.func = func
        self.partition = (partition if partition is not None
                          else form_hyperblocks(func))
        self.pointers = PointerAnalysis(func, globals_, entry_points_to)
        self.liveness = Liveness(func)
        self.graph = Graph(func.name)
        self.graph.num_hyperblocks = len(self.partition.hyperblocks)

        self.classes = self.pointers.classes
        # At least one token stream always exists: it sequences hyperblock
        # activations, which constant-valued etas use as their trigger.
        self.class_ids = list(range(max(1, self.classes.num_classes)))

        # Per-block environments (temp -> port) and predicates.
        self.env: dict[ir.BasicBlock, dict[ir.Temp, OutPort]] = {}
        self.block_pred: dict[ir.BasicBlock, OutPort] = {}
        self.edge_pred: dict[tuple[ir.BasicBlock, ir.BasicBlock], OutPort] = {}
        # Values/tokens carried on inter-hyperblock edges, per (src, dst).
        self.edge_values: dict[tuple[ir.BasicBlock, ir.BasicBlock],
                               dict[ir.Temp, OutPort]] = {}
        self.edge_tokens: dict[tuple[ir.BasicBlock, ir.BasicBlock],
                               dict[int, OutPort]] = {}
        # Merge slots awaiting back-edge etas: (merge, slot, src, dst, key).
        self.pending_back: list[tuple[N.MergeNode, int, ir.BasicBlock,
                                      ir.BasicBlock, object]] = []
        self.relations: dict[int, TokenRelation] = {}
        self.loop_predicates: dict[int, OutPort] = {}
        self.back_edges = self.partition.loop_info.back_edges()

        self._const_cache: dict[tuple[object, ty.Type, int], N.ConstNode] = {}
        self._symaddr_cache: dict[tuple[int, int], N.SymbolAddrNode] = {}
        self.return_built = False

    # ------------------------------------------------------------------

    def build(self) -> BuildResult:
        for hyperblock in self.partition.hyperblocks:
            self._build_hyperblock(hyperblock)
        self._fill_pending_back_edges()
        self._wire_loop_controls()
        if not self.return_built:
            raise PegasusError(f"{self.func.name}: no return was built")
        return BuildResult(self.graph, self.partition, self.pointers,
                           self.relations, self.loop_predicates)

    # ------------------------------------------------------------------
    # Small node factories

    def const(self, value, type_: ty.Type, hyperblock: int) -> OutPort:
        key = (value, type_, hyperblock)
        if key not in self._const_cache:
            self._const_cache[key] = self.graph.add(
                N.ConstNode(value, type_, hyperblock)
            )
        return self._const_cache[key].out()

    def symaddr(self, symbol: ast.Symbol, hyperblock: int) -> OutPort:
        key = (id(symbol), hyperblock)
        if key not in self._symaddr_cache:
            self._symaddr_cache[key] = self.graph.add(
                N.SymbolAddrNode(symbol, hyperblock)
            )
        return self._symaddr_cache[key].out()

    def true_pred(self, hyperblock: int) -> OutPort:
        return self.const(1, ty.INT, hyperblock)

    def _and(self, a: OutPort, b: OutPort, hyperblock: int) -> OutPort:
        if _const_value(a) == 1:
            return b
        if _const_value(b) == 1:
            return a
        return self.graph.add(N.BinOpNode("and", ty.INT, a, b, hyperblock)).out()

    def _or(self, a: OutPort, b: OutPort, hyperblock: int) -> OutPort:
        if _const_value(a) == 0:
            return b
        if _const_value(b) == 0:
            return a
        return self.graph.add(N.BinOpNode("or", ty.INT, a, b, hyperblock)).out()

    def _not(self, a: OutPort, hyperblock: int) -> OutPort:
        value = _const_value(a)
        if value is not None:
            return self.const(0 if value else 1, ty.INT, hyperblock)
        return self.graph.add(N.UnOpNode("lnot", ty.INT, a, hyperblock)).out()

    def _as_predicate(self, port: OutPort, operand_type: ty.Type,
                      hyperblock: int) -> OutPort:
        """Normalize a scalar condition to a 0/1 predicate."""
        producer = port.node
        if isinstance(producer, N.BinOpNode) and producer.op in PREDICATE_PRODUCERS:
            return port
        if isinstance(producer, N.UnOpNode) and producer.op == "lnot":
            return port
        if isinstance(producer, N.ConstNode):
            return self.const(1 if producer.value else 0, ty.INT, hyperblock)
        zero = self.const(0, operand_type.decay(), hyperblock)
        return self.graph.add(
            N.BinOpNode("ne", operand_type.decay(), port, zero, hyperblock)
        ).out()

    # ------------------------------------------------------------------
    # Hyperblock processing

    def _build_hyperblock(self, hb: Hyperblock) -> None:
        hb_id = hb.id
        entry_values, entry_tokens = self._hyperblock_inputs(hb)

        # Predicates and environments, walking blocks in topological order
        # (hb.blocks is in forward RPO by construction).
        block_set = set(hb.blocks)
        reach = _intra_reachability(hb, self.back_edges)
        preds_map = self.func.predecessors()

        for block in hb.blocks:
            if block is hb.entry:
                self.block_pred[block] = self.true_pred(hb_id)
                self.env[block] = dict(entry_values)
            else:
                incoming = [
                    p for p in preds_map[block]
                    if p in block_set and (p, block) not in self.back_edges
                ]
                self.block_pred[block] = self._or_all(
                    [self.edge_pred[(p, block)] for p in incoming], hb_id
                )
                self.env[block] = self._join_envs(block, incoming, hb_id)
            self._build_block_body(hb, block)
            self._build_edge_predicates(hb, block)

        # Token wiring: §3.3 pairwise rule + §3.4 transitive reduction.
        relation = self._build_token_relation(hb, reach, entry_tokens)
        relation.reduce()
        wire_tokens(self.graph, relation, hb_id)
        self.relations[hb_id] = relation

        self._build_exits(hb, relation)

    # ------------------------------------------------------------------

    def _hyperblock_inputs(self, hb: Hyperblock):
        """Values and class tokens available at the hyperblock entry."""
        hb_id = hb.id
        if hb.entry is self.func.entry:
            values: dict[ir.Temp, OutPort] = {}
            for index, (symbol, temp) in enumerate(self.func.params):
                param = self.graph.add(N.ParamNode(symbol.name, temp.type, index))
                values[temp] = param.out()
            tokens = {
                cid: self.graph.add(N.InitialTokenNode(cid)).out()
                for cid in self.class_ids
            }
            return values, tokens

        preds_map = self.func.predecessors()
        incoming = sorted(preds_map[hb.entry], key=lambda b: b.id)
        live = self.liveness.live_in[hb.entry]
        is_loop_header = any((p, hb.entry) in self.back_edges for p in incoming)

        values = {}
        tokens: dict[int, OutPort] = {}
        if len(incoming) == 1 and not is_loop_header:
            edge = (incoming[0], hb.entry)
            for temp in sorted(live, key=lambda t: t.id):
                values[temp] = self.edge_values[edge][temp]
            for cid in self.class_ids:
                tokens[cid] = self.edge_tokens[edge][cid]
            return values, tokens

        for temp in sorted(live, key=lambda t: t.id):
            merge = self.graph.add(
                N.MergeNode(temp.type, len(incoming), hb_id, N.DATA)
            )
            self._fill_merge(merge, incoming, hb.entry, temp)
            values[temp] = merge.out()
        for cid in self.class_ids:
            merge = self.graph.add(N.MergeNode(None, len(incoming), hb_id, N.TOKEN))
            merge.location_class = cid
            self._fill_merge(merge, incoming, hb.entry, cid)
            tokens[cid] = merge.out()
        return values, tokens

    def _fill_merge(self, merge: N.MergeNode, incoming: list[ir.BasicBlock],
                    target: ir.BasicBlock, key) -> None:
        for slot, pred_block in enumerate(incoming):
            if (pred_block, target) in self.back_edges:
                merge.back_inputs.add(slot)
                self.pending_back.append((merge, slot, pred_block, target, key))
            else:
                edge = (pred_block, target)
                table = (self.edge_values if isinstance(key, ir.Temp)
                         else self.edge_tokens)
                self.graph.set_input(merge, slot, table[edge][key])

    def _wire_loop_controls(self) -> None:
        """Give every loop-header merge its per-iteration control stream.

        The control value for iteration j answers "will a back value
        arrive?" — true when a back edge fires, false when the loop exits.
        When every back edge and every loop exit originates in the header
        hyperblock itself (single-hyperblock bodies: plain for/while
        loops), the disjunction of the back-edge predicates is already a
        per-iteration value and is used directly. For multi-hyperblock
        bodies (nested loops, breaks from deeper regions) the decision is
        made elsewhere, so a *decision stream* is assembled: an eta
        contributes TRUE on each back edge and FALSE on each loop exit;
        exactly one contribution fires per iteration, and a merge of them
        yields the stream.
        """
        of_block = self.partition.of_block
        for hb in self.partition.hyperblocks:
            header_merges = [
                node for node in self.graph.by_kind(N.MergeNode)
                if node.hyperblock == hb.id and node.back_inputs
                and not node.has_control
            ]
            if not header_merges:
                continue
            loop = hb.loop
            if loop is None or loop.header is not hb.entry:
                raise PegasusError(
                    f"hyperblock {hb.id} has loop merges but is not a header"
                )
            control = self._loop_control_port(hb, loop)
            self.loop_predicates[hb.id] = control
            for merge in header_merges:
                merge.add_control(self.graph, control)

    def _loop_control_port(self, hb: Hyperblock, loop) -> OutPort:
        back = [(latch, loop.header) for latch in sorted(loop.latches,
                                                         key=lambda b: b.id)]
        exits = []
        for block in sorted(loop.blocks, key=lambda b: b.id):
            for succ in block.successors():
                if succ not in loop.blocks:
                    exits.append((block, succ))
        sources = {self.partition.of_block[b] for b, _ in back + exits}
        if sources == {hb}:
            return self._or_all([self.edge_pred[e] for e in back], hb.id)
        # The decision is made across several hyperblocks: assemble a
        # per-iteration stream from pulses on the deciding edges. Exactly
        # one of (back edges + exit edges) fires per iteration; each edge
        # already carries etas, whose outputs serve as the pulses.
        pulses: list[OutPort] = []
        true_slots: set[int] = set()
        for index, edge in enumerate(back + exits):
            if index < len(back):
                true_slots.add(index)
            pulses.append(self._edge_pulse(edge))
        stream = N.ControlStreamNode(len(pulses), true_slots, hb.id)
        self.graph.add(stream)
        for slot, pulse in enumerate(pulses):
            self.graph.set_input(stream, slot, pulse)
        return stream.out()

    def _edge_pulse(self, edge: tuple[ir.BasicBlock, ir.BasicBlock]) -> OutPort:
        """A port that fires exactly once whenever ``edge`` is taken."""
        values = self.edge_values.get(edge, {})
        for temp in sorted(values, key=lambda t: t.id):
            return values[temp]  # a live scalar's eta: cheapest pulse
        tokens = self.edge_tokens.get(edge)
        if not tokens:
            raise PegasusError(f"edge {edge[0].name}->{edge[1].name} has no etas")
        return tokens[min(tokens)]

    def _fill_pending_back_edges(self) -> None:
        for merge, slot, src, dst, key in self.pending_back:
            table = (self.edge_values if isinstance(key, ir.Temp)
                     else self.edge_tokens)
            edge = (src, dst)
            if edge not in table or key not in table[edge]:
                raise PegasusError(
                    f"back edge {src.name}->{dst.name} missing value for {key}"
                )
            self.graph.set_input(merge, slot, table[edge][key])

    # ------------------------------------------------------------------

    def _or_all(self, ports: list[OutPort], hb_id: int) -> OutPort:
        if not ports:
            raise PegasusError("block with no incoming forward edges")
        result = ports[0]
        for port in ports[1:]:
            result = self._or(result, port, hb_id)
        return result

    def _join_envs(self, block: ir.BasicBlock, incoming: list[ir.BasicBlock],
                   hb_id: int) -> dict[ir.Temp, OutPort]:
        if len(incoming) == 1:
            return dict(self.env[incoming[0]])
        live = self.liveness.live_in[block]
        result: dict[ir.Temp, OutPort] = {}
        common = set(self.env[incoming[0]])
        for pred in incoming[1:]:
            common &= set(self.env[pred])
        for temp in sorted(common, key=lambda t: t.id):
            ports = [self.env[p][temp] for p in incoming]
            if all(port == ports[0] for port in ports):
                result[temp] = ports[0]
            elif temp in live:
                pairs = [
                    (self.edge_pred[(p, block)], self.env[p][temp])
                    for p in incoming
                ]
                mux = self.graph.add(N.MuxNode(pairs, temp.type, hb_id))
                result[temp] = mux.out()
            # Dead differing temps are dropped.
        return result

    # ------------------------------------------------------------------

    def _build_block_body(self, hb: Hyperblock, block: ir.BasicBlock) -> None:
        hb_id = hb.id
        env = self.env[block]
        pred = self.block_pred[block]
        for instr in block.instrs:
            if isinstance(instr, ir.Copy):
                env[instr.dest] = self._operand(instr.src, env, hb_id)
            elif isinstance(instr, ir.BinOp):
                node = self.graph.add(N.BinOpNode(
                    instr.op, instr.type,
                    self._operand(instr.lhs, env, hb_id),
                    self._operand(instr.rhs, env, hb_id), hb_id,
                ))
                env[instr.dest] = node.out()
            elif isinstance(instr, ir.UnOp):
                node = self.graph.add(N.UnOpNode(
                    instr.op, instr.type,
                    self._operand(instr.src, env, hb_id), hb_id,
                ))
                env[instr.dest] = node.out()
            elif isinstance(instr, ir.CastOp):
                node = self.graph.add(N.CastNode(
                    instr.from_type, instr.to_type,
                    self._operand(instr.src, env, hb_id), hb_id,
                ))
                env[instr.dest] = node.out()
            elif isinstance(instr, ir.Load):
                node = self.graph.add(N.LoadNode(
                    instr.type, self._operand(instr.addr, env, hb_id),
                    pred, None, self.pointers.rwset(instr), hb_id,
                ))
                env[instr.dest] = node.out(N.LoadNode.VALUE_OUT)
                self._record_memop(block, node)
            elif isinstance(instr, ir.Store):
                node = self.graph.add(N.StoreNode(
                    instr.type, self._operand(instr.addr, env, hb_id),
                    self._operand(instr.src, env, hb_id),
                    pred, None, self.pointers.rwset(instr), hb_id,
                ))
                self._record_memop(block, node)
            elif isinstance(instr, ir.Call):
                raise PegasusError(
                    f"unresolved call to {instr.callee!r}; inline first"
                )
            else:
                raise PegasusError(f"cannot build node for {instr!r}")

    def _record_memop(self, block: ir.BasicBlock, node: N.Node) -> None:
        self._memops_in_flight.setdefault(block, []).append(node)

    @property
    def _memops_in_flight(self) -> dict[ir.BasicBlock, list[N.Node]]:
        if not hasattr(self, "_memops_store"):
            self._memops_store: dict[ir.BasicBlock, list[N.Node]] = {}
        return self._memops_store

    def _operand(self, operand: ir.Operand, env: dict[ir.Temp, OutPort],
                 hb_id: int) -> OutPort:
        if isinstance(operand, ir.Temp):
            if operand not in env:
                raise PegasusError(f"use of unavailable temp {operand}")
            return env[operand]
        if isinstance(operand, ir.Const):
            return self.const(operand.value, operand.type, hb_id)
        if isinstance(operand, ir.SymAddr):
            return self.symaddr(operand.symbol, hb_id)
        raise PegasusError(f"unknown operand {operand!r}")

    # ------------------------------------------------------------------

    def _build_edge_predicates(self, hb: Hyperblock, block: ir.BasicBlock) -> None:
        hb_id = hb.id
        pred = self.block_pred[block]
        term = block.terminator
        if isinstance(term, ir.Jump):
            self.edge_pred[(block, term.target)] = pred
        elif isinstance(term, ir.Branch):
            cond_port = self._operand(term.cond, self.env[block], hb_id)
            cond_type = _operand_type(term.cond)
            cond = self._as_predicate(cond_port, cond_type, hb_id)
            self.edge_pred[(block, term.if_true)] = self._and(pred, cond, hb_id)
            self.edge_pred[(block, term.if_false)] = self._and(
                pred, self._not(cond, hb_id), hb_id
            )
        elif isinstance(term, ir.Ret):
            pass
        else:
            raise PegasusError(f"block {block.name} lacks a terminator")

    # ------------------------------------------------------------------

    def _build_token_relation(self, hb: Hyperblock, reach, entry_tokens) -> TokenRelation:
        relation = TokenRelation(entry_tokens)
        ordered: list[tuple[ir.BasicBlock, int, N.Node]] = []
        for block in hb.blocks:
            for index, node in enumerate(self._memops_in_flight.get(block, [])):
                ordered.append((block, index, node))

        entries: list[tuple[ir.BasicBlock, int, N.Node, frozenset[int], bool]] = []
        for block, index, node in ordered:
            rwset = node.rwset  # type: ignore[attr-defined]
            classes = self.classes.classes_of_set(rwset)
            is_write = isinstance(node, N.StoreNode)
            deps: list = []
            for prev_block, prev_index, prev_node, prev_classes, prev_write in entries:
                if not (prev_write or is_write):
                    continue  # reads always commute
                if prev_block is block:
                    pass  # program order within the block
                elif block not in reach[prev_block]:
                    continue  # no control-flow path between them
                if self.pointers.may_interfere(
                    prev_node.rwset, rwset  # type: ignore[attr-defined]
                ):
                    deps.append(prev_node)
            # The per-class entry token acts as an initial write.
            for cid in classes:
                deps.append(entry_tokens[cid])
            relation.add_op(node, classes, is_write, deps)
            entries.append((block, index, node, classes, is_write))
        return relation

    # ------------------------------------------------------------------

    def _build_exits(self, hb: Hyperblock, relation: TokenRelation) -> None:
        hb_id = hb.id
        exit_frontiers = {
            cid: combine_ports(
                self.graph,
                [self._source_token(src) for src in relation.exit_frontier(cid)],
                hb_id,
            )
            for cid in self.class_ids
        }

        for src_block, target_block, target_hb in self.partition.successors(hb):
            edge = (src_block, target_block)
            pred = self.edge_pred[edge]
            live = self.liveness.live_in[target_block]
            env = self.env[src_block]
            values: dict[ir.Temp, OutPort] = {}
            for temp in sorted(live, key=lambda t: t.id):
                if temp not in env:
                    raise PegasusError(
                        f"{temp} live into {target_block.name} but undefined "
                        f"on edge from {src_block.name}"
                    )
                eta = self.graph.add(
                    N.EtaNode(temp.type, env[temp], pred, hb_id, N.DATA)
                )
                if N.is_static_wire(env[temp]) and N.is_static_wire(pred):
                    eta.add_trigger(self.graph,
                                    relation.boundary[min(relation.boundary)])
                values[temp] = eta.out()
            self.edge_values[edge] = values
            tokens: dict[int, OutPort] = {}
            for cid in self.class_ids:
                eta = self.graph.add(
                    N.EtaNode(None, exit_frontiers[cid], pred, hb_id, N.TOKEN)
                )
                eta.location_class = cid
                tokens[cid] = eta.out()
            self.edge_tokens[edge] = tokens


        for block in hb.blocks:
            term = block.terminator
            if isinstance(term, ir.Ret):
                token = combine_ports(
                    self.graph,
                    [p for p in exit_frontiers.values() if p is not None],
                    hb_id,
                )
                if token is None:
                    token = self.graph.add(N.InitialTokenNode()).out()
                value = None
                type_ = None
                if term.value is not None:
                    value = self._operand(term.value, self.env[block], hb_id)
                    type_ = _operand_type(term.value)
                node = self.graph.add(N.ReturnNode(type_, value, token, hb_id))
                self.graph.return_node = node
                self.return_built = True

    def _source_token(self, source) -> OutPort:
        from repro.pegasus.tokens import source_port
        return source_port(source)


# ---------------------------------------------------------------------------


def _const_value(port: OutPort):
    node = port.node
    if isinstance(node, N.ConstNode):
        return node.value
    return None


def _operand_type(operand: ir.Operand) -> ty.Type:
    if isinstance(operand, ir.Temp):
        return operand.type
    if isinstance(operand, ir.Const):
        return operand.type
    return ty.ULONG  # SymAddr


def _intra_reachability(hb: Hyperblock, back_edges):
    """block -> blocks reachable within the hyperblock via forward edges."""
    block_set = set(hb.blocks)
    reach: dict[ir.BasicBlock, set[ir.BasicBlock]] = {}
    for block in reversed(hb.blocks):  # reverse topological order
        result: set[ir.BasicBlock] = set()
        for succ in block.successors():
            if succ in block_set and (block, succ) not in back_edges:
                result.add(succ)
                result |= reach.get(succ, set())
        reach[block] = result
    return reach
