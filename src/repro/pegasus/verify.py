"""Structural verification of Pegasus graphs.

Run after construction and after every optimization pass; catches wiring
bugs early instead of as simulation deadlocks. Checks:

- every input slot is connected (except token inputs of immutable loads)
  and carries the value class the consumer expects;
- the forward graph (ignoring merge back inputs) is acyclic;
- exactly one return node, reachable from the graph;
- merges marked as token-circuit carriers have a location class, etas too;
- every node's producer ports are nodes that still live in the graph.
"""

from __future__ import annotations

from repro.errors import PegasusError
from repro.pegasus.graph import Graph
from repro.pegasus import nodes as N


def verify_graph(graph: Graph) -> None:
    """Raise :class:`PegasusError` on the first violated invariant."""
    if graph.return_node is None or graph.return_node not in graph:
        raise PegasusError(f"{graph.name}: missing return node")
    for node in graph:
        _verify_node(graph, node)
    graph.topological_order()  # raises on forward-graph cycles


def _verify_node(graph: Graph, node: N.Node) -> None:
    kinds = node.input_kinds()
    if len(kinds) != len(node.inputs):
        raise PegasusError(
            f"{node!r}: {len(node.inputs)} inputs but {len(kinds)} expected"
        )
    for index, port in enumerate(node.inputs):
        if port is None:
            if _may_be_disconnected(node, index):
                continue
            raise PegasusError(f"{node!r}: input {index} is not connected")
        producer = port.node
        if producer.id not in graph.nodes or graph.nodes[producer.id] is not producer:
            raise PegasusError(
                f"{node!r}: input {index} comes from removed node {producer!r}"
            )
        if port.index >= producer.num_outputs:
            raise PegasusError(
                f"{node!r}: input {index} uses missing output {port.index} "
                f"of {producer!r}"
            )
        produced = producer.output_kinds()[port.index]
        expected = kinds[index]
        if isinstance(node, N.ControlStreamNode):
            continue  # pulses may be data or token streams
        # Predicates are data values (0/1); token edges must stay tokens.
        if (produced == N.TOKEN) != (expected == N.TOKEN):
            raise PegasusError(
                f"{node!r}: input {index} expects {expected}, got {produced} "
                f"from {producer!r}"
            )
    if isinstance(node, N.MergeNode):
        for slot in node.back_inputs:
            if slot >= len(node.inputs):
                raise PegasusError(f"{node!r}: back input {slot} out of range")
        if node.back_inputs and not node.has_control and not node.is_control_stream:
            raise PegasusError(
                f"{node!r}: loop merge lacks a control predicate input"
            )
        if node.has_control and node.control_slot in node.back_inputs:
            raise PegasusError(f"{node!r}: control slot marked as back input")
    if isinstance(node, N.MuxNode) and len(node.inputs) % 2 != 0:
        raise PegasusError(f"{node!r}: odd mux input count")


def _may_be_disconnected(node: N.Node, index: int) -> bool:
    if isinstance(node, N.LoadNode) and index == N.LoadNode.TOKEN_IN:
        return node.immutable
    return False
