"""Pegasus node kinds.

Input/output conventions (matching §3 of the paper):

===============  =============================  =========================
node             inputs                          outputs
===============  =============================  =========================
Const            —                               value
Param            —                               value
BinOp/UnOp/Cast  operand value(s)                value
Mux (decoded)    p0,v0, p1,v1, ...               selected value
Merge            one value per incoming edge     forwarded value
Eta              value, predicate                value (iff predicate)
Combine          n tokens                        one token
InitialToken     —                               one token (at start)
Load             address, predicate, token       value, token
Store            address, value, predicate,      token
                 token
TokenGen(n)      predicate, token                token (§6.3)
Return           [value,] token                  — (ends the procedure)
===============  =============================  =========================

Loads and stores execute only when their predicate is true; with a false
predicate they forward a token instantaneously (a load also produces an
arbitrary value — we use 0). Token inputs may be a Combine's output or,
for operations with a single dependence, a direct token edge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.frontend import types as ty
from repro.pegasus.graph import OutPort

if TYPE_CHECKING:
    from repro.analysis.locations import Location
    from repro.pegasus.graph import Graph

# Edge value classes.
DATA = "data"
PRED = "pred"
TOKEN = "token"


class Node:
    """Base class: a hardware operator in the spatial program."""

    num_outputs = 1

    def __init__(self, inputs: list[Optional[OutPort]], hyperblock: int = 0):
        self.id = -1
        self.graph: "Graph | None" = None
        self.inputs = inputs
        self.hyperblock = hyperblock
        self.source: str | None = None  # diagnostic tag

    def out(self, index: int = 0) -> OutPort:
        return OutPort(self, index)

    def back_input_indices(self) -> frozenset[int]:
        """Input slots whose edges are loop back edges (merge only)."""
        return frozenset()

    def input_kinds(self) -> list[str]:
        """Value class expected on each input slot."""
        raise NotImplementedError

    def output_kinds(self) -> list[str]:
        return [DATA] * self.num_outputs

    @property
    def is_memory_op(self) -> bool:
        return isinstance(self, (LoadNode, StoreNode))

    def label(self) -> str:
        return type(self).__name__.replace("Node", "").lower()

    def __repr__(self) -> str:
        return f"{self.label()}#{self.id}"


class ConstNode(Node):
    def __init__(self, value, type_: ty.Type, hyperblock: int = 0):
        super().__init__([], hyperblock)
        self.value = value
        self.type = type_

    def input_kinds(self) -> list[str]:
        return []

    def label(self) -> str:
        return f"const({self.value})"


class ParamNode(Node):
    def __init__(self, name: str, type_: ty.Type, index: int):
        super().__init__([], 0)
        self.name = name
        self.type = type_
        self.index = index

    def input_kinds(self) -> list[str]:
        return []

    def label(self) -> str:
        return f"param({self.name})"


class SymbolAddrNode(Node):
    """The address of a named memory object (resolved at simulation start)."""

    def __init__(self, symbol, hyperblock: int = 0):
        super().__init__([], hyperblock)
        self.symbol = symbol
        self.type = ty.ULONG

    def input_kinds(self) -> list[str]:
        return []

    def label(self) -> str:
        return f"&{self.symbol.name}"


class BinOpNode(Node):
    def __init__(self, op: str, type_: ty.Type, lhs: OutPort, rhs: OutPort,
                 hyperblock: int = 0):
        super().__init__([lhs, rhs], hyperblock)
        self.op = op
        self.type = type_

    def input_kinds(self) -> list[str]:
        return [DATA, DATA]

    def label(self) -> str:
        return self.op


class UnOpNode(Node):
    def __init__(self, op: str, type_: ty.Type, src: OutPort,
                 hyperblock: int = 0):
        super().__init__([src], hyperblock)
        self.op = op
        self.type = type_

    def input_kinds(self) -> list[str]:
        return [DATA]

    def label(self) -> str:
        return self.op


class CastNode(Node):
    def __init__(self, from_type: ty.Type, to_type: ty.Type, src: OutPort,
                 hyperblock: int = 0):
        super().__init__([src], hyperblock)
        self.from_type = from_type
        self.to_type = to_type

    def input_kinds(self) -> list[str]:
        return [DATA]

    def label(self) -> str:
        return f"cast:{self.to_type}"


class MuxNode(Node):
    """Decoded multiplexor: 2n inputs, (predicate, value) per definition."""

    def __init__(self, pairs: list[tuple[OutPort, OutPort]], type_: ty.Type,
                 hyperblock: int = 0):
        flat: list[Optional[OutPort]] = []
        for pred, value in pairs:
            flat.append(pred)
            flat.append(value)
        super().__init__(flat, hyperblock)
        self.type = type_

    @property
    def arms(self) -> int:
        return len(self.inputs) // 2

    def arm(self, index: int) -> tuple[Optional[OutPort], Optional[OutPort]]:
        """(predicate port, value port) of arm ``index``."""
        return self.inputs[2 * index], self.inputs[2 * index + 1]

    def input_kinds(self) -> list[str]:
        return [PRED, DATA] * self.arms

    def label(self) -> str:
        return f"mux{self.arms}"


class MergeNode(Node):
    """Control-flow join between hyperblocks (triangle pointing up).

    Merges with loop back inputs are *deterministic* (the classic dataflow
    loop schema): a control input — the loop-repeat predicate, appended as
    the last slot — decides, after every forwarded value, whether the next
    value is drawn from a back input (predicate true) or from an entry
    input (false: the activation ended, a new one may begin). Without this
    discipline, pipelined outer loops could inject the next activation's
    entry value while the previous activation still circulates.

    Join merges without back inputs have no control input: their inputs
    are mutually exclusive per activation and activations are serialized
    by the surrounding acyclic control structure.
    """

    def __init__(self, type_: ty.Type | None, arity: int, hyperblock: int = 0,
                 value_class: str = DATA):
        super().__init__([None] * arity, hyperblock)
        self.type = type_
        self.value_class = value_class
        self.back_inputs: set[int] = set()
        self.has_control = False
        # Control-stream merges assemble a loop's per-iteration
        # continue/exit decision from eta contributions inside the body;
        # they are exempt from the "loop merges need a control" rule (their
        # inputs arrive strictly serialized, one per iteration).
        self.is_control_stream = False
        # Token-circuit merges carry the location class they serialize.
        self.location_class: int | None = None

    def add_control(self, graph, pred: OutPort) -> None:
        """Append the loop-predicate control input (last slot)."""
        if self.has_control:
            raise ValueError(f"{self!r} already has a control input")
        self.inputs.append(None)
        self.has_control = True
        graph.set_input(self, len(self.inputs) - 1, pred)

    @property
    def control_slot(self) -> int | None:
        return len(self.inputs) - 1 if self.has_control else None

    def value_slots(self) -> list[int]:
        """Input slots carrying values (everything but the control)."""
        count = len(self.inputs) - (1 if self.has_control else 0)
        return list(range(count))

    def entry_slots(self) -> list[int]:
        return [i for i in self.value_slots() if i not in self.back_inputs]

    def back_input_indices(self) -> frozenset[int]:
        # The control predicate is computed inside the loop and flows to
        # the header: topologically a back edge too.
        if self.has_control:
            return frozenset(self.back_inputs | {len(self.inputs) - 1})
        return frozenset(self.back_inputs)

    def input_kinds(self) -> list[str]:
        kinds = [self.value_class] * len(self.inputs)
        if self.has_control:
            kinds[-1] = PRED
        return kinds

    def output_kinds(self) -> list[str]:
        return [self.value_class]

    def label(self) -> str:
        suffix = f"@c{self.location_class}" if self.location_class is not None else ""
        return f"merge{suffix}"


class EtaNode(Node):
    """Gated transfer out of a hyperblock (triangle pointing down).

    An eta whose value *and* predicate are both constant wires has no
    arrival to pace its firing; such etas carry a third *trigger* input —
    a token from their hyperblock's class-0 stream — so they fire exactly
    once per hyperblock activation (per iteration, in a loop body).
    """

    def __init__(self, type_: ty.Type | None, value: Optional[OutPort],
                 pred: Optional[OutPort], hyperblock: int = 0,
                 value_class: str = DATA):
        super().__init__([value, pred], hyperblock)
        self.type = type_
        self.value_class = value_class
        self.has_trigger = False
        self.location_class: int | None = None

    def add_trigger(self, graph, token: OutPort) -> None:
        if self.has_trigger:
            raise ValueError(f"{self!r} already has a trigger")
        self.inputs.append(None)
        self.has_trigger = True
        graph.set_input(self, 2, token)

    @property
    def value_input(self) -> Optional[OutPort]:
        return self.inputs[0]

    @property
    def pred_input(self) -> Optional[OutPort]:
        return self.inputs[1]

    def input_kinds(self) -> list[str]:
        kinds = [self.value_class, PRED]
        if self.has_trigger:
            kinds.append(TOKEN)
        return kinds

    def output_kinds(self) -> list[str]:
        return [self.value_class]

    def label(self) -> str:
        suffix = f"@c{self.location_class}" if self.location_class is not None else ""
        return f"eta{suffix}"


class ControlStreamNode(Node):
    """Assembles a loop's per-iteration continue/exit decision (§3.1 aid).

    Each input is a *pulse*: an existing eta output on one back edge or one
    loop-exit edge (exactly one of them fires per iteration). When slot i
    fires, the node emits constant 1 if i is a back-edge slot ("a back
    value is coming") or 0 (the loop exited). The consumed value itself is
    ignored, so any per-iteration stream on the edge serves — a live
    scalar's eta or a token eta.

    Every input closes a cycle through the loop, so all slots are back
    edges topologically.
    """

    def __init__(self, arity: int, true_slots: set[int], hyperblock: int = 0):
        super().__init__([None] * arity, hyperblock)
        self.true_slots = set(true_slots)
        self.type = ty.INT

    def back_input_indices(self) -> frozenset[int]:
        return frozenset(range(len(self.inputs)))

    def input_kinds(self) -> list[str]:
        # Pulses may be data or token values; verification special-cases
        # this node (see verify._verify_node).
        return [DATA] * len(self.inputs)

    def output_kinds(self) -> list[str]:
        return [DATA]

    def label(self) -> str:
        return "ctrl"


class CombineNode(Node):
    """Token combine ("V"): waits for all inputs, emits one token."""

    def __init__(self, tokens: list[Optional[OutPort]], hyperblock: int = 0):
        super().__init__(list(tokens), hyperblock)

    def input_kinds(self) -> list[str]:
        return [TOKEN] * len(self.inputs)

    def output_kinds(self) -> list[str]:
        return [TOKEN]

    def label(self) -> str:
        return "V"


class InitialTokenNode(Node):
    """The "*" node: the token present when the procedure starts."""

    def __init__(self, location_class: int | None = None):
        super().__init__([], 0)
        self.location_class = location_class

    def input_kinds(self) -> list[str]:
        return []

    def output_kinds(self) -> list[str]:
        return [TOKEN]

    def label(self) -> str:
        return "*"


class LoadNode(Node):
    """A memory read. Outputs: 0 = loaded value, 1 = token."""

    num_outputs = 2
    ADDR, PRED_IN, TOKEN_IN = 0, 1, 2
    VALUE_OUT, TOKEN_OUT = 0, 1

    def __init__(self, type_: ty.Type, addr: Optional[OutPort],
                 pred: Optional[OutPort], token: Optional[OutPort],
                 rwset: "frozenset[Location]", hyperblock: int = 0):
        super().__init__([addr, pred, token], hyperblock)
        self.type = type_
        self.rwset = rwset
        self.immutable = False  # §4.2: no serialization needed

    @property
    def width(self) -> int:
        return self.type.size if not self.type.is_pointer else 8

    def input_kinds(self) -> list[str]:
        return [DATA, PRED, TOKEN]

    def output_kinds(self) -> list[str]:
        return [DATA, TOKEN]

    def label(self) -> str:
        return "load!" if self.immutable else "load"


class StoreNode(Node):
    """A memory write. Output 0 = token."""

    ADDR, VALUE_IN, PRED_IN, TOKEN_IN = 0, 1, 2, 3
    TOKEN_OUT = 0

    def __init__(self, type_: ty.Type, addr: Optional[OutPort],
                 value: Optional[OutPort], pred: Optional[OutPort],
                 token: Optional[OutPort], rwset: "frozenset[Location]",
                 hyperblock: int = 0):
        super().__init__([addr, value, pred, token], hyperblock)
        self.type = type_
        self.rwset = rwset

    @property
    def width(self) -> int:
        return self.type.size if not self.type.is_pointer else 8

    def input_kinds(self) -> list[str]:
        return [DATA, DATA, PRED, TOKEN]

    def output_kinds(self) -> list[str]:
        return [TOKEN]

    def label(self) -> str:
        return "store"


class TokenGenNode(Node):
    """The token generator tk(n) of loop decoupling (§6.3).

    Maintains a counter initialized to ``count``. A true predicate asks for
    a token: if credit remains, one is emitted and the counter decremented.
    Each token received on the token input increments the counter (and
    satisfies a waiting request, if any). A false predicate (loop complete)
    resets the counter to ``count``.
    """

    def __init__(self, count: int, pred: Optional[OutPort],
                 token: Optional[OutPort], hyperblock: int = 0):
        super().__init__([pred, token], hyperblock)
        self.count = count

    def back_input_indices(self) -> frozenset[int]:
        # The token input may close a cycle (e.g. a true recurrence where
        # the constrained group's data feeds the free group): the counter's
        # initial credits break the cycle like a pipeline register, so the
        # edge is a back edge topologically.
        return frozenset({1})

    def input_kinds(self) -> list[str]:
        return [PRED, TOKEN]

    def output_kinds(self) -> list[str]:
        return [TOKEN]

    def label(self) -> str:
        return f"tk({self.count})"


def is_static_wire(port: Optional[OutPort], depth: int = 32) -> bool:
    """Is this port a constant wire (always readable, never consumed)?

    Mirrors the dataflow simulator's stickiness rule: constants, parameters
    and object addresses, closed under pure arithmetic and muxes.
    """
    if port is None or depth <= 0:
        return False
    node = port.node
    if isinstance(node, (ConstNode, ParamNode, SymbolAddrNode)):
        return True
    if isinstance(node, (BinOpNode, UnOpNode, CastNode, MuxNode)):
        return all(is_static_wire(p, depth - 1) for p in node.inputs)
    return False


class ReturnNode(Node):
    """Procedure completion: fires once value (if any) and token arrive."""

    def __init__(self, type_: ty.Type | None, value: Optional[OutPort],
                 token: Optional[OutPort], hyperblock: int = 0):
        if type_ is None:
            super().__init__([token], hyperblock)
        else:
            super().__init__([value, token], hyperblock)
        self.type = type_

    num_outputs = 0

    @property
    def value_input(self) -> Optional[OutPort]:
        return self.inputs[0] if self.type is not None else None

    @property
    def token_input(self) -> Optional[OutPort]:
        return self.inputs[-1]

    def input_kinds(self) -> list[str]:
        kinds = [TOKEN]
        if self.type is not None:
            kinds.insert(0, DATA)
        return kinds

    def output_kinds(self) -> list[str]:
        return []

    def label(self) -> str:
        return "ret"
