"""Core graph data structure for Pegasus.

Nodes own their input connections (lists of :class:`OutPort` references);
the graph maintains the reverse *uses* index so optimizations can redirect
every consumer of a port in one call. Back edges (eta → merge around a
loop) are annotated on the merge's input positions, so "the Pegasus DAG"
(every reachability computation in the paper ignores back edges, §5) is
well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import PegasusError
from repro.utils.ids import IdAllocator

if TYPE_CHECKING:
    from repro.pegasus.nodes import Node


@dataclass(frozen=True)
class OutPort:
    """A reference to one output of a node."""

    node: "Node"
    index: int = 0

    def __repr__(self) -> str:
        return f"{self.node!r}.{self.index}"


@dataclass(frozen=True)
class InPort:
    """A reference to one input slot of a node."""

    node: "Node"
    index: int

    def __repr__(self) -> str:
        return f"{self.node!r}[in{self.index}]"


class Graph:
    """A Pegasus graph for one procedure."""

    # Class-level default so graphs unpickled from caches written before
    # the revision counter existed still expose it (see __init__).
    version = 0

    def __init__(self, name: str):
        self.name = name
        self._ids = IdAllocator()
        self.nodes: dict[int, "Node"] = {}
        # Reverse index: producer port -> set of consumer input slots.
        self._uses: dict[OutPort, set[InPort]] = {}
        # The procedure's return node, set by the builder.
        self.return_node: "Node | None" = None
        # Number of hyperblocks (region ids are 0..n-1).
        self.num_hyperblocks = 0
        # Structural revision, bumped on every topology change; consumers
        # that precompute per-graph tables (sim.plan.SimPlan) key their
        # caches on it so a mutated graph never runs against stale tables.
        self.version = 0

    # ------------------------------------------------------------------
    # Construction

    def add(self, node: "Node") -> "Node":
        """Register a node created by the caller and wire its inputs."""
        node.id = self._ids.allocate()
        node.graph = self
        self.version += 1
        self.nodes[node.id] = node
        for index, port in enumerate(node.inputs):
            if port is not None:
                self._uses.setdefault(port, set()).add(InPort(node, index))
        return node

    def set_input(self, node: "Node", index: int, port: OutPort | None) -> None:
        """Connect input slot ``index`` of ``node`` to ``port``."""
        self.version += 1
        old = node.inputs[index]
        if old is not None:
            self._uses.get(old, set()).discard(InPort(node, index))
        node.inputs[index] = port
        if port is not None:
            if port.node.id not in self.nodes or self.nodes[port.node.id] is not port.node:
                raise PegasusError(f"connecting to foreign node {port.node!r}")
            self._uses.setdefault(port, set()).add(InPort(node, index))

    def uses(self, port: OutPort) -> list[InPort]:
        """Consumers of ``port``, in deterministic (node id, slot) order."""
        slots = self._uses.get(port, set())
        return sorted(slots, key=lambda s: (s.node.id, s.index))

    def has_uses(self, port: OutPort) -> bool:
        return bool(self._uses.get(port))

    def redirect_uses(self, old: OutPort, new: OutPort) -> int:
        """Reconnect every consumer of ``old`` to ``new``; returns count."""
        count = 0
        for slot in self.uses(old):
            self.set_input(slot.node, slot.index, new)
            count += 1
        return count

    def remove(self, node: "Node") -> None:
        """Remove a node; it must have no remaining consumers."""
        for index in range(node.num_outputs):
            port = OutPort(node, index)
            if self._uses.get(port):
                raise PegasusError(
                    f"removing {node!r} whose output {index} still has uses"
                )
        self.version += 1
        for index, port in enumerate(node.inputs):
            if port is not None:
                self._uses.get(port, set()).discard(InPort(node, index))
        for index in range(node.num_outputs):
            self._uses.pop(OutPort(node, index), None)
        del self.nodes[node.id]
        node.graph = None

    # ------------------------------------------------------------------
    # Traversal

    def __iter__(self) -> Iterator["Node"]:
        return iter(sorted(self.nodes.values(), key=lambda n: n.id))

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: "Node") -> bool:
        return self.nodes.get(node.id) is node

    def by_kind(self, *kinds: type) -> list["Node"]:
        """All nodes that are instances of the given classes, in id order."""
        return [n for n in self if isinstance(n, kinds)]

    def forward_edges(self, node: "Node") -> Iterable[tuple[int, OutPort]]:
        """(input slot, producer port) pairs, skipping back edges."""
        back = node.back_input_indices()
        for index, port in enumerate(node.inputs):
            if port is not None and index not in back:
                yield index, port

    def topological_order(self) -> list["Node"]:
        """Nodes in a topological order of the forward (acyclic) graph."""
        order: list["Node"] = []
        state: dict[int, int] = {}  # 0 = visiting, 1 = done

        def visit(node: "Node") -> None:
            stack = [(node, 0)]
            while stack:
                current, phase = stack.pop()
                if phase == 0:
                    if state.get(current.id) is not None:
                        continue
                    state[current.id] = 0
                    stack.append((current, 1))
                    for _, port in self.forward_edges(current):
                        if state.get(port.node.id) is None:
                            stack.append((port.node, 0))
                        elif state.get(port.node.id) == 0:
                            raise PegasusError(
                                f"cycle through {current!r} and {port.node!r} "
                                "in the forward graph"
                            )
                else:
                    state[current.id] = 1
                    order.append(current)

        for node in self:
            visit(node)
        return order

    def stats(self) -> dict[str, int]:
        """Node counts by class name (static measurements, §7.2)."""
        counts: dict[str, int] = {}
        for node in self:
            counts[type(node).__name__] = counts.get(type(node).__name__, 0) + 1
        return counts
