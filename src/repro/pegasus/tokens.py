"""Token-graph utilities: the memory-op dependence relation (§3.3-§3.4).

The *token relation* of a hyperblock is the DAG over its side-effecting
nodes (plus one boundary source per location class). The builder creates it
with the paper's pairwise rule; optimizations edit it; this module owns the
shared mechanics:

- transitive reduction (§3.4) — maintained so that a direct edge always
  means "may touch the same location, with no intervening operation";
- re-synthesis of the concrete token wiring (combine nodes and token-input
  connections) from the relation.

Sources in the relation are either a memory-op :class:`~..nodes.Node` (its
token output) or a raw :class:`~.graph.OutPort` (a boundary token: the
hyperblock's per-class entry merge or the initial "*" token).
"""

from __future__ import annotations

from typing import Union

from repro.pegasus.graph import Graph, OutPort
from repro.pegasus.nodes import (
    CombineNode,
    LoadNode,
    Node,
    StoreNode,
)

Source = Union[Node, OutPort]


def source_port(source: Source) -> OutPort:
    """The token output port of a relation source."""
    if isinstance(source, OutPort):
        return source
    if isinstance(source, LoadNode):
        return source.out(LoadNode.TOKEN_OUT)
    if isinstance(source, StoreNode):
        return source.out(StoreNode.TOKEN_OUT)
    return source.out(0)  # merges / token generators / combines


class TokenRelation:
    """A mutable dependence relation over one hyperblock's memory ops.

    ``deps[node]`` is the ordered set of sources whose tokens ``node`` must
    collect before executing. ``boundary[class_id]`` is the per-class entry
    token port. ``exit_frontier(class_id)`` computes what an eta (treated
    as a write to the whole class, §6.1) must wait for.
    """

    def __init__(self, boundary: dict[int, OutPort]):
        self.boundary = dict(boundary)
        self.ops: list[Node] = []  # program order
        self.deps: dict[Node, list[Source]] = {}
        # node -> location classes it touches (frozen at insertion time).
        self.classes: dict[Node, frozenset[int]] = {}
        self.is_write: dict[Node, bool] = {}
        # Classes whose exit wiring was restructured by a §6 pipelining
        # transformation; generic rewiring must leave them alone.
        self.pipelined: set[int] = set()

    # ------------------------------------------------------------------

    def add_op(self, node: Node, classes: frozenset[int], is_write: bool,
               deps: list[Source]) -> None:
        self.ops.append(node)
        self.classes[node] = classes
        self.is_write[node] = is_write
        self.deps[node] = list(dict.fromkeys(deps))

    def remove_dep(self, node: Node, source: Source) -> None:
        self.deps[node] = [d for d in self.deps[node] if d is not source]

    def replace_op(self, old: Node, new: Node) -> None:
        """Substitute ``new`` for ``old`` as a dependence source.

        Used when two equivalent operations are merged (§5.1): consumers of
        the dropped op's token must wait for the surviving op instead.
        """
        for other in self.ops:
            if other is old:
                continue
            if any(d is old for d in self.deps[other]):
                self.deps[other] = list(dict.fromkeys(
                    new if d is old else d for d in self.deps[other]
                ))
        self.ops = [op for op in self.ops if op is not old]
        self.deps.pop(old, None)
        self.classes.pop(old, None)
        self.is_write.pop(old, None)

    def drop_op(self, node: Node) -> None:
        """Remove an op, rerouting its consumers to its own dependences."""
        incoming = self.deps.pop(node)
        for other in self.ops:
            if other is node:
                continue
            if any(d is node for d in self.deps[other]):
                merged = [d for d in self.deps[other] if d is not node]
                merged.extend(incoming)
                self.deps[other] = list(dict.fromkeys(merged))
        self.ops = [op for op in self.ops if op is not node]
        self.classes.pop(node, None)
        self.is_write.pop(node, None)

    # ------------------------------------------------------------------

    def successors(self, node: Node) -> list[Node]:
        return [op for op in self.ops if any(d is node for d in self.deps[op])]

    def _reachable(self, start: Node) -> set[int]:
        """Ids of ops reachable from ``start`` through the relation."""
        seen: set[int] = set()
        stack = self.successors(start)
        while stack:
            current = stack.pop()
            if current.id in seen:
                continue
            seen.add(current.id)
            stack.extend(self.successors(current))
        return seen

    def reduce(self) -> int:
        """Transitive reduction (§3.4); returns removed-edge count."""
        removed = 0
        for node in self.ops:
            direct = self.deps[node]
            op_deps = [d for d in direct if isinstance(d, Node)]
            redundant: list[Source] = []
            for dep in direct:
                others = [d for d in op_deps if d is not dep]
                reach: set[int] = set()
                for other in others:
                    reach.add(other.id)
                    reach |= self._reachable_ids(other)
                if isinstance(dep, Node):
                    if dep.id in reach:
                        redundant.append(dep)
                else:
                    # A boundary token is redundant if some op dependence
                    # (transitively) already waited on that boundary.
                    if self._boundary_covered(dep, others):
                        redundant.append(dep)
            for dep in redundant:
                self.remove_dep(node, dep)
                removed += 1
        return removed

    def _reachable_ids(self, start: Node) -> set[int]:
        seen: set[int] = set()
        stack = [d for d in self.deps[start] if isinstance(d, Node)]
        while stack:
            current = stack.pop()
            if current.id in seen:
                continue
            seen.add(current.id)
            stack.extend(d for d in self.deps[current] if isinstance(d, Node))
        return seen

    def _boundary_covered(self, boundary: OutPort, through: list[Node]) -> bool:
        stack = list(through)
        seen: set[int] = set()
        while stack:
            current = stack.pop()
            if current.id in seen:
                continue
            seen.add(current.id)
            for dep in self.deps[current]:
                if isinstance(dep, OutPort):
                    if dep == boundary:
                        return True
                else:
                    stack.append(dep)
        return False

    # ------------------------------------------------------------------

    def exit_frontier(self, class_id: int) -> list[Source]:
        """Sources an exit eta of ``class_id`` must collect tokens from.

        These are the class's operations not followed by another operation
        of the same class, or the boundary token if the class was never
        touched (every predicated op emits its token even when skipped, so
        waiting on all frontier ops cannot deadlock).
        """
        frontier: list[Source] = []
        class_ops = [n for n in self.ops if class_id in self.classes[n]]
        for node in class_ops:
            has_successor = any(
                class_id in self.classes[succ] for succ in self.successors(node)
            )
            if not has_successor:
                frontier.append(node)
        # The entry token must reach the exit unless some class op consumed
        # it (directly or transitively) — otherwise it would be lost and the
        # next iteration/hyperblock would deadlock waiting for it.
        boundary = self.boundary[class_id]
        consumed = any(
            any(isinstance(d, OutPort) and d == boundary for d in self.deps[n])
            or self._boundary_covered(boundary, [n])
            for n in class_ops
        )
        if not consumed:
            frontier.append(boundary)
        return list(dict.fromkeys(frontier))


def wire_tokens(graph: Graph, relation: TokenRelation, hyperblock: int) -> None:
    """Materialize the relation as token inputs (with combines as needed)."""
    for node in relation.ops:
        ports = [source_port(d) for d in relation.deps[node]]
        token = combine_ports(graph, ports, hyperblock)
        slot = LoadNode.TOKEN_IN if isinstance(node, LoadNode) else StoreNode.TOKEN_IN
        graph.set_input(node, slot, token)


def combine_ports(graph: Graph, ports: list[OutPort],
                  hyperblock: int) -> OutPort | None:
    """0 ports -> None; 1 port -> itself; n ports -> a combine node."""
    unique = list(dict.fromkeys(ports))
    if not unique:
        return None
    if len(unique) == 1:
        return unique[0]
    combine = graph.add(CombineNode(list(unique), hyperblock))
    return combine.out(0)
