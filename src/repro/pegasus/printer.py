"""Text and Graphviz dumps of Pegasus graphs, for debugging and docs.

The dot output follows the paper's drawing conventions: dotted edges for
predicates, dashed edges for tokens, trapezoids for muxes, triangles for
merge/eta, "V" for combines, "*" for the initial token.
"""

from __future__ import annotations

from repro.pegasus.graph import Graph
from repro.pegasus import nodes as N


def dump_text(graph: Graph) -> str:
    """One line per node: id, hyperblock, label, inputs."""
    lines = [f"graph {graph.name} ({len(graph)} nodes)"]
    for node in graph:
        inputs = ", ".join(
            "-" if port is None else f"{port.node.id}.{port.index}"
            for port in node.inputs
        )
        lines.append(f"  h{node.hyperblock} #{node.id} {node.label()} [{inputs}]")
    return "\n".join(lines)


_SHAPES = {
    N.MuxNode: "trapezium",
    N.MergeNode: "triangle",
    N.EtaNode: "invtriangle",
    N.CombineNode: "invhouse",
    N.LoadNode: "box",
    N.StoreNode: "box",
    N.TokenGenNode: "doublecircle",
    N.ReturnNode: "doubleoctagon",
}


def dump_dot(graph: Graph) -> str:
    """Graphviz source grouped by hyperblock."""
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    by_hb: dict[int, list[N.Node]] = {}
    for node in graph:
        by_hb.setdefault(node.hyperblock, []).append(node)
    for hb_id in sorted(by_hb):
        lines.append(f"  subgraph cluster_{hb_id} {{")
        lines.append(f'    label="hyperblock {hb_id}";')
        for node in by_hb[hb_id]:
            shape = _SHAPES.get(type(node), "ellipse")
            lines.append(
                f'    n{node.id} [label="{node.label()}#{node.id}" shape={shape}];'
            )
        lines.append("  }")
    for node in graph:
        kinds = node.input_kinds()
        back = node.back_input_indices()
        for index, port in enumerate(node.inputs):
            if port is None:
                continue
            style = ""
            if kinds[index] == N.TOKEN:
                style = " [style=dashed]"
            elif kinds[index] == N.PRED:
                style = " [style=dotted]"
            if index in back:
                style = ' [style=dashed constraint=false color=gray]'
            lines.append(f"  n{port.node.id} -> n{node.id}{style};")
    lines.append("}")
    return "\n".join(lines)
