"""Pegasus: the dataflow intermediate representation of CASH (§3).

A Pegasus graph is a directed graph whose nodes are operations and whose
edges carry either data values, predicate values, or 0-bit synchronization
*tokens*. Predication (PSSA) replaces intra-hyperblock control flow;
merge/eta node pairs implement inter-hyperblock transfers including loops;
token edges form an SSA for memory (§3.2-§3.4).

Build a graph from a flattened CFG with :func:`build_pegasus`.
"""

from repro.pegasus.graph import Graph, OutPort
from repro.pegasus import nodes
from repro.pegasus.builder import build_pegasus
from repro.pegasus.verify import verify_graph

__all__ = ["Graph", "OutPort", "nodes", "build_pegasus", "verify_graph"]
