"""Constant folding, algebraic simplification, and control simplification.

The scalar support pass the paper lists alongside the memory optimizations.
Beyond arithmetic folding it performs the graph-shape simplifications the
memory passes rely on:

- mux arms with constant-false predicates are dropped; a single-armed mux
  forwards its value (this is how a fully-dominated load disappears after
  load-after-store forwarding, §5.3);
- etas with constant-false predicates are deleted and their merge slots
  shrunk; single-input merges become wires.

Any port replacement goes through :meth:`OptContext.replace_value_uses`
plus relation-reference fixup, so token bookkeeping stays consistent.
"""

from __future__ import annotations

from repro.frontend import types as ty
from repro.opt.context import OptContext
from repro.pegasus.graph import OutPort
from repro.pegasus import nodes as N
from repro.sim import ops as opsem


def _power_of_two(value) -> int | None:
    """log2(value) when value is a positive power of two, else None."""
    if not isinstance(value, int) or value <= 0:
        return None
    if value & (value - 1):
        return None
    return value.bit_length() - 1


class ConstantFold:
    name = "constant-fold"

    def run(self, ctx: OptContext) -> int:
        total = 0
        changed = True
        while changed:
            changed = False
            for node in list(ctx.graph):
                if node not in ctx.graph:
                    continue
                if self._fold_node(ctx, node):
                    total += 1
                    changed = True
        if total:
            ctx.count("constant-fold.folded", total)
        return total

    # ------------------------------------------------------------------

    def _fold_node(self, ctx: OptContext, node: N.Node) -> bool:
        if isinstance(node, (N.BinOpNode, N.UnOpNode, N.CastNode)):
            return self._fold_pure(ctx, node)
        if isinstance(node, N.MuxNode):
            return self._fold_mux(ctx, node)
        if isinstance(node, N.EtaNode):
            return self._fold_eta(ctx, node)
        if isinstance(node, N.MergeNode):
            return self._fold_merge(ctx, node)
        return False

    def _fold_pure(self, ctx: OptContext, node: N.Node) -> bool:
        values = []
        for port in node.inputs:
            assert port is not None
            if not isinstance(port.node, N.ConstNode):
                values = None
                break
            values.append(port.node.value)
        if values is not None:
            if isinstance(node, N.BinOpNode):
                result = opsem.eval_binop(node.op, node.type, *values)
            elif isinstance(node, N.UnOpNode):
                result = opsem.eval_unop(node.op, node.type, values[0])
            else:
                assert isinstance(node, N.CastNode)
                result = opsem.eval_cast(values[0], node.from_type, node.to_type)
            result_type = getattr(node, "type", None) or node.to_type  # type: ignore[attr-defined]
            const = ctx.graph.add(N.ConstNode(result, result_type, node.hyperblock))
            self._replace(ctx, node.out(), const.out())
            return True
        return self._fold_algebraic(ctx, node)

    def _fold_algebraic(self, ctx: OptContext, node: N.Node) -> bool:
        if not isinstance(node, N.BinOpNode):
            if (isinstance(node, N.UnOpNode) and node.op == "lnot"):
                inner = node.inputs[0]
                assert inner is not None
                if (isinstance(inner.node, N.UnOpNode)
                        and inner.node.op == "lnot"):
                    from repro.analysis.predicates import _is_boolean
                    inner2 = inner.node.inputs[0]
                    if inner2 is not None and _is_boolean(inner2):
                        self._replace(ctx, node.out(), inner2)
                        return True
            return False
        lhs, rhs = node.inputs
        assert lhs is not None and rhs is not None
        lc = lhs.node.value if isinstance(lhs.node, N.ConstNode) else None
        rc = rhs.node.value if isinstance(rhs.node, N.ConstNode) else None
        op = node.op
        if op == "add":
            if lc == 0:
                return self._replace(ctx, node.out(), rhs)
            if rc == 0:
                return self._replace(ctx, node.out(), lhs)
        elif op == "sub" and rc == 0:
            return self._replace(ctx, node.out(), lhs)
        elif op == "mul":
            if lc == 1:
                return self._replace(ctx, node.out(), rhs)
            if rc == 1:
                return self._replace(ctx, node.out(), lhs)
            # Strength reduction (one of the paper's scalar passes): a
            # multiply by a power of two is a shift — 1 cycle instead of 3.
            shift = _power_of_two(rc if rc is not None else lc)
            if (shift is not None and isinstance(node.type, ty.IntType)
                    and shift < node.type.bits):
                operand = lhs if rc is not None else rhs
                count = ctx.graph.add(
                    N.ConstNode(shift, node.type, node.hyperblock))
                shl = ctx.graph.add(N.BinOpNode(
                    "shl", node.type, operand, count.out(), node.hyperblock))
                return self._replace(ctx, node.out(), shl.out())
        elif op == "div" and isinstance(node.type, ty.IntType) \
                and not node.type.signed:
            # Unsigned division by a power of two is a logical shift.
            shift = _power_of_two(rc)
            if shift is not None and shift < node.type.bits:
                count = ctx.graph.add(
                    N.ConstNode(shift, node.type, node.hyperblock))
                shr = ctx.graph.add(N.BinOpNode(
                    "shr", node.type, lhs, count.out(), node.hyperblock))
                return self._replace(ctx, node.out(), shr.out())
        elif op == "rem" and isinstance(node.type, ty.IntType) \
                and not node.type.signed:
            shift = _power_of_two(rc)
            if shift is not None and shift < node.type.bits:
                mask = ctx.graph.add(N.ConstNode(
                    (1 << shift) - 1, node.type, node.hyperblock))
                masked = ctx.graph.add(N.BinOpNode(
                    "and", node.type, lhs, mask.out(), node.hyperblock))
                return self._replace(ctx, node.out(), masked.out())
        elif op in ("shl", "shr") and rc == 0:
            return self._replace(ctx, node.out(), lhs)
        elif op in ("and", "or") and lhs == rhs:
            return self._replace(ctx, node.out(), lhs)
        elif op == "and":
            # Only predicate-style (0/1) operands justify and-with-1 rules.
            from repro.analysis.predicates import _is_boolean
            if lc == 1 and _is_boolean(rhs):
                return self._replace(ctx, node.out(), rhs)
            if rc == 1 and _is_boolean(lhs):
                return self._replace(ctx, node.out(), lhs)
            if lc == 0 or rc == 0:
                zero = ctx.graph.add(N.ConstNode(0, node.type, node.hyperblock))
                return self._replace(ctx, node.out(), zero.out())
        elif op == "or":
            if lc == 0:
                return self._replace(ctx, node.out(), rhs)
            if rc == 0:
                return self._replace(ctx, node.out(), lhs)
        return False

    # ------------------------------------------------------------------

    def _fold_mux(self, ctx: OptContext, node: N.MuxNode) -> bool:
        arms = [node.arm(i) for i in range(node.arms)]
        live = []
        for pred, value in arms:
            assert pred is not None and value is not None
            if isinstance(pred.node, N.ConstNode) and not pred.node.value:
                continue
            live.append((pred, value))
        if len(live) == len(arms):
            return False
        if len(live) == 1:
            # The remaining arm's predicate holds whenever the value is
            # consumed; the mux is a wire.
            return self._replace(ctx, node.out(), live[0][1])
        if not live:
            zero = ctx.graph.add(N.ConstNode(0, node.type, node.hyperblock))
            return self._replace(ctx, node.out(), zero.out())
        replacement = ctx.graph.add(N.MuxNode(live, node.type, node.hyperblock))
        return self._replace(ctx, node.out(), replacement.out())

    def _fold_eta(self, ctx: OptContext, node: N.EtaNode) -> bool:
        pred = node.pred_input
        if pred is None or not isinstance(pred.node, N.ConstNode):
            return False
        if pred.node.value:
            return False  # always fires; still needed for instance gating
        # Never fires: remove the slots it feeds in merges, then the eta.
        if any(not isinstance(slot.node, N.MergeNode)
               for slot in ctx.graph.uses(node.out())):
            return False
        while True:
            consumers = ctx.graph.uses(node.out())
            if not consumers:
                break
            slot = consumers[0]
            assert isinstance(slot.node, N.MergeNode)
            self._shrink_merge(ctx, slot.node, slot.index)
        if not ctx.graph.has_uses(node.out()):
            for index in range(len(node.inputs)):
                ctx.graph.set_input(node, index, None)
            ctx.graph.remove(node)
            return True
        return False

    def _shrink_merge(self, ctx: OptContext, merge: N.MergeNode,
                      drop_slot: int) -> None:
        if drop_slot not in merge.value_slots():
            return  # never drop the control slot
        remaining = [
            (index, merge.inputs[index]) for index in merge.value_slots()
            if index != drop_slot
        ]
        replacement = N.MergeNode(merge.type, len(remaining), merge.hyperblock,
                                  merge.value_class)
        replacement.location_class = merge.location_class
        ctx.graph.add(replacement)
        for new_index, (old_index, port) in enumerate(remaining):
            ctx.graph.set_input(replacement, new_index, port)
            if old_index in merge.back_inputs:
                replacement.back_inputs.add(new_index)
        if merge.has_control and replacement.back_inputs:
            control = merge.inputs[merge.control_slot]
            assert control is not None
            replacement.add_control(ctx.graph, control)
        self._replace(ctx, merge.out(), replacement.out())
        self._fold_merge(ctx, replacement)

    def _fold_merge(self, ctx: OptContext, node: N.MergeNode) -> bool:
        """A merge whose only remaining input is one entry is a wire.

        This only applies once every back input is gone (the loop never
        repeats); a leftover control input is dropped with the merge.
        """
        if node.back_inputs or len(node.value_slots()) != 1:
            return False
        only = node.inputs[0]
        if only is None:
            return False
        if node.has_control:
            control = node.inputs[node.control_slot]
            if control is None or not isinstance(control.node, N.ConstNode):
                return False
            if control.node.value:
                return False  # would expect back values that cannot come
        return self._replace(ctx, node.out(), only)

    # ------------------------------------------------------------------

    def _replace(self, ctx: OptContext, old: OutPort, new: OutPort) -> bool:
        ctx.graph.redirect_uses(old, new)
        _fix_references(ctx, old, new)
        # Remove the superseded producer right away — leaving it in place
        # would make the folding fixpoint re-fold it forever.
        node = old.node
        if node in ctx.graph and not any(
            ctx.graph.has_uses(node.out(i)) for i in range(node.num_outputs)
        ):
            for index in range(len(node.inputs)):
                ctx.graph.set_input(node, index, None)
            ctx.graph.remove(node)
        ctx.invalidate()
        return True


def _fix_references(ctx: OptContext, old: OutPort, new: OutPort) -> None:
    """Update relation boundaries/deps and loop predicates after a replace."""
    for relation in ctx.relations.values():
        for class_id, port in list(relation.boundary.items()):
            if port == old:
                relation.boundary[class_id] = new
        for node, deps in relation.deps.items():
            relation.deps[node] = [
                new if (isinstance(dep, OutPort) and dep == old) else dep
                for dep in deps
            ]
    for hb_id, port in list(ctx.loop_predicates.items()):
        if port == old:
            ctx.loop_predicates[hb_id] = new
