"""Shared state and plumbing for optimization passes.

The token relation (per hyperblock) is the authoritative description of
memory ordering; passes edit relations and the context re-synthesizes the
concrete wiring — memory-op token inputs, exit-eta values, the return
node's final combine — from them (:meth:`OptContext.rewire_hyperblock`).
Unused combines left behind are swept by the cleanup pass.
"""

from __future__ import annotations

from repro.errors import OptimizationError
from repro.pegasus.builder import BuildResult
from repro.pegasus.graph import Graph, OutPort
from repro.pegasus import nodes as N
from repro.pegasus.tokens import TokenRelation, combine_ports, source_port, wire_tokens
from repro.analysis.reachability import Reachability
from repro.analysis.symbolic import AddressAnalysis
from repro.analysis.induction import LoopInduction


class OptContext:
    """Everything a pass needs: graph, relations, analyses, statistics."""

    def __init__(self, build: BuildResult, report=None):
        self.build = build
        self.graph: Graph = build.graph
        self.relations: dict[int, TokenRelation] = build.relations
        self.pointers = build.pointers
        self.loop_predicates = build.loop_predicates
        # Pass-applicability statistics.  When a CompilationReport is
        # attached they ARE the report's counters (one shared dict), so
        # ``ctx.count(...)`` lands in the report; standalone contexts
        # (ablation harness, unit tests) keep a private dict.
        self.report = report
        self.stats: dict[str, int] = (report.counters if report is not None
                                      else {})
        self._reachability: Reachability | None = None
        self._addresses: AddressAnalysis | None = None
        self._induction: dict[int, LoopInduction] = {}

    # ------------------------------------------------------------------
    # Lazy analyses (invalidated whenever the graph changes)

    @property
    def reachability(self) -> Reachability:
        if self._reachability is None:
            self._reachability = Reachability(self.graph)
        return self._reachability

    @property
    def addresses(self) -> AddressAnalysis:
        if self._addresses is None:
            self._addresses = AddressAnalysis()
        return self._addresses

    def induction(self, hyperblock: int) -> LoopInduction:
        if hyperblock not in self._induction:
            self._induction[hyperblock] = LoopInduction(
                self.graph, hyperblock, self.addresses
            )
        return self._induction[hyperblock]

    def invalidate(self) -> None:
        self._reachability = None
        self._addresses = None
        self._induction.clear()

    def count(self, what: str, amount: int = 1) -> None:
        self.stats[what] = self.stats.get(what, 0) + amount

    # ------------------------------------------------------------------
    # Memory-op accessors

    @staticmethod
    def addr_port(node: N.Node) -> OutPort:
        slot = N.LoadNode.ADDR if isinstance(node, N.LoadNode) else N.StoreNode.ADDR
        port = node.inputs[slot]
        assert port is not None
        return port

    @staticmethod
    def pred_port(node: N.Node) -> OutPort:
        slot = (N.LoadNode.PRED_IN if isinstance(node, N.LoadNode)
                else N.StoreNode.PRED_IN)
        port = node.inputs[slot]
        assert port is not None
        return port

    @staticmethod
    def store_value_port(node: N.StoreNode) -> OutPort:
        port = node.inputs[N.StoreNode.VALUE_IN]
        assert port is not None
        return port

    # ------------------------------------------------------------------
    # Relation <-> wiring synchronization

    def rewire_hyperblock(self, hyperblock: int) -> None:
        """Re-synthesize token wiring of one hyperblock from its relation."""
        relation = self.relations.get(hyperblock)
        if relation is None:
            return
        wire_tokens(self.graph, relation, hyperblock)
        frontiers: dict[int, OutPort | None] = {}
        for class_id in relation.boundary:
            if class_id in relation.pipelined:
                continue  # §6 transformed this class's exit wiring
            ports = [source_port(s) for s in relation.exit_frontier(class_id)]
            frontiers[class_id] = combine_ports(self.graph, ports, hyperblock)
        for node in self.graph.by_kind(N.EtaNode):
            if (node.hyperblock == hyperblock and node.value_class == N.TOKEN
                    and node.location_class is not None
                    and node.location_class in frontiers):
                self.graph.set_input(node, 0, frontiers[node.location_class])
        return_node = self.graph.return_node
        if return_node is not None and return_node.hyperblock == hyperblock:
            ports = [p for p in frontiers.values() if p is not None]
            token = combine_ports(self.graph, ports, hyperblock)
            if token is not None:
                self.graph.set_input(return_node, len(return_node.inputs) - 1,
                                     token)
        self.sweep_orphan_combines()
        self.invalidate()

    def sweep_orphan_combines(self) -> None:
        """Remove combine nodes whose output nothing consumes."""
        changed = True
        while changed:
            changed = False
            for node in self.graph.by_kind(N.CombineNode):
                if not self.graph.has_uses(node.out(0)):
                    for index in range(len(node.inputs)):
                        self.graph.set_input(node, index, None)
                    self.graph.remove(node)
                    changed = True

    def remove_memop(self, node: N.Node) -> None:
        """Drop a load/store: relation closure is preserved, wiring redone."""
        relation = self.relations.get(node.hyperblock)
        if relation is None or node not in relation.deps:
            raise OptimizationError(f"{node!r} is not in its relation")
        relation.drop_op(node)
        relation.reduce()
        self.rewire_hyperblock(node.hyperblock)
        # After rewiring, nothing should consume the node's token output.
        token_out = (node.out(N.LoadNode.TOKEN_OUT)
                     if isinstance(node, N.LoadNode)
                     else node.out(N.StoreNode.TOKEN_OUT))
        for slot in self.graph.uses(token_out):
            raise OptimizationError(
                f"{node!r} token still consumed by {slot.node!r} after drop"
            )
        if isinstance(node, N.LoadNode) and self.graph.has_uses(node.out(0)):
            raise OptimizationError(
                f"{node!r} value still in use; replace uses before removal"
            )
        for index in range(len(node.inputs)):
            self.graph.set_input(node, index, None)
        self.graph.remove(node)

    def replace_value_uses(self, old: OutPort, new: OutPort) -> int:
        """Redirect data consumers of ``old`` to ``new``."""
        count = self.graph.redirect_uses(old, new)
        self.invalidate()
        return count

    def memops(self, hyperblock: int | None = None) -> list[N.Node]:
        result = []
        for node in self.graph:
            if node.is_memory_op:
                if hyperblock is None or node.hyperblock == hyperblock:
                    result.append(node)
        return result
