"""Pass manager and optimization-level pipelines.

Levels match the paper's evaluation:

- ``basic``: scalar cleanup only (constant folding, DCE);
- ``medium``: the Figure-19 "Medium" configuration — token-edge removal by
  address disambiguation (§4.3, with pointer analysis and pragmas already
  consumed during construction) plus induction-variable pipelining (§6.2);
- ``full``: adds immutable loads (§4.2), the §5 redundancy eliminations
  iterated to a fixpoint with dead-memory-op removal (§4.1),
  loop-invariant load motion (§5.4), read-only loop splitting (§6.1), and
  loop decoupling (§6.3).

Pipelines verify the graph after every pass; a structural violation names
the pass that caused it.
"""

from __future__ import annotations

from repro.errors import OptimizationError, PegasusError
from repro.pegasus.builder import BuildResult
from repro.pegasus.verify import verify_graph
from repro.opt.context import OptContext
from repro.opt.cleanup import Cleanup
from repro.opt.constant_fold import ConstantFold
from repro.opt.dead_memops import DeadMemOps
from repro.opt.immutable import ImmutableLoads
from repro.opt.token_removal import TokenRemoval
from repro.opt.load_forward import LoadAfterStore
from repro.opt.store_elim import StoreBeforeStore
from repro.opt.merge_ops import MergeEquivalent
from repro.opt.licm import LoopInvariantLoads

MAX_FIXPOINT_ROUNDS = 8


class Fixpoint:
    """Runs a pass group repeatedly until no pass reports a change."""

    def __init__(self, *passes, name: str = "fixpoint"):
        self.passes = list(passes)
        self.name = name

    def run(self, ctx: OptContext) -> int:
        total = 0
        for _ in range(MAX_FIXPOINT_ROUNDS):
            round_changes = 0
            for pass_ in self.passes:
                round_changes += _run_verified(pass_, ctx)
            total += round_changes
            if not round_changes:
                break
        return total


def _looppipe_passes():
    from repro.looppipe.readonly import ReadOnlySplit
    from repro.looppipe.monotone import MonotonePipelining
    from repro.looppipe.decoupling import LoopDecoupling
    return ReadOnlySplit, MonotonePipelining, LoopDecoupling


def build_pipeline(level: str) -> list:
    if level == "basic":
        return [ConstantFold(), Cleanup()]
    ReadOnlySplit, MonotonePipelining, LoopDecoupling = _looppipe_passes()
    if level == "medium":
        return [
            ConstantFold(), Cleanup(),
            TokenRemoval(), DeadMemOps(),
            ConstantFold(), Cleanup(),
            MonotonePipelining(),
            Cleanup(),
        ]
    if level == "full":
        return [
            ConstantFold(), Cleanup(),
            ImmutableLoads(),
            TokenRemoval(),
            Fixpoint(LoadAfterStore(), ConstantFold(), StoreBeforeStore(),
                     DeadMemOps(), MergeEquivalent(), ConstantFold(), Cleanup(),
                     name="redundancy"),
            TokenRemoval(),
            LoopInvariantLoads(),
            ConstantFold(), Cleanup(),
            ReadOnlySplit(),
            LoopDecoupling(),
            MonotonePipelining(),
            ConstantFold(), Cleanup(),
        ]
    raise OptimizationError(f"unknown optimization level {level!r}")


PIPELINES = ("basic", "medium", "full")


def optimize(build: BuildResult, level: str = "full") -> OptContext:
    """Run the pipeline for ``level`` over a built graph (in place)."""
    ctx = OptContext(build)
    for pass_ in build_pipeline(level):
        _run_verified(pass_, ctx)
    _fix_static_etas(ctx)
    return ctx


def _fix_static_etas(ctx: OptContext) -> None:
    """Re-establish the eta-trigger invariant after optimization.

    Folding can turn an eta's value and predicate into constant wires;
    such an eta needs a per-activation trigger (see EtaNode) or it would
    fire spuriously at start-up.
    """
    from repro.pegasus import nodes as N
    for eta in ctx.graph.by_kind(N.EtaNode):
        if eta.has_trigger:
            continue
        if N.is_static_wire(eta.value_input) and N.is_static_wire(eta.pred_input):
            relation = ctx.relations.get(eta.hyperblock)
            if relation is None or not relation.boundary:
                continue
            boundary = relation.boundary[min(relation.boundary)]
            eta.add_trigger(ctx.graph, boundary)


def _run_verified(pass_, ctx: OptContext) -> int:
    changes = pass_.run(ctx)
    try:
        verify_graph(ctx.graph)
    except PegasusError as error:
        raise OptimizationError(
            f"pass {pass_.name!r} broke the graph: {error}"
        ) from error
    return changes
