"""Pass manager and optimization-level pipelines.

Levels match the paper's evaluation:

- ``basic``: scalar cleanup only (constant folding, DCE);
- ``medium``: the Figure-19 "Medium" configuration — token-edge removal by
  address disambiguation (§4.3, with pointer analysis and pragmas already
  consumed during construction) plus induction-variable pipelining (§6.2);
- ``full``: adds immutable loads (§4.2), the §5 redundancy eliminations
  iterated to a fixpoint with dead-memory-op removal (§4.1),
  loop-invariant load motion (§5.4), read-only loop splitting (§6.1), and
  loop decoupling (§6.3).

Verification is a *policy* (see :data:`repro.pipeline.config.
VERIFY_POLICIES`): ``every-pass`` checks the graph after every single pass
execution and a structural violation names the pass that caused it;
``levels`` checks after each top-level pipeline element (a fixpoint group
is one element); ``final`` checks once after the whole pipeline; ``off``
never checks.  Running ``verify_graph`` after all ~17 executions of the
``full`` pipeline is a measurable compile-time tax, so the experiment
harness compiles at ``final`` while the test suite keeps ``every-pass``.

Every pass execution is instrumented: wall time, reported change count,
and the IR-size delta land in a :class:`~repro.pipeline.report.
CompilationReport` when one is supplied.
"""

from __future__ import annotations

import time

from repro.errors import OptimizationError, PegasusError
from repro.pegasus.builder import BuildResult
from repro.pegasus.verify import verify_graph
from repro.opt.context import OptContext
from repro.opt.cleanup import Cleanup
from repro.opt.constant_fold import ConstantFold
from repro.opt.dead_memops import DeadMemOps
from repro.opt.immutable import ImmutableLoads
from repro.opt.token_removal import TokenRemoval
from repro.opt.load_forward import LoadAfterStore
from repro.opt.store_elim import StoreBeforeStore
from repro.opt.merge_ops import MergeEquivalent
from repro.opt.licm import LoopInvariantLoads

MAX_FIXPOINT_ROUNDS = 8


class Fixpoint:
    """Runs a pass group repeatedly until no pass reports a change."""

    def __init__(self, *passes, name: str = "fixpoint"):
        self.passes = list(passes)
        self.name = name

    def run(self, ctx: OptContext) -> int:
        return PassRunner(ctx).run(self)


class PassRunner:
    """Executes passes under a verification policy, recording telemetry.

    One runner drives one pipeline: it owns the policy decision of *when*
    ``verify_graph`` runs and writes a :class:`PassRecord` per pass
    execution into the context's report (if any).
    """

    def __init__(self, ctx: OptContext, verify: str = "every-pass"):
        self.ctx = ctx
        self.policy = verify
        self.report = ctx.report

    def run(self, pass_) -> int:
        """Run one top-level pipeline element (a pass or a fixpoint)."""
        if isinstance(pass_, Fixpoint):
            total = 0
            for round_index in range(MAX_FIXPOINT_ROUNDS):
                round_changes = 0
                for inner in pass_.passes:
                    label = f"{pass_.name}[{round_index}].{inner.name}"
                    round_changes += self._execute(inner, label, pass_.name)
                total += round_changes
                if not round_changes:
                    break
            if self.policy == "levels":
                self._verify(pass_.name)
            return total
        changes = self._execute(pass_, pass_.name, None)
        if self.policy == "levels":
            self._verify(pass_.name)
        return changes

    def finish(self) -> None:
        """Post-pipeline check (covers ``_fix_static_etas`` rewiring)."""
        if self.policy != "off":
            self._verify("<final>")

    # ------------------------------------------------------------------

    def _execute(self, pass_, label: str, group: str | None) -> int:
        from repro.pipeline.report import IRSnapshot

        before = IRSnapshot.of(self.ctx.graph) if self.report else None
        started = time.perf_counter()
        changes = pass_.run(self.ctx)
        elapsed = time.perf_counter() - started
        verify_time = 0.0
        verified = False
        if self.policy == "every-pass":
            verify_time = self._verify(pass_.name)
            verified = True
        if self.report is not None:
            self.report.record_pass(
                label, group, elapsed, changes,
                before, IRSnapshot.of(self.ctx.graph),
                verify_time=verify_time, verified=verified,
            )
        return changes

    def _verify(self, blame: str) -> float:
        started = time.perf_counter()
        try:
            verify_graph(self.ctx.graph)
        except PegasusError as error:
            raise OptimizationError(
                f"pass {blame!r} broke the graph: {error}"
            ) from error
        elapsed = time.perf_counter() - started
        if self.report is not None:
            self.report.note_verify(elapsed)
        return elapsed


def _looppipe_passes():
    from repro.looppipe.readonly import ReadOnlySplit
    from repro.looppipe.monotone import MonotonePipelining
    from repro.looppipe.decoupling import LoopDecoupling
    return ReadOnlySplit, MonotonePipelining, LoopDecoupling


def build_pipeline(level: str) -> list:
    if level == "basic":
        return [ConstantFold(), Cleanup()]
    ReadOnlySplit, MonotonePipelining, LoopDecoupling = _looppipe_passes()
    if level == "medium":
        return [
            ConstantFold(), Cleanup(),
            TokenRemoval(), DeadMemOps(),
            ConstantFold(), Cleanup(),
            MonotonePipelining(),
            Cleanup(),
        ]
    if level == "full":
        return [
            ConstantFold(), Cleanup(),
            ImmutableLoads(),
            TokenRemoval(),
            Fixpoint(LoadAfterStore(), ConstantFold(), StoreBeforeStore(),
                     DeadMemOps(), MergeEquivalent(), ConstantFold(), Cleanup(),
                     name="redundancy"),
            TokenRemoval(),
            LoopInvariantLoads(),
            ConstantFold(), Cleanup(),
            ReadOnlySplit(),
            LoopDecoupling(),
            MonotonePipelining(),
            ConstantFold(), Cleanup(),
        ]
    raise OptimizationError(f"unknown optimization level {level!r}")


PIPELINES = ("basic", "medium", "full")


def optimize(build: BuildResult, level: str = "full", *,
             verify: str = "every-pass", report=None) -> OptContext:
    """Run the pipeline for ``level`` over a built graph (in place).

    ``verify`` selects the verification policy; ``report`` (a
    :class:`~repro.pipeline.report.CompilationReport`) receives per-pass
    instrumentation and the pass counters.
    """
    ctx = OptContext(build, report=report)
    runner = PassRunner(ctx, verify=verify)
    for pass_ in build_pipeline(level):
        runner.run(pass_)
    _fix_static_etas(ctx)
    runner.finish()
    return ctx


def _fix_static_etas(ctx: OptContext) -> None:
    """Re-establish the eta-trigger invariant after optimization.

    Folding can turn an eta's value and predicate into constant wires;
    such an eta needs a per-activation trigger (see EtaNode) or it would
    fire spuriously at start-up.
    """
    from repro.pegasus import nodes as N
    for eta in ctx.graph.by_kind(N.EtaNode):
        if eta.has_trigger:
            continue
        if N.is_static_wire(eta.value_input) and N.is_static_wire(eta.pred_input):
            relation = ctx.relations.get(eta.hyperblock)
            if relation is None or not relation.boundary:
                continue
            boundary = relation.boundary[min(relation.boundary)]
            eta.add_trigger(ctx.graph, boundary)


def _run_verified(pass_, ctx: OptContext) -> int:
    changes = pass_.run(ctx)
    try:
        verify_graph(ctx.graph)
    except PegasusError as error:
        raise OptimizationError(
            f"pass {pass_.name!r} broke the graph: {error}"
        ) from error
    return changes
