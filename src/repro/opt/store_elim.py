"""§5.2 — redundant (store-before-store) removal (Figure 8).

When a store is followed by other stores to the same address, it needs to
happen only if none of them overwrites it: its predicate is and-ed with
the negation of their disjunction. The search walks *chains* of direct
same-address store→store dependences — soundly, because a direct edge in
the transitively reduced token graph means no intervening operation (in
particular no read) touches that address between the two stores. If the
followers collectively post-dominate the earlier store, its predicate
becomes constant false and §4.1 deletes it — the Figure 1C→1D step of the
running example.
"""

from __future__ import annotations

from repro.opt.context import OptContext
from repro.pegasus import nodes as N
from repro.analysis import predicates


class StoreBeforeStore:
    name = "store-before-store"

    def run(self, ctx: OptContext) -> int:
        rewritten = 0
        for hb_id, relation in ctx.relations.items():
            for store in list(relation.ops):
                if not isinstance(store, N.StoreNode):
                    continue
                if self._strengthen(ctx, hb_id, store):
                    rewritten += 1
        if rewritten:
            ctx.count("store-before-store.rewritten", rewritten)
            ctx.invalidate()
        return rewritten

    # ------------------------------------------------------------------

    def _strengthen(self, ctx: OptContext, hb_id: int,
                    earlier: N.StoreNode) -> bool:
        followers = self._overwriting_chain(ctx, hb_id, earlier)
        if not followers:
            return False
        earlier_pred = ctx.pred_port(earlier)
        if predicates.is_false(earlier_pred):
            return False  # already dead; §4.1 will take it
        follower_preds = [ctx.pred_port(f) for f in followers]
        # Cycle check: none of the follower predicates may derive from the
        # earlier store's token (through loaded values).
        for pred in follower_preds:
            if ctx.reachability.reaches(earlier, pred.node):
                token = earlier.out(N.StoreNode.TOKEN_OUT)
                if ctx.reachability.port_reaches(token, pred.node):
                    return False
        any_follower = predicates.make_or_all(ctx.graph, follower_preds, hb_id)
        if predicates.disjoint(earlier_pred, any_follower):
            return False  # already strengthened (idempotence guard)
        new_pred = predicates.make_and(
            ctx.graph, earlier_pred,
            predicates.make_not(ctx.graph, any_follower, hb_id), hb_id,
        )
        if new_pred == earlier_pred:
            return False
        ctx.graph.set_input(earlier, N.StoreNode.PRED_IN, new_pred)
        ctx.invalidate()
        return True

    # ------------------------------------------------------------------

    def _overwriting_chain(self, ctx: OptContext, hb_id: int,
                           earlier: N.StoreNode) -> list[N.StoreNode]:
        """Same-address stores reachable via direct store→store edges.

        Each hop is a direct dependence between two same-address stores, so
        no read of the address can sit between them (the reduced token
        graph would route through it instead); every store collected here
        overwrites ``earlier`` whenever its predicate holds.
        """
        relation = ctx.relations[hb_id]
        chain: list[N.StoreNode] = []
        seen: set[int] = set()
        frontier: list[N.StoreNode] = [earlier]
        while frontier:
            current = frontier.pop()
            for succ in relation.successors(current):
                if not isinstance(succ, N.StoreNode) or succ.id in seen:
                    continue
                if succ.type != earlier.type:
                    continue
                if ctx.addresses.constant_difference(
                    ctx.addr_port(earlier), ctx.addr_port(succ)
                ) != 0:
                    continue
                seen.add(succ.id)
                chain.append(succ)
                frontier.append(succ)
        return chain
