"""§4.2 — accesses to immutable objects.

Loads whose read set contains only const-qualified objects need no
serialization: they drop out of the token relation, their token input is
disconnected, and they generate no token. When the address resolves
statically to an initialized element of a const object, the load is removed
entirely and replaced by the constant value.
"""

from __future__ import annotations

from repro.frontend import types as ty
from repro.opt.context import OptContext
from repro.pegasus import nodes as N
from repro.pegasus.graph import OutPort


class ImmutableLoads:
    name = "immutable-loads"

    def run(self, ctx: OptContext) -> int:
        changed = 0
        for hb_id, relation in ctx.relations.items():
            for node in list(relation.ops):
                if not isinstance(node, N.LoadNode):
                    continue
                if not ctx.pointers.is_immutable_access(node.rwset):
                    continue
                known = self._known_value(ctx, node)
                if known is not None:
                    const = ctx.graph.add(
                        N.ConstNode(known, node.type, node.hyperblock)
                    )
                    ctx.replace_value_uses(node.out(N.LoadNode.VALUE_OUT),
                                           const.out())
                    ctx.remove_memop(node)
                    ctx.count("immutable.folded")
                else:
                    relation.drop_op(node)
                    relation.reduce()
                    ctx.rewire_hyperblock(hb_id)
                    node.immutable = True
                    ctx.graph.set_input(node, N.LoadNode.TOKEN_IN, None)
                    ctx.count("immutable.untethered")
                changed += 1
        if changed:
            ctx.invalidate()
        return changed

    # ------------------------------------------------------------------

    def _known_value(self, ctx: OptContext, node: N.LoadNode):
        """The statically-known loaded value, for const-object constant
        addresses, or None."""
        form = ctx.addresses.affine(ctx.addr_port(node))
        if len(form.terms) != 1:
            return None
        key, coeff = form.terms[0]
        if not (isinstance(key, tuple) and key[0] == "object" and coeff == 1):
            return None
        symbol = key[1]
        if not symbol.is_const or not symbol.init_values:
            return None
        offset = form.const
        element = symbol.type
        if isinstance(element, ty.ArrayType):
            element = element.element
        if element != node.type:
            return None
        if offset < 0 or offset % element.size != 0:
            return None
        index = offset // element.size
        if index >= len(symbol.init_values):
            return None
        value = symbol.init_values[index]
        if isinstance(element, ty.IntType) and isinstance(value, (int, float)):
            return element.wrap(int(value))
        return value
