"""§5.1 — merging equivalent memory operations (Figure 7).

Two accesses to the same address with the same dependences merge into one
whose predicate is the disjunction of the originals. For loads this
subsumes global common-subexpression elimination (identical predicates),
partial redundancy elimination, and code hoisting for memory reads; for
stores it additionally requires the stored values to be the same.

The safety conditions: same symbolic address and width, identical token
dependences (so no interfering operation separates them), and no cycle —
neither operation's inputs may depend on the other's outputs (§5's
reachability test).
"""

from __future__ import annotations

from repro.opt.context import OptContext
from repro.pegasus import nodes as N
from repro.pegasus.graph import OutPort
from repro.analysis import predicates


class MergeEquivalent:
    name = "merge-equivalent"

    def run(self, ctx: OptContext) -> int:
        merged = 0
        for hb_id in list(ctx.relations):
            changed = True
            while changed:
                changed = False
                relation = ctx.relations[hb_id]
                ops = list(relation.ops)
                for i, first in enumerate(ops):
                    for second in ops[i + 1:]:
                        if type(first) is not type(second):
                            continue
                        if self._merge_pair(ctx, hb_id, first, second):
                            merged += 1
                            changed = True
                            break
                    if changed:
                        break
        if merged:
            ctx.count("merge-equivalent.merged", merged)
            ctx.invalidate()
        return merged

    # ------------------------------------------------------------------

    def _merge_pair(self, ctx: OptContext, hb_id: int,
                    keep: N.Node, drop: N.Node) -> bool:
        relation = ctx.relations[hb_id]
        if keep.type != drop.type:  # type: ignore[attr-defined]
            return False
        if ctx.addresses.constant_difference(
            ctx.addr_port(keep), ctx.addr_port(drop)
        ) != 0:
            return False
        if not self._same_sources(relation.deps[keep], relation.deps[drop]):
            return False
        if isinstance(keep, N.StoreNode):
            if ctx.store_value_port(keep) != ctx.store_value_port(drop):
                return False
        pred_keep = ctx.pred_port(keep)
        pred_drop = ctx.pred_port(drop)
        # Cycle check: the surviving op's new predicate (and, for loads, the
        # redirected consumers) must not create a path through either op.
        for port in (pred_keep, pred_drop, ctx.addr_port(drop)):
            if self._depends_on(ctx, port, keep) or self._depends_on(ctx, port, drop):
                return False

        merged_pred = predicates.make_or(ctx.graph, pred_keep, pred_drop, hb_id)
        pred_slot = (N.LoadNode.PRED_IN if isinstance(keep, N.LoadNode)
                     else N.StoreNode.PRED_IN)
        ctx.graph.set_input(keep, pred_slot, merged_pred)

        if isinstance(keep, N.LoadNode):
            ctx.replace_value_uses(drop.out(N.LoadNode.VALUE_OUT),
                                   keep.out(N.LoadNode.VALUE_OUT))
        relation.replace_op(drop, keep)
        relation.reduce()
        ctx.rewire_hyperblock(hb_id)
        for index in range(len(drop.inputs)):
            ctx.graph.set_input(drop, index, None)
        ctx.graph.remove(drop)
        ctx.invalidate()
        return True

    # ------------------------------------------------------------------

    @staticmethod
    def _same_sources(a: list, b: list) -> bool:
        def key(dep):
            return id(dep) if isinstance(dep, N.Node) else ("port", dep)
        return {key(d) for d in a} == {key(d) for d in b}

    @staticmethod
    def _depends_on(ctx: OptContext, port: OutPort, node: N.Node) -> bool:
        return ctx.reachability.reaches(node, port.node)
