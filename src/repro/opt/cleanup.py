"""Dead-node elimination (the scalar part of the paper's DCE).

Removes, to a fixpoint, nodes whose outputs nothing consumes: pure
arithmetic, muxes, constants, data etas and merges, and orphaned combines.
Memory operations, returns, token generators and initial tokens are never
removed here — predicated-false memory ops are the business of
:mod:`repro.opt.dead_memops` (§4.1), which keeps the token relation in sync.
"""

from __future__ import annotations

from repro.opt.context import OptContext
from repro.pegasus import nodes as N

_REMOVABLE = (N.BinOpNode, N.UnOpNode, N.CastNode, N.MuxNode, N.ConstNode,
              N.SymbolAddrNode, N.ParamNode, N.CombineNode, N.EtaNode,
              N.MergeNode)


class Cleanup:
    name = "cleanup"

    def run(self, ctx: OptContext) -> int:
        removed = 0
        changed = True
        while changed:
            changed = False
            for node in list(ctx.graph):
                if not isinstance(node, _REMOVABLE):
                    continue
                if any(ctx.graph.has_uses(node.out(i))
                       for i in range(node.num_outputs)):
                    continue
                if self._referenced_by_relations(ctx, node):
                    continue
                for index in range(len(node.inputs)):
                    ctx.graph.set_input(node, index, None)
                ctx.graph.remove(node)
                removed += 1
                changed = True
        if removed:
            ctx.invalidate()
            ctx.count("cleanup.removed", removed)
        return removed

    @staticmethod
    def _referenced_by_relations(ctx: OptContext, node: N.Node) -> bool:
        """Is this node a relation boundary or dependence source?"""
        for relation in ctx.relations.values():
            for port in relation.boundary.values():
                if port.node is node:
                    return True
            for deps in relation.deps.values():
                for dep in deps:
                    if dep is node or (hasattr(dep, "node") and dep.node is node):
                        return True
        for port in ctx.loop_predicates.values():
            if port.node is node:
                return True
        return False
