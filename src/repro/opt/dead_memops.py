"""§4.1 — removing dead memory operations.

A side-effect operation whose predicate is constant false never executes;
the compiler removes it outright, connecting its token input to its token
output (here: dropping it from the token relation, which reroutes its
consumers to its dependences — the same thing expressed on the relation).

Such predicates arise from control-flow simplification and, importantly,
from store-before-store removal (§5.2), whose "and with the negation"
rewrite this pass completes.
"""

from __future__ import annotations

from repro.opt.context import OptContext
from repro.pegasus import nodes as N
from repro.analysis import predicates


class DeadMemOps:
    name = "dead-memops"

    def run(self, ctx: OptContext) -> int:
        removed = 0
        for hb_id, relation in ctx.relations.items():
            for node in list(relation.ops):
                pred = ctx.pred_port(node)
                if not predicates.is_false(pred):
                    continue
                if isinstance(node, N.LoadNode):
                    # The loaded value is unconditionally garbage; feed the
                    # deterministic garbage the simulator would produce.
                    zero = ctx.graph.add(
                        N.ConstNode(0, node.type, node.hyperblock)
                    )
                    ctx.replace_value_uses(node.out(N.LoadNode.VALUE_OUT),
                                           zero.out())
                ctx.remove_memop(node)
                removed += 1
                ctx.count(f"dead-memops.{'loads' if isinstance(node, N.LoadNode) else 'stores'}")
        if removed:
            ctx.invalidate()
        return removed
