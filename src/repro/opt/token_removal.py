"""§4.3 — removing unnecessary token edges.

For every directly synchronized pair (one produces a token the other
consumes), try to prove the two operations never simultaneously access the
same address; if so, delete the edge and splice the producer's own
dependences into the consumer so the transitive closure is preserved
(Figure 5), then restore transitive reduction.

Disambiguation heuristics, exactly the paper's three:

1. symbolic address computation — the difference is a nonzero constant or
   the roots are distinct objects (:mod:`repro.analysis.symbolic`);
2. induction-variable analysis — same pace, offset residues
   (:mod:`repro.analysis.induction`);
3. pointer analysis / ``#pragma independent`` read-write sets — these are
   already consumed while *building* the relation (§3.3), so what remains
   here is a re-check after other passes refine address expressions.
"""

from __future__ import annotations

from repro.opt.context import OptContext
from repro.pegasus import nodes as N


class TokenRemoval:
    name = "token-removal"

    def run(self, ctx: OptContext) -> int:
        removed_total = 0
        for hb_id, relation in ctx.relations.items():
            removed_here = 0
            changed = True
            while changed:
                changed = False
                for node in list(relation.ops):
                    for dep in list(relation.deps[node]):
                        if not isinstance(dep, N.Node) or not dep.is_memory_op:
                            continue
                        if not self._provably_disjoint(ctx, hb_id, node, dep):
                            continue
                        # Figure 5: preserve the transitive closure minus
                        # only the removed pair. Ancestors of the producer
                        # must still reach the consumer (splice the
                        # producer's dependences in), and the producer must
                        # still reach the consumer's successors (it used to
                        # do so through the removed edge).
                        spliced = [d for d in relation.deps[node] if d is not dep]
                        spliced.extend(relation.deps[dep])
                        relation.deps[node] = list(dict.fromkeys(spliced))
                        for succ in relation.ops:
                            if succ is node or succ is dep:
                                continue
                            if any(d is node for d in relation.deps[succ]):
                                if not any(d is dep for d in relation.deps[succ]):
                                    relation.deps[succ] = relation.deps[succ] + [dep]
                        removed_here += 1
                        changed = True
                if changed:
                    relation.reduce()
            if removed_here:
                ctx.rewire_hyperblock(hb_id)
                removed_total += removed_here
        if removed_total:
            ctx.count("token-removal.edges", removed_total)
            ctx.invalidate()
        return removed_total

    # ------------------------------------------------------------------

    def _provably_disjoint(self, ctx: OptContext, hb_id: int,
                           a: N.Node, b: N.Node) -> bool:
        """Can these two ops never touch the same address in one instance?"""
        addr_a, addr_b = ctx.addr_port(a), ctx.addr_port(b)
        width_a = a.width  # type: ignore[attr-defined]
        width_b = b.width  # type: ignore[attr-defined]
        if ctx.addresses.never_same_address(addr_a, width_a, addr_b, width_b):
            return True
        if not ctx.pointers.may_interfere(a.rwset, b.rwset):  # type: ignore[attr-defined]
            return True
        if hb_id in ctx.loop_predicates:
            induction = ctx.induction(hb_id)
            if induction.never_equal_across_iterations(addr_a, width_a,
                                                       addr_b, width_b):
                return True
        return False
