"""§5.4 — loop-invariant load motion.

A load is loop-invariant when *all* of its inputs are: the address (an
invariant expression), the predicate, and the token — which in relation
terms means the load depends only on the class's entry token and nothing in
the loop writes that class. Such a load is lifted in front of the loop
(the paper creates a loop-header hyperblock; we place the load in the
predecessor hyperblock, which is that header) and its value circulates
through a fresh merge/eta pair — rule 2 of the paper's invariance
definition — so every iteration reads the same register instead of memory.

Loop-invariant *stores* are never detected, exactly as the paper notes:
their token input is freshly generated each iteration.

Safety: the address must be rooted in a named object, so executing the
load speculatively (the loop may run zero iterations) cannot fault.
"""

from __future__ import annotations

from repro.opt.context import OptContext
from repro.pegasus.graph import OutPort
from repro.pegasus import nodes as N
from repro.analysis.symbolic import _object_root


class LoopInvariantLoads:
    name = "licm-loads"

    def run(self, ctx: OptContext) -> int:
        hoisted = 0
        for hb_id in list(ctx.relations):
            if hb_id not in ctx.loop_predicates:
                continue  # not a loop body
            for load in list(ctx.relations[hb_id].ops):
                if isinstance(load, N.LoadNode):
                    if self._try_hoist(ctx, hb_id, load):
                        hoisted += 1
        if hoisted:
            ctx.count("licm.hoisted", hoisted)
            ctx.invalidate()
        return hoisted

    # ------------------------------------------------------------------

    def _try_hoist(self, ctx: OptContext, hb_id: int, load: N.LoadNode) -> bool:
        relation = ctx.relations[hb_id]
        classes = relation.classes[load]
        if len(classes) != 1:
            return False
        class_id = next(iter(classes))
        # Nothing in the loop may write the class — checked across *every*
        # hyperblock of the loop body, not just the header: a multi-block
        # body (inlined calls, nested loops) can write the class elsewhere,
        # making the value genuinely loop-varying.
        for body_hb in self._loop_body_hyperblocks(ctx, hb_id):
            body_relation = ctx.relations.get(body_hb)
            if body_relation is None:
                continue
            for op in body_relation.ops:
                if body_relation.is_write[op] and class_id in body_relation.classes[op]:
                    return False
        # The token input must be loop-invariant: only the entry token.
        boundary = relation.boundary[class_id]
        for dep in relation.deps[load]:
            if isinstance(dep, N.Node):
                return False
            if dep != boundary:
                return False
        induction = ctx.induction(hb_id)
        addr = ctx.addr_port(load)
        if not induction.is_invariant_port(addr):
            return False
        # The predicate need not be invariant: the hoisted load runs once,
        # speculatively, when the loop is entered. That is sound because
        # the address is rooted in a named object (cannot fault), nothing
        # in the loop writes the class (the value is the same on every
        # iteration), and iterations where the original predicate was
        # false never consume the value.
        if _object_root(ctx.addresses.affine(addr)) is None:
            return False  # speculative execution must be fault-free

        # Locate the loop's entry edge through the class token merge.
        boundary_node = boundary.node
        if not isinstance(boundary_node, N.MergeNode):
            return False
        forward_slots = boundary_node.entry_slots()
        if len(forward_slots) != 1:
            return False
        entry_port = boundary_node.inputs[forward_slots[0]]
        if entry_port is None or not isinstance(entry_port.node, N.EtaNode):
            return False
        pre_eta = entry_port.node
        pred_hb = pre_eta.hyperblock
        if pred_hb == hb_id or pred_hb not in ctx.relations:
            return False
        edge_pred = pre_eta.pred_input
        if edge_pred is None:
            return False

        memo: dict[OutPort, OutPort | None] = {}
        cloned_addr = self._clone_invariant(ctx, addr, hb_id, pred_hb,
                                            induction, memo)
        if cloned_addr is None:
            return False

        # 1. The hoisted load, ordered at the end of the predecessor
        #    hyperblock's class stream.
        pre_relation = ctx.relations[pred_hb]
        hoist_pred = edge_pred
        pre_deps = list(pre_relation.exit_frontier(class_id))
        hoisted = N.LoadNode(load.type, cloned_addr, hoist_pred, None,
                             load.rwset, pred_hb)
        ctx.graph.add(hoisted)
        pre_relation.add_op(hoisted, frozenset({class_id}), False, pre_deps)
        ctx.rewire_hyperblock(pred_hb)

        # 2. Circulate the loaded value through the loop (invariance rule 2).
        loop_pred = ctx.loop_predicates[hb_id]
        entry_eta = ctx.graph.add(N.EtaNode(
            load.type, hoisted.out(N.LoadNode.VALUE_OUT), edge_pred,
            pred_hb, N.DATA,
        ))
        merge = N.MergeNode(load.type, 2, hb_id, N.DATA)
        ctx.graph.add(merge)
        back_eta = ctx.graph.add(N.EtaNode(
            load.type, merge.out(), loop_pred, hb_id, N.DATA,
        ))
        ctx.graph.set_input(merge, 0, entry_eta.out())
        ctx.graph.set_input(merge, 1, back_eta.out())
        merge.back_inputs.add(1)
        merge.add_control(ctx.graph, loop_pred)

        # 3. Replace and remove the in-loop load.
        ctx.replace_value_uses(load.out(N.LoadNode.VALUE_OUT), merge.out())
        ctx.remove_memop(load)
        return True

    @staticmethod
    def _loop_body_hyperblocks(ctx: OptContext, header_hb: int) -> list[int]:
        """Ids of every hyperblock whose blocks are inside the loop."""
        partition = ctx.build.partition
        header = partition.hyperblocks[header_hb]
        loop = header.loop
        if loop is None:
            return [header_hb]
        return [
            hb.id for hb in partition.hyperblocks
            if hb.entry in loop.blocks
        ]

    # ------------------------------------------------------------------

    def _clone_invariant(self, ctx: OptContext, port: OutPort, hb_id: int,
                         pred_hb: int, induction, memo) -> OutPort | None:
        """Rebuild an invariant expression so it is valid before the loop.

        Constants and parameters are wires usable anywhere; an invariant
        loop merge maps to its pre-loop source (its entry eta's value);
        pure arithmetic produced inside the loop is cloned into the
        predecessor hyperblock. Anything else refuses the hoist.
        """
        if port in memo:
            return memo[port]
        result = self._clone_inner(ctx, port, hb_id, pred_hb, induction, memo)
        memo[port] = result
        return result

    def _clone_inner(self, ctx: OptContext, port: OutPort, hb_id: int,
                     pred_hb: int, induction, memo) -> OutPort | None:
        node = port.node
        if isinstance(node, (N.ConstNode, N.ParamNode, N.SymbolAddrNode)):
            return port
        if isinstance(node, N.MergeNode) and node.hyperblock == hb_id:
            if node.id not in induction.invariant_merges:
                return None
            forward = [node.inputs[i] for i in node.entry_slots()]
            if len(forward) != 1 or forward[0] is None:
                return None
            source = forward[0]
            if isinstance(source.node, N.EtaNode):
                if source.node.hyperblock != pred_hb:
                    return None
                return source.node.value_input
            return None
        if node.hyperblock == hb_id and isinstance(
            node, (N.BinOpNode, N.UnOpNode, N.CastNode)
        ):
            cloned_inputs = []
            for input_port in node.inputs:
                if input_port is None:
                    return None
                cloned = self._clone_invariant(ctx, input_port, hb_id,
                                               pred_hb, induction, memo)
                if cloned is None:
                    return None
                cloned_inputs.append(cloned)
            if isinstance(node, N.BinOpNode):
                clone = N.BinOpNode(node.op, node.type, cloned_inputs[0],
                                    cloned_inputs[1], pred_hb)
            elif isinstance(node, N.UnOpNode):
                clone = N.UnOpNode(node.op, node.type, cloned_inputs[0],
                                   pred_hb)
            else:
                clone = N.CastNode(node.from_type, node.to_type,
                                   cloned_inputs[0], pred_hb)
            ctx.graph.add(clone)
            return clone.out()
        if node.hyperblock == pred_hb:
            return port  # already available before the loop
        return None
