"""Optimization passes over Pegasus graphs.

The passes implement §4 (increasing memory parallelism), §5 (removing
redundant memory accesses) and the scalar support passes the paper lists;
the loop-pipelining transformations of §6 live in :mod:`repro.looppipe`.

Entry point: :func:`repro.opt.passes.optimize`.
"""

from repro.opt.passes import optimize, PIPELINES

__all__ = ["optimize", "PIPELINES"]
