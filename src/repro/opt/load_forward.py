"""§5.3 — load-after-store removal (Figure 9).

A load directly synchronized with stores to the same address bypasses
memory: a decoded multiplexor selects, at run time, the value of whichever
store executed; the load's own predicate is strengthened to "none of the
stores executed". The search walks *chains* of same-address stores (a
younger store's dependence on an older one), with younger stores masking
older ones in the mux, so sequences like ``t[i] = a; if (c) t[i] = b;
... = t[i]`` forward fully. If the stores collectively dominate the load
(Gupta), the strengthened predicate is constant false and §4.1 removes the
load — this is the Figure 1B→1C step of the paper's running example.
"""

from __future__ import annotations

from repro.opt.context import OptContext
from repro.pegasus import nodes as N
from repro.analysis import predicates


class LoadAfterStore:
    name = "load-after-store"

    def run(self, ctx: OptContext) -> int:
        forwarded = 0
        for hb_id, relation in ctx.relations.items():
            for node in list(relation.ops):
                if not isinstance(node, N.LoadNode):
                    continue
                if self._forward(ctx, hb_id, node):
                    forwarded += 1
        if forwarded:
            ctx.count("load-after-store.forwarded", forwarded)
            ctx.invalidate()
        return forwarded

    # ------------------------------------------------------------------

    def _forward(self, ctx: OptContext, hb_id: int, load: N.LoadNode) -> bool:
        chain = self._same_address_chain(ctx, hb_id, load)
        if not chain:
            return False

        load_value = load.out(N.LoadNode.VALUE_OUT)
        if not ctx.graph.has_uses(load_value):
            return False
        # Cycle check (§5): no forwarded value or predicate may depend on
        # the load's own result.
        for store in chain:
            for port in (ctx.pred_port(store), ctx.store_value_port(store)):
                if ctx.reachability.port_reaches(load_value, port.node):
                    return False

        store_preds = [ctx.pred_port(store) for store in chain]
        any_store = predicates.make_or_all(ctx.graph, store_preds, hb_id)
        old_pred = ctx.pred_port(load)
        if predicates.disjoint(old_pred, any_store):
            return False  # already forwarded (idempotence guard)
        new_pred = predicates.make_and(
            ctx.graph, old_pred,
            predicates.make_not(ctx.graph, any_store, hb_id), hb_id,
        )

        # Capture existing consumers before creating the mux, so the mux's
        # own fallback arm is not redirected. Arms are ordered youngest
        # first and masked by every younger store's predicate, so exactly
        # the value the load would have read is selected.
        consumers = list(ctx.graph.uses(load_value))
        arms = []
        younger: list = []
        for store in chain:  # chain is youngest -> oldest
            pred = ctx.pred_port(store)
            masked = pred
            for other in younger:
                masked = predicates.make_and(
                    ctx.graph, masked,
                    predicates.make_not(ctx.graph, other, hb_id), hb_id,
                )
            arms.append((masked, ctx.store_value_port(store)))
            younger.append(pred)
        arms.append((new_pred, load_value))
        mux = ctx.graph.add(N.MuxNode(arms, load.type, hb_id))
        for slot in consumers:
            ctx.graph.set_input(slot.node, slot.index, mux.out())

        ctx.graph.set_input(load, N.LoadNode.PRED_IN, new_pred)
        ctx.invalidate()
        return True

    # ------------------------------------------------------------------

    def _same_address_chain(self, ctx: OptContext, hb_id: int,
                            load: N.LoadNode) -> list[N.StoreNode] | None:
        """Same-address stores whose values may reach the load.

        The load's *direct* store dependences must all write exactly the
        loaded address (a may-aliasing direct dependence defeats
        forwarding entirely); behind each, older same-address stores are
        collected transitively — stopping at anything else, which the
        memory-reading fallback arm covers. Returned youngest-first.
        """
        relation = ctx.relations[hb_id]
        direct: list[N.StoreNode] = []
        for dep in relation.deps[load]:
            if not isinstance(dep, N.Node):
                continue
            if not isinstance(dep, N.StoreNode):
                return None
            if not self._matches(ctx, load, dep):
                return None
            direct.append(dep)
        if not direct:
            return None

        collected: dict[int, N.StoreNode] = {}
        frontier = list(direct)
        while frontier:
            store = frontier.pop()
            if store.id in collected:
                continue
            collected[store.id] = store
            for dep in relation.deps.get(store, []):
                if (isinstance(dep, N.StoreNode)
                        and dep.id not in collected
                        and self._matches(ctx, load, dep)):
                    frontier.append(dep)

        # Youngest-first topological order over the chain: a store must be
        # masked by every store that can execute after it, so older stores
        # (dependences of younger ones) come later in the arm list.
        members = list(collected.values())
        member_ids = set(collected)
        ordered: list[N.StoreNode] = []
        remaining = {s.id: s for s in members}
        while remaining:
            # Youngest = not a dependence of any other remaining member.
            dep_ids = set()
            for store in remaining.values():
                for dep in relation.deps.get(store, []):
                    if isinstance(dep, N.Node) and dep.id in remaining:
                        dep_ids.add(dep.id)
            youngest = [s for sid, s in sorted(remaining.items())
                        if sid not in dep_ids]
            if not youngest:
                return None  # cyclic relation would be a bug; refuse
            for store in youngest:
                ordered.append(store)
                del remaining[store.id]
        assert member_ids == {s.id for s in ordered}
        return ordered

    @staticmethod
    def _matches(ctx: OptContext, load: N.LoadNode, store: N.StoreNode) -> bool:
        if store.type != load.type:
            return False
        return ctx.addresses.constant_difference(
            ctx.addr_port(load), ctx.addr_port(store)
        ) == 0
