"""GSM 06.10-style kernels (MediaBench ``gsm_e`` / ``gsm_d``).

The encoder kernel is the short-term analysis core of GSM full-rate:
autocorrelation over a 160-sample frame, Schur-style reflection
coefficients in fixed point, and inverse filtering. The decoder runs the
synthesis (lattice) filter. Saturating 16-bit arithmetic throughout, as in
the standard's reference implementation.
"""

from repro.programs.base import Kernel, register

_COMMON = """
#define FRAME 160

short frame_buf[FRAME];
long acf[9];
short refl[8];

int gsm_add(int a, int b)
{
    int sum = a + b;
    if (sum > 32767) sum = 32767;
    if (sum < -32768) sum = -32768;
    return sum;
}

int gsm_mult_r(int a, int b)
{
    long prod = (long)a * (long)b + 16384;
    return (int)(prod >> 15);
}

int synth_frame(short *buffer, int n, int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    int acc = 0;
    for (i = 0; i < n; i++) {
        seed = seed * 2147001325 + 715136305;
        acc = (acc * 3) / 4 + (int)((seed >> 20) & 1023) - 512;
        buffer[i] = (short)acc;
    }
    return n;
}

int autocorrelation(short *samples, long *corr, int n)
{
#pragma independent samples corr
    int k;
    int i;
    for (k = 0; k <= 8; k++) {
        long sum = 0;
        for (i = k; i < n; i++) {
            sum += (long)samples[i] * (long)samples[i - k];
        }
        corr[k] = sum >> 4;
    }
    return 9;
}

int reflection_coefficients(long *corr, short *r)
{
#pragma independent corr r
    int i;
    long p0 = corr[0];
    for (i = 0; i < 8; i++) {
        long pk = corr[i + 1];
        long coeff;
        if (p0 == 0) coeff = 0;
        else coeff = -(pk << 13) / (p0 + 1);
        if (coeff > 32767) coeff = 32767;
        if (coeff < -32768) coeff = -32768;
        r[i] = (short)coeff;
        p0 = p0 - ((pk * pk) / (p0 + 1));
        if (p0 <= 0) p0 = 1;
    }
    return 8;
}
"""

ENCODE_SOURCE = _COMMON + """
short residual[FRAME];

int short_term_analysis(short *samples, short *r, short *out, int n)
{
#pragma independent samples out
    int i;
    int j;
    int u[8];
    for (j = 0; j < 8; j++) u[j] = 0;
    for (i = 0; i < n; i++) {
        int d = samples[i];
        for (j = 0; j < 8; j++) {
            int ui = u[j];
            int rj = r[j];
            u[j] = gsm_add(ui, gsm_mult_r(rj, d));
            d = gsm_add(d, gsm_mult_r(rj, ui));
        }
        out[i] = (short)d;
    }
    return n;
}

int gsm_encode_frame(int seed)
{
    int i;
    long checksum = 0;
    synth_frame(frame_buf, FRAME, seed);
    autocorrelation(frame_buf, acf, FRAME);
    reflection_coefficients(acf, refl);
    short_term_analysis(frame_buf, refl, residual, FRAME);
    for (i = 0; i < FRAME; i++) checksum += residual[i] ^ (i * 3);
    for (i = 0; i < 8; i++) checksum += refl[i];
    return (int)(checksum & 0x7fffffff);
}
"""

DECODE_SOURCE = _COMMON + """
short synth_out[FRAME];

int short_term_synthesis(short *res, short *r, short *out, int n)
{
#pragma independent res out
    int i;
    int j;
    int v[9];
    for (j = 0; j < 9; j++) v[j] = 0;
    for (i = 0; i < n; i++) {
        int s = res[i];
        for (j = 7; j >= 0; j--) {
            s = gsm_add(s, gsm_mult_r(-r[j], v[j]));
            v[j + 1] = gsm_add(v[j], gsm_mult_r(r[j], s));
        }
        v[0] = s;
        out[i] = (short)s;
    }
    return n;
}

int gsm_decode_frame(int seed)
{
    int i;
    long checksum = 0;
    synth_frame(frame_buf, FRAME, seed);
    autocorrelation(frame_buf, acf, FRAME);
    reflection_coefficients(acf, refl);
    short_term_synthesis(frame_buf, refl, synth_out, FRAME);
    for (i = 0; i < FRAME; i++) checksum += synth_out[i] ^ (i << 1);
    return (int)(checksum & 0x7fffffff);
}
"""

GSM_E = register(Kernel(
    name="gsm_e",
    family="MediaBench gsm (encode)",
    source=ENCODE_SOURCE,
    entry="gsm_encode_frame",
    args=(42,),
    golden=4872760,
    description="GSM short-term LPC analysis over one synthesized frame",
    pragma_count=3,
))

GSM_D = register(Kernel(
    name="gsm_d",
    family="MediaBench gsm (decode)",
    source=DECODE_SOURCE,
    entry="gsm_decode_frame",
    args=(42,),
    golden=2147291739,
    description="GSM short-term synthesis filter over one frame",
    pragma_count=3,
))
