"""The benchmark suite (Table 2's programs, rebuilt from scratch).

The paper evaluates MediaBench and SPECint95 kernels; those sources and
inputs are not redistributable, so each benchmark here is a from-scratch
MiniC program of the same algorithmic family — an ADPCM codec where the
paper used ``adpcm``, an 8×8 DCT where it used ``jpeg``, an LZW compressor
for ``129.compress``, and so on. What matters for the reproduction is the
*memory-access structure* (aliasing patterns, redundancy, loop dependence
shapes), which these kernels preserve.

Every kernel is self-checking: its entry returns a checksum, validated
against a golden value produced by the sequential oracle and, where
practical, an independent Python model (see ``tests/integration``).
"""

from repro.programs.base import Kernel, all_kernels, get_kernel

# Importing the modules registers their kernels.
from repro.programs import adpcm      # noqa: F401
from repro.programs import g721       # noqa: F401
from repro.programs import gsm        # noqa: F401
from repro.programs import epic       # noqa: F401
from repro.programs import mpeg2      # noqa: F401
from repro.programs import jpeg       # noqa: F401
from repro.programs import pegwit     # noqa: F401
from repro.programs import mesa       # noqa: F401
from repro.programs import spec       # noqa: F401

__all__ = ["Kernel", "all_kernels", "get_kernel"]
