"""Mesa-style 3D pipeline kernel (MediaBench ``mesa``).

The geometry stage that dominates Mesa's osdemo workloads: transform an
array of vertices by a 4×4 matrix, perspective-divide, compute a
one-light-source diffuse intensity, and viewport-map — double-precision
floating point over structure-of-arrays vertex data, matching Mesa's
``gl_xform_points`` + lighting inner loops.
"""

from repro.programs.base import Kernel, register

SOURCE = """
#define NVERTS 128

double vx[NVERTS]; double vy[NVERTS]; double vz[NVERTS];
double nx[NVERTS]; double ny[NVERTS]; double nz[NVERTS];
double outx[NVERTS]; double outy[NVERTS]; double outz[NVERTS];
double intensity[NVERTS];
double matrix[16];

int make_scene(int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < NVERTS; i++) {
        seed = seed * 1103515245 + 12345;
        vx[i] = (double)((int)((seed >> 16) & 1023) - 512) / 64.0;
        seed = seed * 1103515245 + 12345;
        vy[i] = (double)((int)((seed >> 16) & 1023) - 512) / 64.0;
        seed = seed * 1103515245 + 12345;
        vz[i] = (double)((int)((seed >> 16) & 1023) - 512) / 64.0 - 24.0;
        nx[i] = 0.6; ny[i] = 0.48; nz[i] = 0.64;
    }
    matrix[0] = 1.2; matrix[1] = 0.0; matrix[2] = 0.1; matrix[3] = 0.0;
    matrix[4] = 0.0; matrix[5] = 1.1; matrix[6] = 0.0; matrix[7] = 0.0;
    matrix[8] = 0.2; matrix[9] = 0.0; matrix[10] = 1.0; matrix[11] = -2.0;
    matrix[12] = 0.0; matrix[13] = 0.0; matrix[14] = -1.0; matrix[15] = 0.0;
    return NVERTS;
}

int transform_points(int n)
{
    int i;
    for (i = 0; i < n; i++) {
        double x = vx[i];
        double y = vy[i];
        double z = vz[i];
        double tx = matrix[0] * x + matrix[1] * y + matrix[2] * z + matrix[3];
        double ty = matrix[4] * x + matrix[5] * y + matrix[6] * z + matrix[7];
        double tz = matrix[8] * x + matrix[9] * y + matrix[10] * z + matrix[11];
        double tw = matrix[12] * x + matrix[13] * y + matrix[14] * z + matrix[15];
        if (tw < 0.001 && tw > -0.001) tw = 1.0;
        outx[i] = tx / tw;
        outy[i] = ty / tw;
        outz[i] = tz / tw;
    }
    return n;
}

int light_vertices(int n)
{
    int i;
    double lx = 0.3;
    double ly = 0.9;
    double lz = 0.3;
    for (i = 0; i < n; i++) {
        double dot = nx[i] * lx + ny[i] * ly + nz[i] * lz;
        if (dot < 0.0) dot = 0.0;
        intensity[i] = 0.2 + 0.8 * dot;
    }
    return n;
}

int viewport_map(int n)
{
    int i;
    for (i = 0; i < n; i++) {
        outx[i] = (outx[i] + 1.0) * 320.0;
        outy[i] = (outy[i] + 1.0) * 240.0;
    }
    return n;
}

int mesa_pipeline(int seed)
{
    int i;
    long checksum = 0;
    make_scene(seed);
    transform_points(NVERTS);
    light_vertices(NVERTS);
    viewport_map(NVERTS);
    for (i = 0; i < NVERTS; i++) {
        checksum += (long)(outx[i] * 8.0) ^ (long)(outy[i] * 4.0)
                  ^ (long)(intensity[i] * 1024.0);
    }
    return (int)(checksum & 0x7fffffff);
}
"""

MESA = register(Kernel(
    name="mesa",
    family="MediaBench mesa (osdemo geometry)",
    source=SOURCE,
    entry="mesa_pipeline",
    args=(11,),
    golden=307392,
    description="Vertex transform + perspective divide + diffuse lighting",
))
