"""SPECint95-family kernels.

Seven programs matching the paper's Table 2 list:

- ``go`` (099.go): board-influence propagation over a 19×19 Go board;
- ``m88ksim`` (124.m88ksim): a fetch-decode-execute interpreter over a
  synthetic register-machine program;
- ``compress`` (129.compress): LZW compression with a probed hash table;
- ``li`` (130.li): cons-cell arena with list construction, reversal, and
  mark-sweep-style traversal (xlisp's memory behaviour);
- ``ijpeg`` (132.ijpeg): RGB→YCbCr conversion plus 2:1 chroma downsample;
- ``perl`` (134.perl): string hashing into an open-addressed symbol table
  with chained probing (perl's hv.c profile);
- ``vortex`` (147.vortex): an in-memory record store with index insertion
  and range queries.
"""

from repro.programs.base import Kernel, register

GO_SOURCE = """
#define BD 19

int board[361];
int influence[361];

int setup_board(int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < BD * BD; i++) {
        seed = seed * 1103515245 + 12345;
        int r = (int)((seed >> 16) & 15);
        if (r < 3) board[i] = 1;        /* black stone */
        else if (r < 6) board[i] = -1;  /* white stone */
        else board[i] = 0;
        influence[i] = board[i] * 64;
    }
    return BD * BD;
}

int spread_influence(void)
{
    int x;
    int y;
    int changed = 0;
    for (y = 0; y < BD; y++) {
        for (x = 0; x < BD; x++) {
            int idx = y * BD + x;
            if (board[idx]) continue;
            int acc = 0;
            if (x > 0) acc += influence[idx - 1];
            if (x < BD - 1) acc += influence[idx + 1];
            if (y > 0) acc += influence[idx - BD];
            if (y < BD - 1) acc += influence[idx + BD];
            acc = acc / 5;
            if (acc != influence[idx]) {
                influence[idx] = acc;
                changed++;
            }
        }
    }
    return changed;
}

int count_territory(void)
{
    int i;
    int black = 0;
    int white = 0;
    for (i = 0; i < BD * BD; i++) {
        if (influence[i] > 8) black++;
        else if (influence[i] < -8) white++;
    }
    return black * 1000 + white;
}

int go_evaluate(int seed, int sweeps)
{
    int s;
    long checksum = 0;
    setup_board(seed);
    for (s = 0; s < sweeps; s++) {
        checksum += spread_influence();
    }
    return (int)((checksum * 100000 + count_territory()) & 0x7fffffff);
}
"""

M88KSIM_SOURCE = """
#define PROG_LEN 64
#define STEPS 2000

unsigned prog[PROG_LEN];
int regs[16];
int dmem[64];

int assemble(int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < PROG_LEN; i++) {
        seed = seed * 69069 + 1;
        /* opcode:4 | rd:4 | rs1:4 | rs2/imm:4 */
        unsigned op = (seed >> 10) % 7;
        prog[i] = (op << 12) | (((seed >> 16) & 0xfff));
    }
    prog[PROG_LEN - 1] = 6 << 12;  /* jump to 0 */
    return PROG_LEN;
}

int simulate(int steps)
{
    int pc = 0;
    int executed = 0;
    while (executed < steps) {
        unsigned instr = prog[pc];
        unsigned op = (instr >> 12) & 0xf;
        int rd = (int)((instr >> 8) & 0xf);
        int rs1 = (int)((instr >> 4) & 0xf);
        int imm = (int)(instr & 0xf);
        pc++;
        if (op == 0) regs[rd] = regs[rs1] + regs[imm];
        else if (op == 1) regs[rd] = regs[rs1] - imm;
        else if (op == 2) regs[rd] = regs[rs1] ^ (imm << 2);
        else if (op == 3) regs[rd] = dmem[(regs[rs1] + imm) & 63];
        else if (op == 4) dmem[(regs[rs1] + imm) & 63] = regs[rd];
        else if (op == 5) { if (regs[rd] > 0) pc = (pc + imm) % PROG_LEN; }
        else pc = imm;
        if (pc >= PROG_LEN) pc = 0;
        executed++;
    }
    return pc;
}

int m88ksim_run(int seed)
{
    int i;
    long checksum = 0;
    assemble(seed);
    for (i = 0; i < 16; i++) regs[i] = i * 3 - 8;
    for (i = 0; i < 64; i++) dmem[i] = i ^ 21;
    simulate(STEPS);
    for (i = 0; i < 16; i++) checksum = checksum * 31 + regs[i];
    for (i = 0; i < 64; i++) checksum += dmem[i];
    return (int)(checksum & 0x7fffffff);
}
"""

COMPRESS_SOURCE = """
#define HSIZE 1024
#define INPUT_LEN 512

unsigned char input[INPUT_LEN];
int hash_code[HSIZE];
int hash_entry[HSIZE];
int out_codes[INPUT_LEN];

int make_input(int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < INPUT_LEN; i++) {
        seed = seed * 1103515245 + 12345;
        /* skewed distribution: repetitive text-like input */
        input[i] = (unsigned char)('a' + ((seed >> 16) % ((i % 3) ? 6 : 26)));
    }
    return INPUT_LEN;
}

int lzw_compress(int len)
{
    int i;
    int next_code = 256;
    int prefix = input[0];
    int emitted = 0;
    for (i = 0; i < HSIZE; i++) { hash_code[i] = -1; hash_entry[i] = -1; }
    for (i = 1; i < len; i++) {
        int c = input[i];
        int key = (prefix << 8) | c;
        int h = ((key * 2654435761) >> 22) & (HSIZE - 1);
        int found = -1;
        while (hash_entry[h] != -1) {
            if (hash_entry[h] == key) { found = hash_code[h]; break; }
            h = (h + 1) & (HSIZE - 1);
        }
        if (found != -1) {
            prefix = found;
        } else {
            out_codes[emitted] = prefix;
            emitted++;
            if (next_code < 4096) {
                hash_entry[h] = key;
                hash_code[h] = next_code;
                next_code++;
            }
            prefix = c;
        }
    }
    out_codes[emitted] = prefix;
    emitted++;
    return emitted;
}

int compress_run(int seed)
{
    int i;
    int emitted;
    long checksum = 0;
    make_input(seed);
    emitted = lzw_compress(INPUT_LEN);
    for (i = 0; i < emitted; i++) checksum = checksum * 17 + out_codes[i];
    return (int)((checksum + emitted * 100003) & 0x7fffffff);
}
"""

LI_SOURCE = """
#define ARENA 512

int car_field[ARENA];
int cdr_field[ARENA];
int marks[ARENA];
int free_ptr = 0;

int cons(int car_value, int cdr_index)
{
    int cell = free_ptr;
    free_ptr++;
    car_field[cell] = car_value;
    cdr_field[cell] = cdr_index;
    return cell;
}

int build_list(int n, int seed0)
{
    int i;
    int head = -1;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < n; i++) {
        seed = seed * 69069 + 1;
        head = cons((int)((seed >> 16) & 255), head);
    }
    return head;
}

int list_reverse(int head)
{
    int prev = -1;
    while (head != -1) {
        int next = cdr_field[head];
        cdr_field[head] = prev;
        prev = head;
        head = next;
    }
    return prev;
}

int list_sum(int head)
{
    int total = 0;
    while (head != -1) {
        total += car_field[head];
        head = cdr_field[head];
    }
    return total;
}

int mark_from(int head)
{
    int count = 0;
    while (head != -1 && !marks[head]) {
        marks[head] = 1;
        count++;
        head = cdr_field[head];
    }
    return count;
}

int li_run(int seed)
{
    int i;
    int a;
    int b;
    int live;
    long checksum = 0;
    free_ptr = 0;
    for (i = 0; i < ARENA; i++) marks[i] = 0;
    a = build_list(150, seed);
    b = build_list(200, seed * 3 + 1);
    a = list_reverse(a);
    checksum += list_sum(a);
    checksum += list_sum(b) * 3;
    live = mark_from(a) + mark_from(b);
    checksum += live * 7;
    return (int)(checksum & 0x7fffffff);
}
"""

IJPEG_SOURCE = """
#define PIXELS 256

unsigned char red[PIXELS];
unsigned char green[PIXELS];
unsigned char blue[PIXELS];
unsigned char luma[PIXELS];
unsigned char cb_half[128];
unsigned char cr_half[128];

int make_rgb(int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < PIXELS; i++) {
        seed = seed * 1103515245 + 12345;
        red[i] = (unsigned char)((seed >> 16) & 255);
        seed = seed * 1103515245 + 12345;
        green[i] = (unsigned char)((seed >> 16) & 255);
        seed = seed * 1103515245 + 12345;
        blue[i] = (unsigned char)((seed >> 16) & 255);
    }
    return PIXELS;
}

int color_convert(void)
{
    int i;
    for (i = 0; i < PIXELS; i++) {
        int r = red[i];
        int g = green[i];
        int b = blue[i];
        int y = (19595 * r + 38470 * g + 7471 * b) >> 16;
        luma[i] = (unsigned char)y;
    }
    return PIXELS;
}

int chroma_downsample(void)
{
    int i;
    for (i = 0; i < PIXELS / 2; i++) {
        int r = (red[2*i] + red[2*i+1]) >> 1;
        int g = (green[2*i] + green[2*i+1]) >> 1;
        int b = (blue[2*i] + blue[2*i+1]) >> 1;
        int cb = ((-11059 * r - 21709 * g + 32768 * b) >> 16) + 128;
        int cr = ((32768 * r - 27439 * g - 5329 * b) >> 16) + 128;
        if (cb < 0) cb = 0;
        if (cb > 255) cb = 255;
        if (cr < 0) cr = 0;
        if (cr > 255) cr = 255;
        cb_half[i] = (unsigned char)cb;
        cr_half[i] = (unsigned char)cr;
    }
    return PIXELS / 2;
}

int ijpeg_run(int seed)
{
    int i;
    long checksum = 0;
    make_rgb(seed);
    color_convert();
    chroma_downsample();
    for (i = 0; i < PIXELS; i++) checksum = checksum * 3 + luma[i];
    for (i = 0; i < PIXELS / 2; i++) checksum += cb_half[i] ^ cr_half[i];
    return (int)(checksum & 0x7fffffff);
}
"""

PERL_SOURCE = """
#define TBL 512
#define NKEYS 160

unsigned char keybuf[1280];
int key_start[NKEYS];
int key_len[NKEYS];
unsigned table_hash[TBL];
int table_value[TBL];
int table_used[TBL];

int make_keys(int seed0)
{
    int i;
    int pos = 0;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < NKEYS; i++) {
        int len = 3 + (int)((seed >> 9) % 6);
        int j;
        key_start[i] = pos;
        key_len[i] = len;
        for (j = 0; j < len; j++) {
            seed = seed * 1103515245 + 12345;
            keybuf[pos] = (unsigned char)('a' + ((seed >> 16) % 16));
            pos++;
        }
        seed = seed * 69069 + 1;
    }
    return pos;
}

unsigned hash_key(int key)
{
    int i;
    unsigned h = 0;
    int start = key_start[key];
    int len = key_len[key];
    for (i = 0; i < len; i++) {
        h = h * 33 + keybuf[start + i];
    }
    return h;
}

int table_store(int key, int value)
{
    unsigned h = hash_key(key);
    int slot = (int)(h & (TBL - 1));
    int probes = 0;
    while (table_used[slot] && table_hash[slot] != h) {
        slot = (slot + 1) & (TBL - 1);
        probes++;
    }
    table_used[slot] = 1;
    table_hash[slot] = h;
    table_value[slot] += value;
    return probes;
}

int table_fetch(int key)
{
    unsigned h = hash_key(key);
    int slot = (int)(h & (TBL - 1));
    while (table_used[slot]) {
        if (table_hash[slot] == h) return table_value[slot];
        slot = (slot + 1) & (TBL - 1);
    }
    return -1;
}

int perl_run(int seed)
{
    int i;
    long checksum = 0;
    make_keys(seed);
    for (i = 0; i < TBL; i++) { table_used[i] = 0; table_value[i] = 0; }
    for (i = 0; i < NKEYS; i++) checksum += table_store(i, i * 5 + 1);
    for (i = 0; i < NKEYS; i++) checksum = checksum * 7 + table_fetch(i);
    return (int)(checksum & 0x7fffffff);
}
"""

VORTEX_SOURCE = """
#define NREC 200
#define IDX 256

int rec_key[NREC];
int rec_payload[NREC];
int rec_next[NREC];
int index_head[IDX];
int rec_count = 0;

int db_insert(int key, int payload)
{
    int bucket = (key * 31) & (IDX - 1);
    int rec = rec_count;
    rec_count++;
    rec_key[rec] = key;
    rec_payload[rec] = payload;
    rec_next[rec] = index_head[bucket];
    index_head[bucket] = rec;
    return rec;
}

int db_lookup(int key)
{
    int bucket = (key * 31) & (IDX - 1);
    int rec = index_head[bucket];
    while (rec != -1) {
        if (rec_key[rec] == key) return rec_payload[rec];
        rec = rec_next[rec];
    }
    return -1;
}

int db_range_sum(int lo, int hi)
{
    int i;
    int total = 0;
    for (i = 0; i < rec_count; i++) {
        if (rec_key[i] >= lo && rec_key[i] < hi) total += rec_payload[i];
    }
    return total;
}

int vortex_run(int seed)
{
    int i;
    long checksum = 0;
    unsigned rng = (unsigned)seed;
    rec_count = 0;
    for (i = 0; i < IDX; i++) index_head[i] = -1;
    for (i = 0; i < NREC; i++) {
        rng = rng * 1103515245 + 12345;
        db_insert((int)((rng >> 12) & 1023), i * 3 + 7);
    }
    for (i = 0; i < NREC; i++) {
        rng = rng * 69069 + 1;
        checksum += db_lookup((int)((rng >> 12) & 1023));
    }
    checksum += db_range_sum(100, 600);
    return (int)(checksum & 0x7fffffff);
}
"""

GO = register(Kernel(
    name="go", family="SPECint95 099.go", source=GO_SOURCE,
    entry="go_evaluate", args=(3, 6), golden=61427173,
    description="Board influence propagation + territory count",
))

M88KSIM = register(Kernel(
    name="m88ksim", family="SPECint95 124.m88ksim", source=M88KSIM_SOURCE,
    entry="m88ksim_run", args=(91,), golden=322289846,
    description="Register-machine interpreter (fetch/decode/execute)",
))

COMPRESS = register(Kernel(
    name="compress", family="SPECint95 129.compress", source=COMPRESS_SOURCE,
    entry="compress_run", args=(12,), golden=19331118,
    description="LZW compression with open-addressed dictionary",
))

LI = register(Kernel(
    name="li", family="SPECint95 130.li", source=LI_SOURCE,
    entry="li_run", args=(5,), golden=95365,
    description="Cons-cell arena: build, reverse, sum, mark",
))

IJPEG = register(Kernel(
    name="ijpeg", family="SPECint95 132.ijpeg", source=IJPEG_SOURCE,
    entry="ijpeg_run", args=(21,), golden=43507529,
    description="RGB to YCbCr conversion + 2:1 chroma downsample",
))

PERL = register(Kernel(
    name="perl", family="SPECint95 134.perl", source=PERL_SOURCE,
    entry="perl_run", args=(8,), golden=270373181,
    description="String hashing into an open-addressed symbol table",
))

VORTEX = register(Kernel(
    name="vortex", family="SPECint95 147.vortex", source=VORTEX_SOURCE,
    entry="vortex_run", args=(77,), golden=43110,
    description="In-memory record store: hashed insert, lookup, range scan",
))
