"""MPEG-2-style kernels (MediaBench ``mpeg2_e`` / ``mpeg2_d``).

Encoder: full-search motion estimation — the sum-of-absolute-differences
loop that dominates ``mpeg2enc`` — over a 16×16 macroblock against a
synthesized reference window. Decoder: block reconstruction — inverse
quantization, a separable integer inverse-DCT approximation, saturation,
and motion-compensated addition, the ``mpeg2dec`` hot path.
"""

from repro.programs.base import Kernel, register

ENCODE_SOURCE = """
#define MB 16
#define WINW 48
#define WINH 48

unsigned char cur[256];
unsigned char ref[2304];

int make_frames(int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < WINW * WINH; i++) {
        seed = seed * 1103515245 + 12345;
        ref[i] = (unsigned char)((seed >> 16) & 255);
    }
    for (i = 0; i < MB * MB; i++) {
        int y = i / MB;
        int x = i % MB;
        cur[i] = (unsigned char)(ref[(y + 17) * WINW + (x + 15)] + ((x * y) & 7));
    }
    return 0;
}

int sad_block(unsigned char *block, unsigned char *win, int dx, int dy)
{
#pragma independent block win
    int x;
    int y;
    int total = 0;
    for (y = 0; y < MB; y++) {
        for (x = 0; x < MB; x++) {
            int d = block[y * MB + x] - win[(y + dy) * WINW + (x + dx)];
            if (d < 0) d = -d;
            total += d;
        }
    }
    return total;
}

int motion_estimate(int range)
{
    int dx;
    int dy;
    int best = 1 << 28;
    int best_dx = 0;
    int best_dy = 0;
    for (dy = 0; dy <= range; dy++) {
        for (dx = 0; dx <= range; dx++) {
            int cost = sad_block(cur, ref, dx, dy);
            if (cost < best) {
                best = cost;
                best_dx = dx;
                best_dy = dy;
            }
        }
    }
    return best * 10000 + best_dy * 100 + best_dx;
}

int mpeg2_encode(int seed, int range)
{
    make_frames(seed);
    return motion_estimate(range) & 0x7fffffff;
}
"""

DECODE_SOURCE = """
#define BLK 8

int coeffs[64];
int block_mid[64];
int spatial[64];
unsigned char pred[64];
unsigned char out[64];

const int quant_tbl[64] = {
    8, 16, 19, 22, 26, 27, 29, 34,
    16, 16, 22, 24, 27, 29, 34, 37,
    19, 22, 26, 27, 29, 34, 34, 38,
    22, 22, 26, 27, 29, 34, 37, 40,
    22, 26, 27, 29, 32, 35, 40, 48,
    26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69,
    27, 29, 35, 38, 46, 56, 69, 83
};

int fill_block(int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < 64; i++) {
        seed = seed * 69069 + 1;
        coeffs[i] = ((int)((seed >> 20) & 63) - 32) / ((i / 8) + 1);
        seed = seed * 69069 + 1;
        pred[i] = (unsigned char)((seed >> 18) & 255);
    }
    return 64;
}

int dequantize(void)
{
    int i;
    for (i = 0; i < 64; i++) {
        block_mid[i] = (coeffs[i] * quant_tbl[i]) >> 3;
    }
    return 64;
}

int idct_1d(int *vec, int stride)
{
    int s03 = vec[0] + vec[3 * stride];
    int d03 = vec[0] - vec[3 * stride];
    int s12 = vec[1 * stride] + vec[2 * stride];
    int d12 = vec[1 * stride] - vec[2 * stride];
    int s47 = vec[4 * stride] + vec[7 * stride];
    int d47 = vec[4 * stride] - vec[7 * stride];
    int s56 = vec[5 * stride] + vec[6 * stride];
    int d56 = vec[5 * stride] - vec[6 * stride];
    vec[0] = s03 + s12 + s47 + s56;
    vec[1 * stride] = d03 + d12;
    vec[2 * stride] = d03 - d12 + d47;
    vec[3 * stride] = s03 - s12;
    vec[4 * stride] = d47 + d56;
    vec[5 * stride] = s47 - s56;
    vec[6 * stride] = d47 - d56 + (s03 >> 2);
    vec[7 * stride] = s56 - (d12 >> 1);
    return 0;
}

int idct_block(void)
{
    int i;
    for (i = 0; i < 8; i++) idct_1d(block_mid + i * 8, 1);
    for (i = 0; i < 8; i++) idct_1d(block_mid + i, 8);
    for (i = 0; i < 64; i++) spatial[i] = block_mid[i] >> 3;
    return 64;
}

int reconstruct(void)
{
    int i;
    for (i = 0; i < 64; i++) {
        int v = pred[i] + spatial[i];
        if (v < 0) v = 0;
        if (v > 255) v = 255;
        out[i] = (unsigned char)v;
    }
    return 64;
}

int mpeg2_decode(int seed)
{
    int i;
    long checksum = 0;
    fill_block(seed);
    dequantize();
    idct_block();
    reconstruct();
    for (i = 0; i < 64; i++) checksum = checksum * 33 + out[i];
    return (int)(checksum & 0x7fffffff);
}
"""

MPEG2_E = register(Kernel(
    name="mpeg2_e",
    family="MediaBench mpeg2 (encode)",
    source=ENCODE_SOURCE,
    entry="mpeg2_encode",
    args=(5, 6),
    golden=192720006,
    description="Full-search motion estimation (SAD) over a 16x16 block",
    pragma_count=1,
))

MPEG2_D = register(Kernel(
    name="mpeg2_d",
    family="MediaBench mpeg2 (decode)",
    source=DECODE_SOURCE,
    entry="mpeg2_decode",
    args=(9,),
    golden=1891358142,
    description="Block reconstruction: dequantize, integer IDCT, saturate, add",
))
