"""Kernel registry for the benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError

_REGISTRY: dict[str, "Kernel"] = {}


@dataclass(frozen=True)
class Kernel:
    """One self-checking benchmark program.

    ``golden`` is the expected return value of ``entry(*args)``; it was
    produced by the sequential oracle and, for kernels with a ``reference``
    model, independently confirmed in the test suite.
    """

    name: str
    family: str           # which paper benchmark this stands in for
    source: str
    entry: str
    args: tuple = ()
    golden: object = None
    entry_points_to: dict | None = None
    description: str = ""
    # Metadata for Table 2.
    pragma_count: int = 0

    @property
    def source_lines(self) -> int:
        return sum(1 for line in self.source.splitlines() if line.strip())

    @property
    def function_count(self) -> int:
        # Counted at registration; cheap heuristic kept in sync by tests.
        count = 0
        for line in self.source.splitlines():
            stripped = line.strip()
            if stripped.endswith(")") and "(" in stripped and not (
                stripped.startswith(("if", "for", "while", "do", "return", "}"))
            ) and not stripped.endswith(";"):
                count += 1
        return count

    def check(self, value: object) -> None:
        if self.golden is not None and value != self.golden:
            raise WorkloadError(
                f"{self.name}: self-check failed: got {value}, "
                f"expected {self.golden}"
            )


def register(kernel: Kernel) -> Kernel:
    if kernel.name in _REGISTRY:
        raise ValueError(f"duplicate kernel {kernel.name}")
    _REGISTRY[kernel.name] = kernel
    return kernel


def all_kernels() -> list[Kernel]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_kernel(name: str) -> Kernel:
    if name not in _REGISTRY:
        raise KeyError(f"unknown kernel {name!r}; have {sorted(_REGISTRY)}")
    return _REGISTRY[name]
