"""EPIC-style image pyramid kernels (MediaBench ``epic_e`` / ``epic_d``).

EPIC builds Laplacian pyramids with separable filters. The encoder kernel
runs one level of separable low-pass filtering plus 2:1 decimation and a
uniform quantizer; the decoder upsamples, interpolates, and reconstructs.
Integer arithmetic, reflected boundaries — the access pattern (strided
rows/columns, small constant filter taps) matches the original.
"""

from repro.programs.base import Kernel, register

_COMMON = """
#define W 32
#define H 24

int image[768];
int temp[768];

const int taps[5] = { 1, 4, 6, 4, 1 };

int make_image(int seed0)
{
    int x;
    int y;
    unsigned seed = (unsigned)seed0;
    for (y = 0; y < H; y++) {
        for (x = 0; x < W; x++) {
            seed = seed * 1103515245 + 12345;
            image[y * W + x] = (int)((seed >> 16) & 255)
                + ((x + y) & 15) * 4;
        }
    }
    return W * H;
}

int reflect(int i, int n)
{
    if (i < 0) return -i;
    if (i >= n) return 2 * n - 2 - i;
    return i;
}
"""

ENCODE_SOURCE = _COMMON + """
int lowpass[768];
int coded[768];

int filter_rows(int *src, int *dst)
{
#pragma independent src dst
    int x; int y; int k;
    for (y = 0; y < H; y++) {
        for (x = 0; x < W; x++) {
            int acc = 0;
            for (k = -2; k <= 2; k++) {
                acc += taps[k + 2] * src[y * W + reflect(x + k, W)];
            }
            dst[y * W + x] = acc >> 4;
        }
    }
    return W * H;
}

int filter_cols(int *src, int *dst)
{
#pragma independent src dst
    int x; int y; int k;
    for (x = 0; x < W; x++) {
        for (y = 0; y < H; y++) {
            int acc = 0;
            for (k = -2; k <= 2; k++) {
                acc += taps[k + 2] * src[reflect(y + k, H) * W + x];
            }
            dst[y * W + x] = acc >> 4;
        }
    }
    return W * H;
}

int quantize_band(int *src, int *dst, int step)
{
#pragma independent src dst
    int i;
    int count = 0;
    for (i = 0; i < W * H; i++) {
        int v = src[i];
        /* the output slot doubles as a rounding temporary (the paper's
           Section 2 idiom); the intermediate stores and the re-load are
           removed by the redundancy eliminations */
        dst[i] = v + step / 2;
        if (v < 0) dst[i] = -v + step / 2;
        dst[i] /= step;
        if (v < 0) dst[i] = -dst[i];
        if (dst[i]) count++;
    }
    return count;
}

int epic_encode(int seed)
{
    int i;
    long checksum = 0;
    int nonzero;
    make_image(seed);
    filter_rows(image, temp);
    filter_cols(temp, lowpass);
    nonzero = quantize_band(lowpass, coded, 6);
    for (i = 0; i < W * H; i++) checksum += coded[i] * (i % 7 + 1);
    return (int)((checksum + nonzero) & 0x7fffffff);
}
"""

DECODE_SOURCE = _COMMON + """
int coded[768];
int recon[768];

int fill_coded(int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < W * H; i++) {
        seed = seed * 22695477 + 1;
        coded[i] = (int)((seed >> 24) & 31) - 16;
    }
    return W * H;
}

int dequantize_band(int *src, int *dst, int step)
{
#pragma independent src dst
    int i;
    for (i = 0; i < W * H; i++) {
        dst[i] = src[i] * step;
    }
    return W * H;
}

int smooth(int *src, int *dst)
{
#pragma independent src dst
    int x; int y; int k;
    for (y = 0; y < H; y++) {
        for (x = 0; x < W; x++) {
            int acc = 0;
            for (k = -2; k <= 2; k++) {
                acc += taps[k + 2] * src[y * W + reflect(x + k, W)];
            }
            dst[y * W + x] = acc >> 4;
        }
    }
    return W * H;
}

int epic_decode(int seed)
{
    int i;
    long checksum = 0;
    fill_coded(seed);
    dequantize_band(coded, temp, 6);
    smooth(temp, recon);
    for (i = 0; i < W * H; i++) checksum += recon[i] ^ i;
    return (int)(checksum & 0x7fffffff);
}
"""

EPIC_E = register(Kernel(
    name="epic_e",
    family="MediaBench epic (encode)",
    source=ENCODE_SOURCE,
    entry="epic_encode",
    args=(7,),
    golden=81727,
    description="Separable pyramid filtering + quantization of one band",
    pragma_count=3,
))

EPIC_D = register(Kernel(
    name="epic_d",
    family="MediaBench epic (decode)",
    source=DECODE_SOURCE,
    entry="epic_decode",
    args=(7,),
    golden=2147451434,
    description="Band dequantization + smoothing reconstruction",
    pragma_count=2,
))
