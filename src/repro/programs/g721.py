"""G.721-style ADPCM kernels (MediaBench ``g721_e`` / ``g721_d``).

A fixed-point adaptive predictor in the spirit of G.721: a two-pole,
six-zero filter whose coefficients adapt by sign-sign LMS, plus a stepsize
state machine. Not bit-exact G.721 (the spec's tables are long), but the
same computation pattern: serial state recurrences through small arrays —
the loop-carried-dependence-heavy profile that makes ``g721`` hard to
pipeline in the paper's data too.
"""

from repro.programs.base import Kernel, register

_COMMON = """
short src[800];
int dq_hist[6];
int b_coef[6];
int a_coef[2];
int sr_hist[2];

int synth(short *buffer, int n)
{
    int i;
    unsigned seed = 777;
    for (i = 0; i < n; i++) {
        seed = seed * 1664525 + 1013904223;
        buffer[i] = (short)(((seed >> 18) & 2047) - 1024);
    }
    return n;
}

int predict(void)
{
    int i;
    long acc = 0;
    for (i = 0; i < 6; i++) {
        acc += (long)b_coef[i] * dq_hist[i];
    }
    acc += (long)a_coef[0] * sr_hist[0];
    acc += (long)a_coef[1] * sr_hist[1];
    return (int)(acc >> 14);
}

int quantize(int diff, int step)
{
    int sign = 0;
    int code;
    if (diff < 0) { sign = 8; diff = -diff; }
    code = 0;
    if (diff >= step) { code = 4; diff -= step; }
    if (diff >= (step >> 1)) { code |= 2; diff -= step >> 1; }
    if (diff >= (step >> 2)) { code |= 1; }
    return code | sign;
}

int dequantize(int code, int step)
{
    int dq = step >> 3;
    if (code & 4) dq += step;
    if (code & 2) dq += step >> 1;
    if (code & 1) dq += step >> 2;
    if (code & 8) dq = -dq;
    return dq;
}

int update_state(int code, int dq, int sr)
{
    int i;
    for (i = 5; i > 0; i--) {
        dq_hist[i] = dq_hist[i-1];
        if ((dq_hist[i] >= 0) == (dq >= 0)) b_coef[i] += 8;
        else b_coef[i] -= 8;
        if (b_coef[i] > 2048) b_coef[i] = 2048;
        if (b_coef[i] < -2048) b_coef[i] = -2048;
    }
    dq_hist[0] = dq;
    sr_hist[1] = sr_hist[0];
    sr_hist[0] = sr;
    if ((sr_hist[0] >= 0) == (sr_hist[1] >= 0)) a_coef[0] += 16;
    else a_coef[0] -= 16;
    if (a_coef[0] > 8192) a_coef[0] = 8192;
    if (a_coef[0] < -8192) a_coef[0] = -8192;
    a_coef[1] = -(a_coef[0] >> 2);
    return code;
}

int step_adapt(int step, int code)
{
    int magnitude = code & 7;
    if (magnitude >= 4) step += step >> 3;
    else if (magnitude <= 1) step -= step >> 4;
    if (step < 16) step = 16;
    if (step > 16384) step = 16384;
    return step;
}
"""

ENCODE_SOURCE = _COMMON + """
char codes[800];

int g721_encode(int n)
{
    int i;
    int step = 64;
    unsigned checksum = 0;
    synth(src, n);
    for (i = 0; i < n; i++) {
        int se = predict();
        int diff = src[i] - se;
        int code = quantize(diff, step);
        int dq = dequantize(code, step);
        update_state(code, dq, se + dq);
        step = step_adapt(step, code);
        codes[i] = (char)code;
        checksum = checksum * 17 + (unsigned)(code & 0xf);
    }
    return (int)(checksum & 0x7fffffff);
}
"""

DECODE_SOURCE = _COMMON + """
char codes[800];
short out[800];

int g721_make_codes(int n)
{
    int i;
    unsigned seed = 31337;
    for (i = 0; i < n; i++) {
        seed = seed * 69069 + 1;
        codes[i] = (char)((seed >> 13) & 0xf);
    }
    return n;
}

int g721_decode(int n)
{
    int i;
    int step = 64;
    long checksum = 0;
    g721_make_codes(n);
    for (i = 0; i < n; i++) {
        int code = codes[i] & 0xf;
        int se = predict();
        int dq = dequantize(code, step);
        int sr = se + dq;
        update_state(code, dq, sr);
        step = step_adapt(step, code);
        if (sr > 32767) sr = 32767;
        if (sr < -32768) sr = -32768;
        out[i] = (short)sr;
        checksum += sr ^ i;
    }
    return (int)(checksum & 0x7fffffff);
}
"""

SAMPLES = 400

G721_E = register(Kernel(
    name="g721_e",
    family="MediaBench g721 (encode)",
    source=ENCODE_SOURCE,
    entry="g721_encode",
    args=(SAMPLES,),
    golden=1502813461,  # pinned by tests via the sequential oracle
    description="G.721-style adaptive-predictor encoder",
))

G721_D = register(Kernel(
    name="g721_d",
    family="MediaBench g721 (decode)",
    source=DECODE_SOURCE,
    entry="g721_decode",
    args=(SAMPLES,),
    golden=329605,
    description="G.721-style adaptive-predictor decoder",
))
