"""JPEG-style kernels (MediaBench ``jpeg_e`` / ``jpeg_d``).

Encoder: the ``cjpeg`` hot path — level shift, separable integer forward
DCT (the classic add/sub butterfly skeleton), and quantization with the
Annex-K luminance table. Decoder: dequantization, inverse transform, and
range-limited level unshift, as in ``djpeg``.
"""

from repro.programs.base import Kernel, register

_COMMON = """
const int std_luminance[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99
};

int workspace[64];

int fill_pixels(unsigned char *dst, int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < 64; i++) {
        seed = seed * 1103515245 + 12345;
        dst[i] = (unsigned char)(128 + (((i % 8) - 4) * 20)
                                 + (int)((seed >> 20) & 31));
    }
    return 64;
}

int dct_1d(int *vec, int stride)
{
    int t0 = vec[0] + vec[7 * stride];
    int t7 = vec[0] - vec[7 * stride];
    int t1 = vec[1 * stride] + vec[6 * stride];
    int t6 = vec[1 * stride] - vec[6 * stride];
    int t2 = vec[2 * stride] + vec[5 * stride];
    int t5 = vec[2 * stride] - vec[5 * stride];
    int t3 = vec[3 * stride] + vec[4 * stride];
    int t4 = vec[3 * stride] - vec[4 * stride];
    int u0 = t0 + t3;
    int u3 = t0 - t3;
    int u1 = t1 + t2;
    int u2 = t1 - t2;
    vec[0] = u0 + u1;
    vec[4 * stride] = u0 - u1;
    vec[2 * stride] = u2 + (u3 >> 1);
    vec[6 * stride] = u3 - (u2 >> 1);
    vec[1 * stride] = t4 + (t7 >> 1) + t5;
    vec[3 * stride] = t7 - (t4 >> 1) - t6;
    vec[5 * stride] = t5 + (t6 >> 1) - (t4 >> 2);
    vec[7 * stride] = t6 - (t5 >> 1) + (t7 >> 2);
    return 0;
}
"""

ENCODE_SOURCE = _COMMON + """
unsigned char pixels[64];
int quantized[64];

int forward_dct(void)
{
    int i;
    for (i = 0; i < 64; i++) workspace[i] = pixels[i] - 128;
    for (i = 0; i < 8; i++) dct_1d(workspace + i * 8, 1);
    for (i = 0; i < 8; i++) dct_1d(workspace + i, 8);
    return 64;
}

int quantize_block(void)
{
    int i;
    int nonzero = 0;
    for (i = 0; i < 64; i++) {
        int q = std_luminance[i];
        int v = workspace[i];
        /* the output slot doubles as a rounding temporary — the idiom of
           the paper's Section 2 example; the compiler removes the
           intermediate stores and the re-load entirely */
        quantized[i] = v + q / 2;
        if (v < 0) quantized[i] = -v + q / 2;
        quantized[i] /= q;
        if (v < 0) quantized[i] = -quantized[i];
        if (quantized[i]) nonzero++;
    }
    return nonzero;
}

int jpeg_encode(int seed, int blocks)
{
    int b;
    int i;
    long checksum = 0;
    for (b = 0; b < blocks; b++) {
        fill_pixels(pixels, seed + b * 97);
        forward_dct();
        checksum += quantize_block();
        for (i = 0; i < 64; i++) checksum = checksum * 5 + quantized[i];
    }
    return (int)(checksum & 0x7fffffff);
}
"""

DECODE_SOURCE = _COMMON + """
int coeffs[64];
unsigned char output[64];

int fill_coeffs(int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < 64; i++) {
        seed = seed * 69069 + 1;
        if (i < 10 || (seed & 7) == 0)
            coeffs[i] = ((int)((seed >> 22) & 31) - 16) / (i / 8 + 1);
        else
            coeffs[i] = 0;
    }
    return 64;
}

int inverse_dct(void)
{
    int i;
    for (i = 0; i < 64; i++)
        workspace[i] = coeffs[i] * std_luminance[i];
    for (i = 0; i < 8; i++) dct_1d(workspace + i * 8, 1);
    for (i = 0; i < 8; i++) dct_1d(workspace + i, 8);
    return 64;
}

int range_limit(void)
{
    int i;
    for (i = 0; i < 64; i++) {
        int v = (workspace[i] >> 6) + 128;
        if (v < 0) v = 0;
        if (v > 255) v = 255;
        output[i] = (unsigned char)v;
    }
    return 64;
}

int jpeg_decode(int seed, int blocks)
{
    int b;
    int i;
    long checksum = 0;
    for (b = 0; b < blocks; b++) {
        fill_coeffs(seed + b * 131);
        inverse_dct();
        range_limit();
        for (i = 0; i < 64; i++) checksum = checksum * 7 + output[i];
    }
    return (int)(checksum & 0x7fffffff);
}
"""

JPEG_E = register(Kernel(
    name="jpeg_e",
    family="MediaBench jpeg (cjpeg)",
    source=ENCODE_SOURCE,
    entry="jpeg_encode",
    args=(3, 6),
    golden=490134152,
    description="Forward integer DCT + quantization over 8x8 blocks",
))

JPEG_D = register(Kernel(
    name="jpeg_d",
    family="MediaBench jpeg (djpeg)",
    source=DECODE_SOURCE,
    entry="jpeg_decode",
    args=(3, 6),
    golden=1531862990,
    description="Dequantize + inverse transform + range limit over blocks",
))
