"""ADPCM encode/decode kernels (MediaBench ``adpcm_e`` / ``adpcm_d``).

A faithful IMA ADPCM codec: the same step-size/index tables and update
rules as the classic Intel/DVI reference code the MediaBench benchmark
wraps. The input waveform is synthesized on-chip by a deterministic
triangle-plus-LCG generator, so the memory behaviour (sequential reads of
PCM, sequential writes of nibbles, const-table lookups) matches the
original's.
"""

from repro.programs.base import Kernel, register

_TABLES = """
const int indexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8,
    -1, -1, -1, -1, 2, 4, 6, 8
};

const int stepsizeTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
};
"""

_GENERATOR = """
int synth_input(short *pcm, int n)
{
    int i;
    unsigned seed = 12345;
    int wave = 0;
    int dir = 1;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        wave += dir * 400;
        if (wave > 14000) dir = -1;
        if (wave < -14000) dir = 1;
        pcm[i] = (short)(wave + (int)((seed >> 16) & 511) - 256);
    }
    return n;
}
"""

ENCODER_SOURCE = _TABLES + _GENERATOR + """
short pcm_in[1024];
char code_out[512];

int adpcm_coder(short *indata, char *outdata, int len)
{
#pragma independent indata outdata
    int val;
    int sign;
    int delta;
    int diff;
    int step;
    int valpred = 0;
    int vpdiff;
    int index = 0;
    int outputbuffer = 0;
    int bufferstep = 1;
    int i;
    int bytes = 0;

    for (i = 0; i < len; i++) {
        val = indata[i];
        step = stepsizeTable[index];

        diff = val - valpred;
        sign = (diff < 0) ? 8 : 0;
        if (sign) diff = -diff;

        delta = 0;
        vpdiff = step >> 3;
        if (diff >= step) {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 1;
            vpdiff += step;
        }

        if (sign) valpred -= vpdiff;
        else valpred += vpdiff;
        if (valpred > 32767) valpred = 32767;
        else if (valpred < -32768) valpred = -32768;

        delta |= sign;
        index += indexTable[delta];
        if (index < 0) index = 0;
        if (index > 88) index = 88;

        if (bufferstep) {
            outputbuffer = (delta << 4) & 0xf0;
        } else {
            outdata[bytes] = (char)((delta & 0x0f) | outputbuffer);
            bytes++;
        }
        bufferstep = !bufferstep;
    }
    if (!bufferstep) {
        outdata[bytes] = (char)outputbuffer;
        bytes++;
    }
    return bytes;
}

int adpcm_encode_main(int samples)
{
    int i;
    int bytes;
    unsigned checksum = 0;
    synth_input(pcm_in, samples);
    bytes = adpcm_coder(pcm_in, code_out, samples);
    for (i = 0; i < bytes; i++) {
        checksum = checksum * 31 + (unsigned char)code_out[i];
    }
    return (int)(checksum & 0x7fffffff);
}
"""

DECODER_SOURCE = _TABLES + _GENERATOR + """
short pcm_in[1024];
char code_mid[512];
short pcm_out[1024];

int adpcm_decoder(char *indata, short *outdata, int len)
{
#pragma independent indata outdata
    int sign;
    int delta;
    int step;
    int valpred = 0;
    int vpdiff;
    int index = 0;
    int inputbuffer = 0;
    int bufferstep = 0;
    int i;

    for (i = 0; i < len; i++) {
        if (bufferstep) {
            delta = inputbuffer & 0xf;
        } else {
            inputbuffer = (unsigned char)indata[i >> 1];
            delta = (inputbuffer >> 4) & 0xf;
        }
        bufferstep = !bufferstep;

        step = stepsizeTable[index];
        index += indexTable[delta];
        if (index < 0) index = 0;
        if (index > 88) index = 88;

        sign = delta & 8;
        delta = delta & 7;

        vpdiff = step >> 3;
        if (delta & 4) vpdiff += step;
        if (delta & 2) vpdiff += step >> 1;
        if (delta & 1) vpdiff += step >> 2;

        if (sign) valpred -= vpdiff;
        else valpred += vpdiff;
        if (valpred > 32767) valpred = 32767;
        else if (valpred < -32768) valpred = -32768;

        outdata[i] = (short)valpred;
    }
    return len;
}

int encode_for_decode(short *indata, char *outdata, int len)
{
    int val; int sign; int delta; int diff; int step;
    int valpred = 0; int vpdiff; int index = 0;
    int outputbuffer = 0; int bufferstep = 1;
    int i; int bytes = 0;
    for (i = 0; i < len; i++) {
        val = indata[i];
        step = stepsizeTable[index];
        diff = val - valpred;
        sign = (diff < 0) ? 8 : 0;
        if (sign) diff = -diff;
        delta = 0;
        vpdiff = step >> 3;
        if (diff >= step) { delta = 4; diff -= step; vpdiff += step; }
        step >>= 1;
        if (diff >= step) { delta |= 2; diff -= step; vpdiff += step; }
        step >>= 1;
        if (diff >= step) { delta |= 1; vpdiff += step; }
        if (sign) valpred -= vpdiff; else valpred += vpdiff;
        if (valpred > 32767) valpred = 32767;
        else if (valpred < -32768) valpred = -32768;
        delta |= sign;
        index += indexTable[delta];
        if (index < 0) index = 0;
        if (index > 88) index = 88;
        if (bufferstep) {
            outputbuffer = (delta << 4) & 0xf0;
        } else {
            outdata[bytes] = (char)((delta & 0x0f) | outputbuffer);
            bytes++;
        }
        bufferstep = !bufferstep;
    }
    if (!bufferstep) { outdata[bytes] = (char)outputbuffer; bytes++; }
    return bytes;
}

int adpcm_decode_main(int samples)
{
    int i;
    long checksum = 0;
    synth_input(pcm_in, samples);
    encode_for_decode(pcm_in, code_mid, samples);
    adpcm_decoder(code_mid, pcm_out, samples);
    for (i = 0; i < samples; i++) {
        checksum += pcm_out[i] ^ (i << 2);
    }
    return (int)(checksum & 0x7fffffff);
}
"""


def reference_encode(samples: int) -> int:
    """Independent Python model of ``adpcm_encode_main``."""
    pcm = _synth_input(samples)
    data, _ = _coder(pcm)
    checksum = 0
    for byte in data:
        checksum = (checksum * 31 + byte) & 0xFFFFFFFF
    return checksum & 0x7FFFFFFF


def reference_decode(samples: int) -> int:
    pcm = _synth_input(samples)
    data, _ = _coder(pcm)
    out = _decoder(data, samples)
    checksum = 0
    for i, sample in enumerate(out):
        checksum += sample ^ (i << 2)
    return checksum & 0x7FFFFFFF


INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]
STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484,
    7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818,
    18500, 20350, 22385, 24623, 27086, 29794, 32767,
]


def _synth_input(n: int) -> list[int]:
    seed = 12345
    wave = 0
    direction = 1
    pcm = []
    for _ in range(n):
        seed = (seed * 1103515245 + 12345) & 0xFFFFFFFF
        wave += direction * 400
        if wave > 14000:
            direction = -1
        if wave < -14000:
            direction = 1
        value = wave + ((seed >> 16) & 511) - 256
        value &= 0xFFFF
        if value >= 0x8000:
            value -= 0x10000
        pcm.append(value)
    return pcm


def _coder(pcm: list[int]) -> tuple[list[int], int]:
    valpred = 0
    index = 0
    outputbuffer = 0
    bufferstep = 1
    data: list[int] = []
    for val in pcm:
        step = STEP_TABLE[index]
        diff = val - valpred
        sign = 8 if diff < 0 else 0
        if sign:
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 1
            vpdiff += step
        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = max(-32768, min(32767, valpred))
        delta |= sign
        index += INDEX_TABLE[delta]
        index = max(0, min(88, index))
        if bufferstep:
            outputbuffer = (delta << 4) & 0xF0
        else:
            data.append((delta & 0x0F) | outputbuffer)
        bufferstep = not bufferstep
    if not bufferstep:
        data.append(outputbuffer)
    return data, valpred


def _decoder(data: list[int], n: int) -> list[int]:
    valpred = 0
    index = 0
    inputbuffer = 0
    bufferstep = 0
    out = []
    for i in range(n):
        if bufferstep:
            delta = inputbuffer & 0xF
        else:
            inputbuffer = data[i >> 1]
            delta = (inputbuffer >> 4) & 0xF
        bufferstep = not bufferstep
        step = STEP_TABLE[index]
        index += INDEX_TABLE[delta]
        index = max(0, min(88, index))
        sign = delta & 8
        delta &= 7
        vpdiff = step >> 3
        if delta & 4:
            vpdiff += step
        if delta & 2:
            vpdiff += step >> 1
        if delta & 1:
            vpdiff += step >> 2
        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = max(-32768, min(32767, valpred))
        out.append(valpred)
    return out


SAMPLES = 600

ADPCM_E = register(Kernel(
    name="adpcm_e",
    family="MediaBench adpcm (encode)",
    source=ENCODER_SOURCE,
    entry="adpcm_encode_main",
    args=(SAMPLES,),
    golden=reference_encode(SAMPLES),
    description="IMA ADPCM encoder over a synthesized waveform",
    pragma_count=1,
))

ADPCM_D = register(Kernel(
    name="adpcm_d",
    family="MediaBench adpcm (decode)",
    source=DECODER_SOURCE,
    entry="adpcm_decode_main",
    args=(SAMPLES,),
    golden=reference_decode(SAMPLES),
    description="IMA ADPCM decoder over an encoded synthesized waveform",
    pragma_count=1,
))
