"""Pegwit-style public-key crypto kernels (``pegwit_e`` / ``pegwit_d``).

Pegwit's run time is dominated by hashing and stream-cipher mixing. The
encode kernel runs a SHA-1-style compression over synthesized message
blocks and XOR-encrypts with the rolling digest; the decode kernel inverts
the stream. Word-oriented rotate/xor/add arithmetic over small state
arrays, exactly the original's profile.
"""

from repro.programs.base import Kernel, register

_COMMON = """
#define BLOCK_WORDS 16

unsigned state[5];
unsigned sched[80];
unsigned message[256];

unsigned rotl(unsigned x, int n)
{
    return (x << n) | (x >> (32 - n));
}

int make_message(int words, int seed0)
{
    int i;
    unsigned seed = (unsigned)seed0;
    for (i = 0; i < words; i++) {
        seed = seed * 1664525 + 1013904223;
        message[i] = seed ^ (seed >> 11);
    }
    return words;
}

int sha_init(void)
{
    state[0] = 0x67452301;
    state[1] = 0xefcdab89;
    state[2] = 0x98badcfe;
    state[3] = 0x10325476;
    state[4] = 0xc3d2e1f0;
    return 5;
}

int sha_compress(unsigned *block)
{
    int t;
    unsigned a = state[0];
    unsigned b = state[1];
    unsigned c = state[2];
    unsigned d = state[3];
    unsigned e = state[4];
    for (t = 0; t < 16; t++) sched[t] = block[t];
    for (t = 16; t < 80; t++)
        sched[t] = rotl(sched[t-3] ^ sched[t-8] ^ sched[t-14] ^ sched[t-16], 1);
    for (t = 0; t < 80; t++) {
        unsigned f;
        unsigned k;
        if (t < 20) { f = (b & c) | ((~b) & d); k = 0x5a827999; }
        else if (t < 40) { f = b ^ c ^ d; k = 0x6ed9eba1; }
        else if (t < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8f1bbcdc; }
        else { f = b ^ c ^ d; k = 0xca62c1d6; }
        f = f + rotl(a, 5) + e + sched[t] + k;
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = f;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    return 5;
}
"""

ENCODE_SOURCE = _COMMON + """
unsigned cipher[256];

int pegwit_encrypt(int words)
{
    int i;
    int w;
    sha_init();
    for (i = 0; i + BLOCK_WORDS <= words; i += BLOCK_WORDS) {
        sha_compress(message + i);
        for (w = 0; w < BLOCK_WORDS; w++) {
            cipher[i + w] = message[i + w] ^ state[w % 5] ^ rotl(state[(w+1) % 5], w % 31);
        }
    }
    return i;
}

int pegwit_encode(int words, int seed)
{
    int i;
    unsigned checksum = 0;
    make_message(words, seed);
    pegwit_encrypt(words);
    for (i = 0; i < words; i++) checksum = checksum * 131 + cipher[i];
    return (int)(checksum & 0x7fffffff);
}
"""

DECODE_SOURCE = _COMMON + """
unsigned cipher[256];
unsigned plain[256];

int pegwit_encrypt2(int words)
{
    int i;
    int w;
    sha_init();
    for (i = 0; i + BLOCK_WORDS <= words; i += BLOCK_WORDS) {
        sha_compress(message + i);
        for (w = 0; w < BLOCK_WORDS; w++) {
            cipher[i + w] = message[i + w] ^ state[w % 5] ^ rotl(state[(w+1) % 5], w % 31);
        }
    }
    return i;
}

int pegwit_decrypt(int words)
{
    int i;
    int w;
    sha_init();
    for (i = 0; i + BLOCK_WORDS <= words; i += BLOCK_WORDS) {
        /* the keystream depends on the plaintext block; recover it */
        for (w = 0; w < BLOCK_WORDS; w++) plain[i + w] = message[i + w];
        sha_compress(plain + i);
        for (w = 0; w < BLOCK_WORDS; w++) {
            plain[i + w] = cipher[i + w] ^ state[w % 5] ^ rotl(state[(w+1) % 5], w % 31);
        }
    }
    return i;
}

int pegwit_decode(int words, int seed)
{
    int i;
    unsigned checksum = 0;
    make_message(words, seed);
    pegwit_encrypt2(words);
    pegwit_decrypt(words);
    for (i = 0; i < words; i++) {
        checksum = checksum * 131 + plain[i];
        if (plain[i] != message[i]) checksum += 999999;
    }
    return (int)(checksum & 0x7fffffff);
}
"""

PEGWIT_E = register(Kernel(
    name="pegwit_e",
    family="MediaBench pegwit (encrypt)",
    source=ENCODE_SOURCE,
    entry="pegwit_encode",
    args=(96, 1234),
    golden=939792766,
    description="SHA-1-style hashing + stream encryption of message blocks",
))

PEGWIT_D = register(Kernel(
    name="pegwit_d",
    family="MediaBench pegwit (decrypt)",
    source=DECODE_SOURCE,
    entry="pegwit_decode",
    args=(96, 1234),
    golden=1898826864,
    description="Stream decryption with digest-keyed keystream + verify",
))
