"""Abstract syntax tree for MiniC.

Nodes are plain mutable classes (not frozen dataclasses) because semantic
analysis annotates them in place: every expression receives a ``type`` and
an ``is_lvalue`` flag, identifiers receive a resolved ``symbol``, and
implicit conversions are materialized as :class:`Cast` nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SourceLocation
from repro.frontend.types import Type

# ---------------------------------------------------------------------------
# Symbols


@dataclass
class Symbol:
    """A declared name: global, local, parameter, or function.

    ``address_taken`` and ``is_written`` are filled in by semantic analysis;
    the lowering stage uses them to decide which locals live in registers
    (the paper's flow-insensitive scalar analysis, §3.3) and the pointer
    analysis uses them to build read/write sets.
    """

    name: str
    type: Type
    kind: str  # "global" | "local" | "param" | "func"
    unique_id: int = -1
    is_const: bool = False
    address_taken: bool = False
    is_written: bool = False
    initializer: Optional["Expr"] = None
    init_values: Optional[list[object]] = None  # flattened array initializer

    def __repr__(self) -> str:
        return f"Symbol({self.name}#{self.unique_id}:{self.type})"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


# ---------------------------------------------------------------------------
# Expressions


class Expr:
    """Base class for expressions; annotated by semantic analysis."""

    def __init__(self, location: SourceLocation | None = None):
        self.location = location
        self.type: Type | None = None
        self.is_lvalue: bool = False


class IntLit(Expr):
    def __init__(self, value: int, location=None):
        super().__init__(location)
        self.value = value

    def __repr__(self) -> str:
        return f"IntLit({self.value})"


class FloatLit(Expr):
    def __init__(self, value: float, location=None):
        super().__init__(location)
        self.value = value

    def __repr__(self) -> str:
        return f"FloatLit({self.value})"


class StringLit(Expr):
    """A string literal; becomes an anonymous const char array."""

    def __init__(self, value: str, location=None):
        super().__init__(location)
        self.value = value
        self.symbol: Symbol | None = None  # assigned by sema

    def __repr__(self) -> str:
        return f"StringLit({self.value!r})"


class Ident(Expr):
    def __init__(self, name: str, location=None):
        super().__init__(location)
        self.name = name
        self.symbol: Symbol | None = None

    def __repr__(self) -> str:
        return f"Ident({self.name})"


class Unary(Expr):
    """Prefix unary operator: one of ``+ - ! ~ * &``."""

    def __init__(self, op: str, operand: Expr, location=None):
        super().__init__(location)
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:
        return f"Unary({self.op}, {self.operand!r})"


class IncDec(Expr):
    """``++``/``--``, prefix or postfix, desugared during lowering."""

    def __init__(self, op: str, operand: Expr, is_prefix: bool, location=None):
        super().__init__(location)
        self.op = op
        self.operand = operand
        self.is_prefix = is_prefix

    def __repr__(self) -> str:
        pos = "pre" if self.is_prefix else "post"
        return f"IncDec({self.op}{pos}, {self.operand!r})"


class Binary(Expr):
    """Binary operator, including ``&&``/``||`` (short-circuit)."""

    def __init__(self, op: str, lhs: Expr, rhs: Expr, location=None):
        super().__init__(location)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def __repr__(self) -> str:
        return f"Binary({self.op}, {self.lhs!r}, {self.rhs!r})"


class Assign(Expr):
    """Assignment; ``op`` is ``=`` or a compound operator like ``+=``."""

    def __init__(self, op: str, target: Expr, value: Expr, location=None):
        super().__init__(location)
        self.op = op
        self.target = target
        self.value = value

    def __repr__(self) -> str:
        return f"Assign({self.op}, {self.target!r}, {self.value!r})"


class Conditional(Expr):
    """The ternary ``cond ? then : otherwise``."""

    def __init__(self, cond: Expr, then: Expr, otherwise: Expr, location=None):
        super().__init__(location)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise

    def __repr__(self) -> str:
        return f"Conditional({self.cond!r}, {self.then!r}, {self.otherwise!r})"


class Index(Expr):
    """Array subscript ``base[index]``."""

    def __init__(self, base: Expr, index: Expr, location=None):
        super().__init__(location)
        self.base = base
        self.index = index

    def __repr__(self) -> str:
        return f"Index({self.base!r}, {self.index!r})"


class Call(Expr):
    def __init__(self, callee: Expr, args: list[Expr], location=None):
        super().__init__(location)
        self.callee = callee
        self.args = args

    def __repr__(self) -> str:
        return f"Call({self.callee!r}, {self.args!r})"


class Cast(Expr):
    """An explicit or sema-inserted conversion to ``target_type``."""

    def __init__(self, target_type: Type, operand: Expr, location=None,
                 implicit: bool = False):
        super().__init__(location)
        self.target_type = target_type
        self.operand = operand
        self.implicit = implicit

    def __repr__(self) -> str:
        return f"Cast({self.target_type}, {self.operand!r})"


class SizeOf(Expr):
    """``sizeof(type)`` or ``sizeof expr``; folded to a constant by sema."""

    def __init__(self, target: Type | Expr, location=None):
        super().__init__(location)
        self.target = target

    def __repr__(self) -> str:
        return f"SizeOf({self.target!r})"


class Comma(Expr):
    def __init__(self, lhs: Expr, rhs: Expr, location=None):
        super().__init__(location)
        self.lhs = lhs
        self.rhs = rhs

    def __repr__(self) -> str:
        return f"Comma({self.lhs!r}, {self.rhs!r})"


# ---------------------------------------------------------------------------
# Statements


class Stmt:
    def __init__(self, location: SourceLocation | None = None):
        self.location = location


class Block(Stmt):
    def __init__(self, stmts: list[Stmt], location=None):
        super().__init__(location)
        self.stmts = stmts


class ExprStmt(Stmt):
    def __init__(self, expr: Expr, location=None):
        super().__init__(location)
        self.expr = expr


class EmptyStmt(Stmt):
    pass


class DeclStmt(Stmt):
    """A local declaration; one symbol per statement (sema splits lists)."""

    def __init__(self, symbol: Symbol, init: Expr | None, location=None):
        super().__init__(location)
        self.symbol = symbol
        self.init = init


class DeclGroup(Stmt):
    """Several declarations from one source statement (``int a, b;``).

    Unlike a :class:`Block`, a DeclGroup does not open a scope.
    """

    def __init__(self, decls: list[DeclStmt], location=None):
        super().__init__(location)
        self.decls = decls


class If(Stmt):
    def __init__(self, cond: Expr, then: Stmt, otherwise: Stmt | None,
                 location=None):
        super().__init__(location)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Stmt):
    def __init__(self, cond: Expr, body: Stmt, location=None):
        super().__init__(location)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    def __init__(self, body: Stmt, cond: Expr, location=None):
        super().__init__(location)
        self.body = body
        self.cond = cond


class For(Stmt):
    def __init__(self, init: Stmt | None, cond: Expr | None,
                 step: Expr | None, body: Stmt, location=None):
        super().__init__(location)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    def __init__(self, value: Expr | None, location=None):
        super().__init__(location)
        self.value = value


class Break(Stmt):
    pass


class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level


@dataclass
class FuncDef:
    """A function definition with its body and scope-level pragmas."""

    name: str
    symbol: Symbol
    params: list[Symbol]
    body: Block
    location: SourceLocation | None = None
    # Pairs of parameter/pointer symbols declared independent via
    # ``#pragma independent`` inside this function (paper §7.1).
    independent_pairs: list[tuple[Symbol, Symbol]] = field(default_factory=list)
    # Names from pragmas, resolved to symbols by sema.
    pragma_names: list[tuple[str, ...]] = field(default_factory=list)


@dataclass
class Program:
    """A parsed, type-checked MiniC translation unit."""

    functions: list[FuncDef]
    globals: list[Symbol]
    # Prototypes without bodies (callable only by name resolution; calling
    # one at run time is an error since there is nothing to execute).
    extern_functions: list[Symbol] = field(default_factory=list)
    # String literals hoisted into anonymous const arrays.
    string_symbols: list[Symbol] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    def global_symbol(self, name: str) -> Symbol:
        for sym in self.globals:
            if sym.name == name:
                return sym
        raise KeyError(f"no global named {name!r}")
