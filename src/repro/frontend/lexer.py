"""Lexer and micro-preprocessor for MiniC.

The lexer produces a flat list of :class:`Token` objects. A small
preprocessing layer handles the three ``#`` directives the benchmarks use:

- ``#define NAME tokens...`` — object-like macros, expanded non-recursively
  with a depth limit;
- ``#pragma independent p q ...`` — recorded as a :class:`PragmaIndependent`
  marker token consumed by the parser (the paper's §7.1 annotation);
- ``#include ...`` — ignored (MiniC programs are self-contained).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from repro.errors import LexError, SourceLocation

MAX_MACRO_DEPTH = 16


class TokenKind(Enum):
    IDENT = auto()
    INT_LIT = auto()
    FLOAT_LIT = auto()
    CHAR_LIT = auto()
    STRING_LIT = auto()
    KEYWORD = auto()
    PUNCT = auto()
    PRAGMA_INDEPENDENT = auto()
    EOF = auto()


KEYWORDS = frozenset(
    {
        "void", "char", "short", "int", "long", "float", "double",
        "signed", "unsigned", "const", "static", "extern",
        "if", "else", "while", "do", "for", "return", "break", "continue",
        "sizeof", "struct", "enum",
    }
)

# Multi-character punctuators, longest first so maximal munch works.
PUNCTUATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
    "=", "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    location: SourceLocation
    value: object = None
    # For PRAGMA_INDEPENDENT tokens: the identifier names declared independent.
    names: tuple[str, ...] = field(default=())

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"


class Lexer:
    """Tokenizes MiniC source text."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1
        self.macros: dict[str, list[Token]] = {}

    def tokenize(self) -> list[Token]:
        """Lex the whole input, expanding macros, and append an EOF token."""
        raw = list(self._raw_tokens())
        expanded = self._expand(raw, depth=0)
        expanded.append(Token(TokenKind.EOF, "", self._loc()))
        return expanded

    # ------------------------------------------------------------------
    # Raw scanning

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _raw_tokens(self):
        line_has_token = False
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                if ch == "\n":
                    line_has_token = False
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif ch == "#" and not line_has_token:
                directive = self._read_directive()
                if directive is not None:
                    yield directive
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                line_has_token = True
                yield self._read_number()
            elif ch.isalpha() or ch == "_":
                line_has_token = True
                yield self._read_word()
            elif ch == '"':
                line_has_token = True
                yield self._read_string()
            elif ch == "'":
                line_has_token = True
                yield self._read_char()
            else:
                line_has_token = True
                yield self._read_punct()

    def _skip_block_comment(self) -> None:
        start = self._loc()
        self._advance()
        self._advance()
        while self.pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance()
                self._advance()
                return
            self._advance()
        raise LexError("unterminated block comment", start)

    def _read_directive(self) -> Token | None:
        start = self._loc()
        line_start = self.pos
        while self.pos < len(self.source) and self._peek() != "\n":
            self._advance()
        text = self.source[line_start:self.pos].strip()
        parts = text.split()
        if len(parts) >= 2 and parts[0] == "#pragma" and parts[1] == "independent":
            names = tuple(parts[2:])
            if len(names) < 2:
                raise LexError("#pragma independent needs at least two names", start)
            return Token(TokenKind.PRAGMA_INDEPENDENT, text, start, names=names)
        if parts and parts[0] == "#define":
            self._record_macro(text, start)
            return None
        if parts and parts[0] in ("#include", "#pragma"):
            return None
        raise LexError(f"unsupported preprocessor directive: {text}", start)

    def _record_macro(self, text: str, start: SourceLocation) -> None:
        body_text = text[len("#define"):].strip()
        if not body_text:
            raise LexError("#define needs a name", start)
        pieces = body_text.split(None, 1)
        name = pieces[0]
        if "(" in name:
            raise LexError("function-like macros are not supported", start)
        replacement = pieces[1] if len(pieces) > 1 else ""
        sub = Lexer(replacement, self.filename)
        self.macros[name] = list(sub._raw_tokens())

    def _read_number(self) -> Token:
        start = self._loc()
        begin = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance()
            self._advance()
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == ".":
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        digits = self.source[begin:self.pos]
        suffix_begin = self.pos
        while self._peek() and self._peek() in "uUlLfF":
            self._advance()
        suffix = self.source[suffix_begin:self.pos].lower()
        text = self.source[begin:self.pos]
        if is_float or "f" in suffix and not digits.startswith("0x"):
            if "u" in suffix:
                raise LexError(f"bad float suffix in {text!r}", start)
            return Token(TokenKind.FLOAT_LIT, text, start, value=float(digits))
        value = int(digits, 0)
        return Token(TokenKind.INT_LIT, text, start, value=(value, suffix))

    def _read_word(self) -> Token:
        start = self._loc()
        begin = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[begin:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, start)

    def _read_string(self) -> Token:
        start = self._loc()
        self._advance()
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string literal", start)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                chars.append(self._escape(start))
            else:
                chars.append(ch)
        text = "".join(chars)
        return Token(TokenKind.STRING_LIT, f'"{text}"', start, value=text)

    def _read_char(self) -> Token:
        start = self._loc()
        self._advance()
        if self.pos >= len(self.source):
            raise LexError("unterminated character literal", start)
        ch = self._advance()
        if ch == "\\":
            ch = self._escape(start)
        if self.pos >= len(self.source) or self._advance() != "'":
            raise LexError("unterminated character literal", start)
        return Token(TokenKind.CHAR_LIT, f"'{ch}'", start, value=ord(ch))

    def _escape(self, start: SourceLocation) -> str:
        if self.pos >= len(self.source):
            raise LexError("unterminated escape sequence", start)
        ch = self._advance()
        table = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
                 "'": "'", '"': '"'}
        if ch in table:
            return table[ch]
        if ch == "x":
            digits = ""
            while self._peek() in "0123456789abcdefABCDEF" and len(digits) < 2:
                digits += self._advance()
            if not digits:
                raise LexError("bad hex escape", start)
            return chr(int(digits, 16))
        raise LexError(f"unknown escape sequence \\{ch}", start)

    def _read_punct(self) -> Token:
        start = self._loc()
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                for _ in punct:
                    self._advance()
                return Token(TokenKind.PUNCT, punct, start)
        raise LexError(f"unexpected character {self._peek()!r}", start)

    # ------------------------------------------------------------------
    # Macro expansion

    def _expand(self, tokens: list[Token], depth: int) -> list[Token]:
        if depth > MAX_MACRO_DEPTH:
            raise LexError("macro expansion too deep (recursive #define?)")
        result: list[Token] = []
        for token in tokens:
            if token.kind is TokenKind.IDENT and token.text in self.macros:
                body = self.macros[token.text]
                relocated = [
                    Token(t.kind, t.text, token.location, t.value, t.names)
                    for t in body
                ]
                result.extend(self._expand(relocated, depth + 1))
            else:
                result.append(token)
        return result


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list ending in EOF."""
    return Lexer(source, filename).tokenize()
