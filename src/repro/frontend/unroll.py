"""Loop unrolling (one of the scalar optimizations CASH runs, §7.1).

Full unrolling of counted ``for`` loops whose bounds and step are literal
constants. Unrolling feeds the memory optimizations: after it, the loop
counter is re-assigned a literal before each body copy, the Pegasus builder
propagates those constants into the address expressions, and symbolic
disambiguation (§4.3) plus the redundancy eliminations (§5) act across
what used to be separate iterations.

The transformation is deliberately conservative; a loop unrolls only when:

- init is ``i = C0``, condition ``i < C1`` / ``i <= C1`` / ``i != C1``,
  step ``i++`` / ``i += C2`` / ``i = i + C2`` (all constants literal);
- the body never writes the counter, never takes its address, declares no
  variables (copies would collide), and contains no break/continue/return;
- the trip count is positive and at most ``limit``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend import ast


@dataclass
class UnrollStats:
    unrolled: int = 0
    copies: int = 0


def unroll_program(program: ast.Program, limit: int) -> UnrollStats:
    """Fully unroll eligible constant-trip loops, in place (inside-out)."""
    stats = UnrollStats()
    if limit < 2:
        return stats
    for func in program.functions:
        _transform(func.body, limit, stats)
    return stats


def _transform(stmt: ast.Stmt, limit: int, stats: UnrollStats) -> ast.Stmt:
    """Rewrite ``stmt`` bottom-up, replacing unrollable loops by blocks."""
    if isinstance(stmt, ast.Block):
        stmt.stmts = [_transform(s, limit, stats) for s in stmt.stmts]
        return stmt
    if isinstance(stmt, ast.If):
        stmt.then = _transform(stmt.then, limit, stats)
        if stmt.otherwise is not None:
            stmt.otherwise = _transform(stmt.otherwise, limit, stats)
        return stmt
    if isinstance(stmt, (ast.While, ast.DoWhile)):
        stmt.body = _transform(stmt.body, limit, stats)
        return stmt
    if isinstance(stmt, ast.For):
        stmt.body = _transform(stmt.body, limit, stats)
        replacement = _try_unroll(stmt, limit, stats)
        return replacement if replacement is not None else stmt
    return stmt


def _try_unroll(stmt: ast.Stmt, limit: int,
                stats: UnrollStats) -> ast.Stmt | None:
    if not isinstance(stmt, ast.For):
        return None
    plan = _analyze(stmt)
    if plan is None:
        return None
    counter, values = plan
    if not 2 <= len(values) <= limit:
        return None
    stmts: list[ast.Stmt] = []
    for value in values:
        stmts.append(_assign_counter(counter, value, stmt))
        stmts.append(stmt.body)
    # Leave the counter with its exit value, as the loop would have.
    stmts.append(_assign_counter(counter, values[-1] + _step_of(stmt), stmt))
    stats.unrolled += 1
    stats.copies += len(values)
    return ast.Block(stmts, stmt.location)


def _assign_counter(counter: ast.Symbol, value: int, stmt: ast.For) -> ast.Stmt:
    target = ast.Ident(counter.name, stmt.location)
    target.symbol = counter
    target.type = counter.type
    target.is_lvalue = True
    literal = ast.IntLit(value, stmt.location)
    literal.type = counter.type
    assign = ast.Assign("=", target, literal, stmt.location)
    assign.type = counter.type
    return ast.ExprStmt(assign, stmt.location)


# ---------------------------------------------------------------------------
# Eligibility analysis


def _analyze(stmt: ast.For):
    counter_init = _counter_init(stmt.init)
    if counter_init is None:
        return None
    counter, start = counter_init
    step = _step(stmt.step, counter)
    if step is None or step == 0:
        return None
    bound = _bound(stmt.cond, counter)
    if bound is None:
        return None
    op, end = bound
    values = _trip_values(start, step, op, end)
    if values is None:
        return None
    if not _body_allows_unrolling(stmt.body, counter):
        return None
    return counter, values


def _counter_init(init: ast.Stmt | None):
    if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assign):
        assign = init.expr
        if assign.op == "=" and isinstance(assign.target, ast.Ident):
            value = _literal(assign.value)
            symbol = assign.target.symbol
            if value is not None and symbol is not None \
                    and symbol.type.is_integer and not symbol.address_taken:
                return symbol, value
    if isinstance(init, ast.DeclStmt):
        value = _literal(init.init)
        symbol = init.symbol
        if value is not None and symbol.type.is_integer \
                and not symbol.address_taken:
            return symbol, value
    return None


def _step(step: ast.Expr | None, counter: ast.Symbol) -> int | None:
    if isinstance(step, ast.IncDec) and _is_counter(step.operand, counter):
        return 1 if step.op == "++" else -1
    if isinstance(step, ast.Assign) and _is_counter(step.target, counter):
        if step.op in ("+=", "-="):
            value = _literal(step.value)
            if value is not None:
                return value if step.op == "+=" else -value
        if step.op == "=" and isinstance(step.value, ast.Binary):
            binary = step.value
            if binary.op == "+" and _is_counter(binary.lhs, counter):
                return _literal(binary.rhs)
    return None


def _bound(cond: ast.Expr | None, counter: ast.Symbol):
    if isinstance(cond, ast.Binary) and _is_counter(cond.lhs, counter):
        end = _literal(cond.rhs)
        if end is not None and cond.op in ("<", "<=", ">", ">=", "!="):
            return cond.op, end
    return None


def _trip_values(start: int, step: int, op: str, end: int) -> list[int] | None:
    values: list[int] = []
    current = start
    for _ in range(1025):  # hard cap against degenerate inputs
        if op == "<" and not current < end:
            return values
        if op == "<=" and not current <= end:
            return values
        if op == ">" and not current > end:
            return values
        if op == ">=" and not current >= end:
            return values
        if op == "!=" and current == end:
            return values
        values.append(current)
        current += step
    return None


def _literal(expr: ast.Expr | None) -> int | None:
    while isinstance(expr, ast.Cast):
        expr = expr.operand
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _literal(expr.operand)
        return -inner if inner is not None else None
    return None


def _is_counter(expr: ast.Expr, counter: ast.Symbol) -> bool:
    while isinstance(expr, ast.Cast):
        expr = expr.operand
    return isinstance(expr, ast.Ident) and expr.symbol is counter


def _step_of(stmt: ast.For) -> int:
    plan_counter = _counter_init(stmt.init)
    assert plan_counter is not None
    return _step(stmt.step, plan_counter[0]) or 0


# ---------------------------------------------------------------------------
# Body restrictions


def _body_allows_unrolling(body: ast.Stmt, counter: ast.Symbol) -> bool:
    checker = _BodyChecker(counter)
    checker.visit_stmt(body)
    return checker.ok


class _BodyChecker:
    def __init__(self, counter: ast.Symbol):
        self.counter = counter
        self.ok = True

    def visit_stmt(self, stmt: ast.Stmt) -> None:
        if not self.ok:
            return
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Return)):
            self.ok = False
        elif isinstance(stmt, ast.DeclStmt):
            # Re-declaring per body copy is fine post-sema: lowering gives
            # each copy its own register, and memory-resident locals refer
            # to the same object, exactly as loop iterations would.
            if stmt.init is not None:
                self.visit_expr(stmt.init)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                if decl.init is not None:
                    self.visit_expr(decl.init)
        elif isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self.visit_stmt(inner)
        elif isinstance(stmt, ast.ExprStmt):
            self.visit_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.visit_expr(stmt.cond)
            self.visit_stmt(stmt.then)
            if stmt.otherwise is not None:
                self.visit_stmt(stmt.otherwise)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self.ok = False  # nested unbounded loops: keep it simple
        elif isinstance(stmt, ast.For):
            self.ok = False  # inner loops are unrolled on their own pass
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:
            self.ok = False

    def visit_expr(self, expr: ast.Expr) -> None:
        if not self.ok:
            return
        if isinstance(expr, ast.Assign):
            if _is_counter(expr.target, self.counter):
                self.ok = False
            self.visit_expr(expr.target)
            self.visit_expr(expr.value)
        elif isinstance(expr, ast.IncDec):
            if _is_counter(expr.operand, self.counter):
                self.ok = False
            self.visit_expr(expr.operand)
        elif isinstance(expr, ast.Unary):
            if expr.op == "&" and _is_counter(expr.operand, self.counter):
                self.ok = False
            self.visit_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            self.visit_expr(expr.lhs)
            self.visit_expr(expr.rhs)
        elif isinstance(expr, ast.Conditional):
            self.visit_expr(expr.cond)
            self.visit_expr(expr.then)
            self.visit_expr(expr.otherwise)
        elif isinstance(expr, ast.Index):
            self.visit_expr(expr.base)
            self.visit_expr(expr.index)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                self.visit_expr(arg)
        elif isinstance(expr, (ast.Cast, ast.Comma)):
            children = ([expr.operand] if isinstance(expr, ast.Cast)
                        else [expr.lhs, expr.rhs])
            for child in children:
                self.visit_expr(child)
        # Literals and identifiers are fine.
