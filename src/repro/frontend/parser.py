"""Recursive-descent parser for MiniC.

The grammar is classic C, restricted to the subset described in
``frontend/__init__``. The parser builds raw AST nodes; name resolution and
type checking happen afterwards in :mod:`repro.frontend.sema`.
"""

from __future__ import annotations

from repro.errors import ParseError, SourceLocation
from repro.frontend import ast
from repro.frontend import types as ty
from repro.frontend.lexer import Token, TokenKind, tokenize

# Binary operator precedence, higher binds tighter. Assignment, conditional
# and comma are handled separately because of their associativity rules.
BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

ASSIGN_OPS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="}
)

TYPE_KEYWORDS = frozenset(
    {"void", "char", "short", "int", "long", "float", "double",
     "signed", "unsigned", "const"}
)


class Parser:
    """Parses a token stream into an un-analyzed :class:`ast.Program`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self.functions: list[ast.FuncDef] = []
        self.globals: list[ast.Symbol] = []
        self.extern_funcs: list[ast.Symbol] = []
        self._pending_pragmas: list[tuple[str, ...]] = []

    # ------------------------------------------------------------------
    # Token stream helpers

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def at(self, text: str) -> bool:
        token = self.peek()
        return token.kind in (TokenKind.PUNCT, TokenKind.KEYWORD) and token.text == text

    def accept(self, text: str) -> Token | None:
        if self.at(text):
            return self.advance()
        return None

    def expect(self, text: str) -> Token:
        if not self.at(text):
            token = self.peek()
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.location)
        return self.advance()

    def _consume_pragmas(self) -> None:
        while self.peek().kind is TokenKind.PRAGMA_INDEPENDENT:
            self._pending_pragmas.append(self.advance().names)

    # ------------------------------------------------------------------
    # Top level

    def parse_program(self) -> ast.Program:
        while True:
            self._consume_pragmas()
            if self.peek().kind is TokenKind.EOF:
                break
            self.parse_top_level()
        return ast.Program(functions=self.functions, globals=self.globals,
                           extern_functions=self.extern_funcs)

    def parse_top_level(self) -> None:
        start = self.peek().location
        storage = self._parse_storage_specifiers()
        base = self.parse_type_base()
        # A lone "struct x;"-style declaration is rejected by parse_type_base,
        # so here we always have declarators.
        first = True
        while True:
            decl_type, name, name_loc = self.parse_declarator(base)
            if first and self.at("("):
                self.parse_function(decl_type, name, name_loc, storage)
                return
            first = False
            self._finish_global(decl_type, name, name_loc, storage)
            if self.accept(","):
                continue
            self.expect(";")
            return

    def _parse_storage_specifiers(self) -> set[str]:
        storage: set[str] = set()
        while self.peek().kind is TokenKind.KEYWORD and self.peek().text in (
            "static", "extern",
        ):
            storage.add(self.advance().text)
        return storage

    def _finish_global(self, decl_type: ty.Type, name: str,
                       loc: SourceLocation, storage: set[str]) -> None:
        init: ast.Expr | None = None
        init_values: list[object] | None = None
        if self.accept("="):
            if self.at("{"):
                init_values = self.parse_array_initializer()
            else:
                init = self.parse_assignment()
        is_const = bool(getattr(decl_type, "const", False))
        if isinstance(decl_type, _ConstWrapper):
            decl_type = decl_type.inner
        symbol = ast.Symbol(name=name, type=decl_type, kind="global",
                            is_const=is_const, initializer=init,
                            init_values=init_values)
        self.globals.append(symbol)

    def parse_array_initializer(self) -> list[object]:
        self.expect("{")
        values: list[object] = []
        if not self.at("}"):
            while True:
                expr = self.parse_assignment()
                values.append(expr)
                if not self.accept(","):
                    break
                if self.at("}"):
                    break
        self.expect("}")
        return values

    def parse_function(self, return_type: ty.Type, name: str,
                       name_loc: SourceLocation, storage: set[str]) -> None:
        if isinstance(return_type, _ConstWrapper):
            return_type = return_type.inner
        self.expect("(")
        params: list[ast.Symbol] = []
        if not self.at(")"):
            if self.at("void") and self.peek(1).text == ")":
                self.advance()
            else:
                while True:
                    base = self.parse_type_base()
                    param_type, pname, ploc = self.parse_declarator(
                        base, allow_abstract=True
                    )
                    if isinstance(param_type, _ConstWrapper):
                        param_type = param_type.inner
                    # Array parameters decay to pointers, as in C.
                    param_type = param_type.decay()
                    params.append(
                        ast.Symbol(name=pname or f"__anon{len(params)}",
                                   type=param_type, kind="param")
                    )
                    if not self.accept(","):
                        break
        self.expect(")")
        func_type = ty.FuncType(return_type, tuple(p.type for p in params))
        symbol = ast.Symbol(name=name, type=func_type, kind="func")
        if self.accept(";"):
            self.extern_funcs.append(symbol)
            return
        pragmas_before = list(self._pending_pragmas)
        self._pending_pragmas.clear()
        body = self.parse_block()
        func = ast.FuncDef(name=name, symbol=symbol, params=params, body=body,
                           location=name_loc)
        func.pragma_names.extend(pragmas_before)
        func.pragma_names.extend(self._collected_body_pragmas)
        self.functions.append(func)

    # ------------------------------------------------------------------
    # Types and declarators

    def at_type(self) -> bool:
        token = self.peek()
        return token.kind is TokenKind.KEYWORD and token.text in TYPE_KEYWORDS

    def parse_type_base(self) -> ty.Type:
        """Parse a type specifier sequence (``const unsigned long`` etc.)."""
        start = self.peek().location
        const = False
        signedness: bool | None = None
        core: str | None = None
        long_count = 0
        while self.at_type():
            word = self.advance().text
            if word == "const":
                const = True
            elif word == "signed":
                signedness = True
            elif word == "unsigned":
                signedness = False
            elif word == "long":
                long_count += 1
                core = core or "int"
            elif word in ("void", "char", "short", "int", "float", "double"):
                if core is not None and not (core == "int" and word == "int"):
                    raise ParseError(f"duplicate type specifier {word!r}", start)
                core = word
        if core is None:
            if signedness is None and long_count == 0:
                raise ParseError("expected a type", self.peek().location)
            core = "int"
        base = self._core_type(core, signedness, long_count, start)
        if const and isinstance(base, ty.IntType):
            # const-ness of scalars matters only for immutable-load analysis;
            # carried on arrays/pointers below, tracked per-symbol for scalars.
            pass
        return _ConstWrapper(base, const) if const else base

    def _core_type(self, core: str, signedness: bool | None, long_count: int,
                   loc: SourceLocation) -> ty.Type:
        if core == "void":
            return ty.VOID
        if core == "float":
            return ty.FLOAT
        if core == "double":
            return ty.DOUBLE
        if core == "char":
            return ty.CHAR if signedness in (None, True) else ty.UCHAR
        if core == "short":
            return ty.SHORT if signedness in (None, True) else ty.USHORT
        if long_count >= 1:
            return ty.LONG if signedness in (None, True) else ty.ULONG
        if core == "int":
            return ty.INT if signedness in (None, True) else ty.UINT
        raise ParseError(f"unsupported type {core!r}", loc)

    def parse_declarator(self, base: ty.Type, allow_abstract: bool = False):
        """Parse ``*``s, a name, and optional ``[N]`` suffixes."""
        const = False
        if isinstance(base, _ConstWrapper):
            const = True
            base = base.inner
        result: ty.Type = base
        while self.accept("*"):
            result = ty.PointerType(result, const=const)
            const = False
            if self.accept("const"):
                pass  # const pointer (not pointee); ignored for analysis
        name: str | None = None
        loc = self.peek().location
        if self.peek().kind is TokenKind.IDENT:
            name = self.advance().text
        elif not allow_abstract:
            raise ParseError(
                f"expected identifier, found {self.peek().text!r}", loc
            )
        while self.accept("["):
            length: int | None = None
            if not self.at("]"):
                size_tok = self.peek()
                if size_tok.kind is not TokenKind.INT_LIT:
                    raise ParseError("array size must be an integer literal",
                                     size_tok.location)
                self.advance()
                length = size_tok.value[0]  # type: ignore[index]
            self.expect("]")
            result = ty.ArrayType(result, length, const=const)
            const = False
        if const and not isinstance(result, (ty.ArrayType, ty.PointerType)):
            # A const scalar: represent via ArrayType/PointerType const flags
            # elsewhere; for plain scalars sema marks the symbol const.
            result = _ConstWrapper(result, True)  # unwrapped by callers
        return result, name, loc

    # ------------------------------------------------------------------
    # Statements

    @property
    def _collected_body_pragmas(self) -> list[tuple[str, ...]]:
        pragmas = list(self._pending_pragmas)
        self._pending_pragmas.clear()
        return pragmas

    def parse_block(self) -> ast.Block:
        start = self.expect("{").location
        stmts: list[ast.Stmt] = []
        while not self.at("}"):
            self._consume_pragmas()
            if self.at("}"):
                break
            if self.peek().kind is TokenKind.EOF:
                raise ParseError("unterminated block", start)
            stmts.append(self.parse_statement())
        self.expect("}")
        return ast.Block(stmts, start)

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if self.at("{"):
            return self.parse_block()
        if self.at(";"):
            self.advance()
            return ast.EmptyStmt(token.location)
        if self.at("if"):
            return self.parse_if()
        if self.at("while"):
            return self.parse_while()
        if self.at("do"):
            return self.parse_do_while()
        if self.at("for"):
            return self.parse_for()
        if self.at("return"):
            self.advance()
            value = None if self.at(";") else self.parse_expression()
            self.expect(";")
            return ast.Return(value, token.location)
        if self.at("break"):
            self.advance()
            self.expect(";")
            return ast.Break(token.location)
        if self.at("continue"):
            self.advance()
            self.expect(";")
            return ast.Continue(token.location)
        if self.at_type() or self.at("static"):
            return self.parse_local_decl()
        expr = self.parse_expression()
        self.expect(";")
        return ast.ExprStmt(expr, token.location)

    def parse_local_decl(self) -> ast.Stmt:
        start = self.peek().location
        self._parse_storage_specifiers()  # 'static' locals treated as locals
        base = self.parse_type_base()
        decls: list[ast.Stmt] = []
        while True:
            decl_type, name, loc = self.parse_declarator(base)
            const = False
            if isinstance(decl_type, _ConstWrapper):
                const = True
                decl_type = decl_type.inner
            init: ast.Expr | None = None
            init_values: list[object] | None = None
            if self.accept("="):
                if self.at("{"):
                    init_values = self.parse_array_initializer()
                else:
                    init = self.parse_assignment()
            symbol = ast.Symbol(name=name, type=decl_type, kind="local",
                                is_const=const, init_values=init_values)
            decls.append(ast.DeclStmt(symbol, init, loc))
            if not self.accept(","):
                break
        self.expect(";")
        if len(decls) == 1:
            return decls[0]
        return ast.DeclGroup(decls, start)

    def parse_if(self) -> ast.Stmt:
        start = self.expect("if").location
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then = self.parse_statement()
        otherwise = self.parse_statement() if self.accept("else") else None
        return ast.If(cond, then, otherwise, start)

    def parse_while(self) -> ast.Stmt:
        start = self.expect("while").location
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return ast.While(cond, body, start)

    def parse_do_while(self) -> ast.Stmt:
        start = self.expect("do").location
        body = self.parse_statement()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(body, cond, start)

    def parse_for(self) -> ast.Stmt:
        start = self.expect("for").location
        self.expect("(")
        init: ast.Stmt | None = None
        if not self.at(";"):
            if self.at_type():
                init = self.parse_local_decl()
            else:
                init = ast.ExprStmt(self.parse_expression(), start)
                self.expect(";")
        else:
            self.advance()
        cond = None if self.at(";") else self.parse_expression()
        self.expect(";")
        step = None if self.at(")") else self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body, start)

    # ------------------------------------------------------------------
    # Expressions

    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.at(","):
            loc = self.advance().location
            rhs = self.parse_assignment()
            expr = ast.Comma(expr, rhs, loc)
        return expr

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_conditional()
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.text in ASSIGN_OPS:
            self.advance()
            rhs = self.parse_assignment()
            return ast.Assign(token.text, lhs, rhs, token.location)
        return lhs

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.at("?"):
            loc = self.advance().location
            then = self.parse_expression()
            self.expect(":")
            otherwise = self.parse_conditional()
            return ast.Conditional(cond, then, otherwise, loc)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind is not TokenKind.PUNCT:
                return lhs
            prec = BINARY_PRECEDENCE.get(token.text)
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.Binary(token.text, lhs, rhs, token.location)

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.PUNCT:
            if token.text in ("+", "-", "!", "~", "*", "&"):
                self.advance()
                operand = self.parse_unary()
                return ast.Unary(token.text, operand, token.location)
            if token.text in ("++", "--"):
                self.advance()
                operand = self.parse_unary()
                return ast.IncDec(token.text, operand, True, token.location)
        if self.at("sizeof"):
            self.advance()
            if self.at("(") and self._is_type_after_paren():
                self.expect("(")
                base = self.parse_type_base()
                target, _, __ = self.parse_declarator(base, allow_abstract=True)
                if isinstance(target, _ConstWrapper):
                    target = target.inner
                self.expect(")")
                return ast.SizeOf(target, token.location)
            operand = self.parse_unary()
            return ast.SizeOf(operand, token.location)
        if self.at("(") and self._is_type_after_paren():
            self.expect("(")
            base = self.parse_type_base()
            target, _, __ = self.parse_declarator(base, allow_abstract=True)
            if isinstance(target, _ConstWrapper):
                target = target.inner
            self.expect(")")
            operand = self.parse_unary()
            return ast.Cast(target, operand, token.location)
        return self.parse_postfix()

    def _is_type_after_paren(self) -> bool:
        after = self.peek(1)
        return after.kind is TokenKind.KEYWORD and after.text in TYPE_KEYWORDS

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if self.at("["):
                self.advance()
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(expr, index, token.location)
            elif self.at("("):
                self.advance()
                args: list[ast.Expr] = []
                if not self.at(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                self.expect(")")
                expr = ast.Call(expr, args, token.location)
            elif self.at("++") or self.at("--"):
                op = self.advance()
                expr = ast.IncDec(op.text, expr, False, op.location)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.INT_LIT:
            self.advance()
            value, _suffix = token.value  # type: ignore[misc]
            return ast.IntLit(value, token.location)
        if token.kind is TokenKind.FLOAT_LIT:
            self.advance()
            return ast.FloatLit(token.value, token.location)  # type: ignore[arg-type]
        if token.kind is TokenKind.CHAR_LIT:
            self.advance()
            return ast.IntLit(token.value, token.location)  # type: ignore[arg-type]
        if token.kind is TokenKind.STRING_LIT:
            self.advance()
            return ast.StringLit(token.value, token.location)  # type: ignore[arg-type]
        if token.kind is TokenKind.IDENT:
            self.advance()
            return ast.Ident(token.text, token.location)
        if self.at("("):
            self.advance()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.location)


class _ConstWrapper(ty.Type):
    """Internal marker: a const-qualified base type during declarator parsing.

    The parser threads const-ness from the specifier into the declarator
    (where it lands on a pointer's pointee or an array). A const scalar
    survives as a wrapper, unwrapped where declarations are finalized.
    """

    def __init__(self, inner: ty.Type, const: bool):
        self.inner = inner
        self.const = const

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.inner.size

    def __str__(self) -> str:
        return f"const {self.inner}"


def parse_tokens(tokens: list[Token]) -> ast.Program:
    return Parser(tokens).parse_program()


def parse_source(source: str, filename: str = "<input>") -> ast.Program:
    """Parse MiniC source text into an un-analyzed AST."""
    return parse_tokens(tokenize(source, filename))
