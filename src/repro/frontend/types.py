"""The MiniC type system.

Types are immutable and interned where convenient; equality is structural.
The usual C rules the compiler relies on are implemented here: integer
promotion, the usual arithmetic conversions, array-to-pointer decay, and
assignment compatibility. Sizes follow an LP64 model (pointers are 8 bytes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

POINTER_SIZE = 8


class Type:
    """Base class for MiniC types."""

    size: int

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_arithmetic(self) -> bool:
        return self.is_integer or self.is_float

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_scalar(self) -> bool:
        return self.is_arithmetic or self.is_pointer

    def decay(self) -> "Type":
        """Array-to-pointer decay; other types are unchanged."""
        if isinstance(self, ArrayType):
            return PointerType(self.element, const=self.const)
        return self


@dataclass(frozen=True)
class VoidType(Type):
    """The ``void`` type; only valid as a return type or pointer target."""

    size: int = 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """An integer type of a given byte width and signedness."""

    size: int
    signed: bool

    def __post_init__(self) -> None:
        if self.size not in (1, 2, 4, 8):
            raise ValueError(f"unsupported integer size {self.size}")

    @property
    def bits(self) -> int:
        return self.size * 8

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` modulo 2**bits into this type's range."""
        value &= (1 << self.bits) - 1
        if self.signed and value >= 1 << (self.bits - 1):
            value -= 1 << self.bits
        return value

    def __str__(self) -> str:
        names = {1: "char", 2: "short", 4: "int", 8: "long"}
        base = names[self.size]
        return base if self.signed else f"unsigned {base}"


@dataclass(frozen=True)
class FloatType(Type):
    """``float`` (4 bytes) or ``double`` (8 bytes)."""

    size: int

    def __post_init__(self) -> None:
        if self.size not in (4, 8):
            raise ValueError(f"unsupported float size {self.size}")

    def __str__(self) -> str:
        return "float" if self.size == 4 else "double"


@dataclass(frozen=True)
class PointerType(Type):
    """A pointer to ``target``; ``const`` means the *pointee* is const."""

    target: Type
    const: bool = False

    @property
    def size(self) -> int:  # type: ignore[override]
        return POINTER_SIZE

    def __str__(self) -> str:
        const = "const " if self.const else ""
        return f"{const}{self.target}*"


@dataclass(frozen=True)
class ArrayType(Type):
    """A one-dimensional array; ``length`` is None for unsized declarations."""

    element: Type
    length: int | None
    const: bool = False

    @property
    def size(self) -> int:  # type: ignore[override]
        if self.length is None:
            return 0
        return self.element.size * self.length

    def __str__(self) -> str:
        const = "const " if self.const else ""
        length = "" if self.length is None else str(self.length)
        return f"{const}{self.element}[{length}]"


@dataclass(frozen=True)
class FuncType(Type):
    """A function signature."""

    return_type: Type
    params: tuple[Type, ...]

    @property
    def size(self) -> int:  # type: ignore[override]
        return POINTER_SIZE

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.return_type}({params})"


VOID = VoidType()
CHAR = IntType(1, signed=True)
UCHAR = IntType(1, signed=False)
SHORT = IntType(2, signed=True)
USHORT = IntType(2, signed=False)
INT = IntType(4, signed=True)
UINT = IntType(4, signed=False)
LONG = IntType(8, signed=True)
ULONG = IntType(8, signed=False)
FLOAT = FloatType(4)
DOUBLE = FloatType(8)
BOOL = INT  # comparison results have type int, as in C


def promote(ty: Type) -> Type:
    """Integer promotion: types narrower than int promote to int."""
    if isinstance(ty, IntType) and ty.size < 4:
        return INT
    return ty


def usual_arithmetic(lhs: Type, rhs: Type) -> Type:
    """The usual arithmetic conversions for a binary operator.

    Returns the common type both operands convert to. Raises ``TypeError``
    for non-arithmetic inputs; callers handle pointer arithmetic separately.
    """
    if not (lhs.is_arithmetic and rhs.is_arithmetic):
        raise TypeError(f"non-arithmetic operands: {lhs}, {rhs}")
    if lhs.is_float or rhs.is_float:
        sizes = [t.size for t in (lhs, rhs) if isinstance(t, FloatType)]
        return DOUBLE if max(sizes) == 8 else FLOAT
    left = promote(lhs)
    right = promote(rhs)
    assert isinstance(left, IntType) and isinstance(right, IntType)
    if left == right:
        return left
    if left.signed == right.signed:
        return left if left.size >= right.size else right
    unsigned, signed = (left, right) if not left.signed else (right, left)
    if unsigned.size >= signed.size:
        return unsigned
    return signed


def assignable(target: Type, source: Type) -> bool:
    """May a value of ``source`` type be assigned to an lvalue of ``target``?

    MiniC follows C's rules with one simplification: any arithmetic type
    converts to any other, any pointer converts to a pointer of the same
    target type or to/from ``void*``; integer literals convert to pointers
    only via an explicit cast (checked by the caller for the 0 case).
    """
    source = source.decay()
    if target.is_arithmetic and source.is_arithmetic:
        return True
    if isinstance(target, PointerType) and isinstance(source, PointerType):
        if target.target == source.target:
            return True
        if target.target.is_void or source.target.is_void:
            return True
        # Allow dropping const on the pointee (warning-level in C).
        return _same_ignoring_const(target.target, source.target)
    return target == source


def _same_ignoring_const(a: Type, b: Type) -> bool:
    if isinstance(a, PointerType) and isinstance(b, PointerType):
        return _same_ignoring_const(a.target, b.target)
    if isinstance(a, ArrayType) and isinstance(b, ArrayType):
        return a.length == b.length and _same_ignoring_const(a.element, b.element)
    return a == b


def common_pointer(lhs: Type, rhs: Type) -> Type | None:
    """The common type of two pointers for comparison, or None."""
    lhs, rhs = lhs.decay(), rhs.decay()
    if isinstance(lhs, PointerType) and isinstance(rhs, PointerType):
        if lhs.target == rhs.target or rhs.target.is_void:
            return lhs
        if lhs.target.is_void:
            return rhs
    return None


def format_types(types: Sequence[Type]) -> str:
    return ", ".join(str(t) for t in types)
