"""Semantic analysis for MiniC.

A single pass over the AST that:

- resolves identifiers to :class:`~repro.frontend.ast.Symbol` objects with
  unique ids (scopes nest; shadowing creates distinct symbols);
- type-checks every expression, inserting implicit :class:`Cast` nodes so
  that lowering never needs conversion logic of its own;
- marks lvalues, address-taken symbols, and written symbols — the inputs to
  the paper's flow-insensitive "which scalars live in registers" analysis
  (§3.3) and to the pointer analysis;
- folds ``sizeof`` and constant initializers;
- hoists string literals into anonymous const char arrays (the immutable
  objects of §4.2);
- resolves ``#pragma independent`` name lists to symbol pairs (§7.1).
"""

from __future__ import annotations

from repro.errors import SemanticError, SourceLocation
from repro.frontend import ast
from repro.frontend import types as ty

ARITH_OPS = frozenset({"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"})
COMPARE_OPS = frozenset({"==", "!=", "<", ">", "<=", ">="})
LOGICAL_OPS = frozenset({"&&", "||"})


class Scope:
    """A lexical scope mapping names to symbols."""

    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self.names: dict[str, ast.Symbol] = {}

    def define(self, symbol: ast.Symbol, loc: SourceLocation | None) -> None:
        if symbol.name in self.names:
            raise SemanticError(f"redefinition of {symbol.name!r}", loc)
        self.names[symbol.name] = symbol

    def lookup(self, name: str) -> ast.Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Analyzer:
    """Runs semantic analysis over a parsed program, mutating the AST."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.global_scope = Scope()
        self.next_id = 0
        self.current_function: ast.FuncDef | None = None
        self.loop_depth = 0
        self.string_count = 0
        # All locals declared in the current function, for pragma resolution:
        # #pragma independent may name block-scope locals.
        self.function_locals: dict[str, list[ast.Symbol]] = {}

    # ------------------------------------------------------------------

    def run(self) -> ast.Program:
        for sym in self.program.globals:
            self._assign_id(sym)
            self.global_scope.define(sym, None)
            self._check_global_init(sym)
        defined = {func.name for func in self.program.functions}
        for proto in self.program.extern_functions:
            if proto.name in defined:
                continue  # the definition's symbol wins
            self._assign_id(proto)
            self.global_scope.define(proto, None)
        for func in self.program.functions:
            self._assign_id(func.symbol)
            self.global_scope.define(func.symbol, func.location)
        for func in self.program.functions:
            self._analyze_function(func)
        self.program.globals.extend(self.program.string_symbols)
        return self.program

    def _assign_id(self, symbol: ast.Symbol) -> None:
        symbol.unique_id = self.next_id
        self.next_id += 1

    def _check_global_init(self, sym: ast.Symbol) -> None:
        if sym.type.is_void or isinstance(sym.type, ty.FuncType):
            raise SemanticError(f"invalid global type for {sym.name!r}", None)
        if isinstance(sym.initializer, ast.StringLit):
            data = sym.initializer.value.encode("latin-1") + b"\0"
            if not isinstance(sym.type, ty.ArrayType):
                raise SemanticError(
                    f"string initializer for non-array {sym.name!r}", None
                )
            sym.init_values = list(data)
            if sym.type.length is None:
                sym.type = ty.ArrayType(sym.type.element, len(data),
                                        const=sym.type.const)
            sym.initializer = None
            return
        if sym.initializer is not None:
            value = fold_const(sym.initializer)
            if value is None:
                raise SemanticError(
                    f"global initializer for {sym.name!r} is not constant", None
                )
            sym.init_values = [value]
            sym.initializer = None
        elif sym.init_values is not None:
            folded: list[object] = []
            for element in sym.init_values:
                if isinstance(element, ast.Expr):
                    value = fold_const(element)
                    if value is None:
                        raise SemanticError(
                            f"array initializer for {sym.name!r} is not constant",
                            None,
                        )
                    folded.append(value)
                else:
                    folded.append(element)
            sym.init_values = folded
            if isinstance(sym.type, ty.ArrayType) and sym.type.length is None:
                sym.type = ty.ArrayType(sym.type.element, len(folded),
                                        const=sym.type.const)

    # ------------------------------------------------------------------
    # Functions

    def _analyze_function(self, func: ast.FuncDef) -> None:
        self.current_function = func
        self.function_locals = {}
        scope = Scope(self.global_scope)
        for param in func.params:
            self._assign_id(param)
            scope.define(param, func.location)
        self._analyze_block(func.body, Scope(scope))
        self._resolve_pragmas(func, scope)
        self.current_function = None

    def _resolve_pragmas(self, func: ast.FuncDef, scope: Scope) -> None:
        for names in func.pragma_names:
            symbols: list[ast.Symbol] = []
            for name in names:
                symbol = scope.lookup(name)
                if symbol is None:
                    candidates = self.function_locals.get(name, [])
                    if len(candidates) == 1:
                        symbol = candidates[0]
                    elif len(candidates) > 1:
                        raise SemanticError(
                            f"#pragma independent name {name!r} is ambiguous "
                            f"in {func.name}", func.location,
                        )
                if symbol is None:
                    raise SemanticError(
                        f"#pragma independent names unknown symbol {name!r} "
                        f"in {func.name}", func.location,
                    )
                symbols.append(symbol)
            for i, first in enumerate(symbols):
                for second in symbols[i + 1:]:
                    func.independent_pairs.append((first, second))

    # ------------------------------------------------------------------
    # Statements

    def _analyze_block(self, block: ast.Block, scope: Scope) -> None:
        for stmt in block.stmts:
            self._analyze_stmt(stmt, scope)

    def _analyze_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._analyze_block(stmt, Scope(scope))
        elif isinstance(stmt, ast.DeclStmt):
            self._analyze_decl(stmt, scope)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self._analyze_decl(decl, scope)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._analyze_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            stmt.cond = self._require_scalar(self._analyze_expr(stmt.cond, scope))
            self._analyze_stmt(stmt.then, Scope(scope))
            if stmt.otherwise is not None:
                self._analyze_stmt(stmt.otherwise, Scope(scope))
        elif isinstance(stmt, ast.While):
            stmt.cond = self._require_scalar(self._analyze_expr(stmt.cond, scope))
            self._in_loop(stmt.body, Scope(scope))
        elif isinstance(stmt, ast.DoWhile):
            self._in_loop(stmt.body, Scope(scope))
            stmt.cond = self._require_scalar(self._analyze_expr(stmt.cond, scope))
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._analyze_stmt(stmt.init, inner)
            if stmt.cond is not None:
                stmt.cond = self._require_scalar(self._analyze_expr(stmt.cond, inner))
            if stmt.step is not None:
                stmt.step = self._analyze_expr(stmt.step, inner)
            self._in_loop(stmt.body, Scope(inner))
        elif isinstance(stmt, ast.Return):
            self._analyze_return(stmt, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                kind = "break" if isinstance(stmt, ast.Break) else "continue"
                raise SemanticError(f"{kind} outside of a loop", stmt.location)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:
            raise SemanticError(f"unknown statement {stmt!r}", stmt.location)

    def _in_loop(self, body: ast.Stmt, scope: Scope) -> None:
        self.loop_depth += 1
        try:
            self._analyze_stmt(body, scope)
        finally:
            self.loop_depth -= 1

    def _analyze_decl(self, stmt: ast.DeclStmt, scope: Scope) -> None:
        symbol = stmt.symbol
        if symbol.type.is_void:
            raise SemanticError(f"variable {symbol.name!r} has void type",
                                stmt.location)
        self._assign_id(symbol)
        scope.define(symbol, stmt.location)
        self.function_locals.setdefault(symbol.name, []).append(symbol)
        if isinstance(symbol.type, ty.ArrayType) and symbol.init_values is not None:
            folded: list[object] = []
            for element in symbol.init_values:
                if isinstance(element, ast.Expr):
                    value = fold_const(element)
                    if value is None:
                        raise SemanticError(
                            f"array initializer for {symbol.name!r} must be constant",
                            stmt.location,
                        )
                    folded.append(value)
                else:
                    folded.append(element)
            symbol.init_values = folded
            if symbol.type.length is None:
                symbol.type = ty.ArrayType(symbol.type.element, len(folded),
                                           const=symbol.type.const)
        if stmt.init is not None:
            stmt.init = self._analyze_expr(stmt.init, scope)
            init_type = stmt.init.type
            assert init_type is not None
            if not ty.assignable(symbol.type, init_type):
                if not _is_null_constant(stmt.init, symbol.type):
                    raise SemanticError(
                        f"cannot initialize {symbol.type} with {init_type}",
                        stmt.location,
                    )
            stmt.init = self._convert(stmt.init, symbol.type.decay())
            symbol.is_written = True

    def _analyze_return(self, stmt: ast.Return, scope: Scope) -> None:
        assert self.current_function is not None
        func_type = self.current_function.symbol.type
        assert isinstance(func_type, ty.FuncType)
        if stmt.value is None:
            if not func_type.return_type.is_void:
                raise SemanticError("return without a value in non-void function",
                                    stmt.location)
            return
        if func_type.return_type.is_void:
            raise SemanticError("return with a value in void function",
                                stmt.location)
        stmt.value = self._analyze_expr(stmt.value, scope)
        assert stmt.value.type is not None
        if not ty.assignable(func_type.return_type, stmt.value.type):
            if not _is_null_constant(stmt.value, func_type.return_type):
                raise SemanticError(
                    f"cannot return {stmt.value.type} from function returning "
                    f"{func_type.return_type}", stmt.location,
                )
        stmt.value = self._convert(stmt.value, func_type.return_type)

    # ------------------------------------------------------------------
    # Expressions

    def _analyze_expr(self, expr: ast.Expr, scope: Scope) -> ast.Expr:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:
            raise SemanticError(f"unknown expression {expr!r}", expr.location)
        return method(expr, scope)

    def _expr_IntLit(self, expr: ast.IntLit, scope: Scope) -> ast.Expr:
        expr.type = ty.INT if -(2**31) <= expr.value < 2**31 else ty.LONG
        return expr

    def _expr_FloatLit(self, expr: ast.FloatLit, scope: Scope) -> ast.Expr:
        expr.type = ty.DOUBLE
        return expr

    def _expr_StringLit(self, expr: ast.StringLit, scope: Scope) -> ast.Expr:
        data = expr.value.encode("latin-1") + b"\0"
        symbol = ast.Symbol(
            name=f"__str{self.string_count}",
            type=ty.ArrayType(ty.CHAR, len(data), const=True),
            kind="global",
            is_const=True,
            init_values=list(data),
        )
        self.string_count += 1
        self._assign_id(symbol)
        self.program.string_symbols.append(symbol)
        expr.symbol = symbol
        expr.type = symbol.type
        return expr

    def _expr_Ident(self, expr: ast.Ident, scope: Scope) -> ast.Expr:
        symbol = scope.lookup(expr.name)
        if symbol is None:
            raise SemanticError(f"use of undeclared identifier {expr.name!r}",
                                expr.location)
        expr.symbol = symbol
        expr.type = symbol.type
        expr.is_lvalue = not isinstance(symbol.type, (ty.FuncType, ty.ArrayType))
        return expr

    def _expr_Unary(self, expr: ast.Unary, scope: Scope) -> ast.Expr:
        expr.operand = self._analyze_expr(expr.operand, scope)
        operand_type = expr.operand.type
        assert operand_type is not None
        if expr.op == "&":
            self._take_address(expr.operand)
            if isinstance(operand_type, ty.ArrayType):
                expr.type = ty.PointerType(operand_type.element,
                                           const=operand_type.const)
            elif expr.operand.is_lvalue:
                expr.type = ty.PointerType(operand_type)
            else:
                raise SemanticError("cannot take the address of an rvalue",
                                    expr.location)
            return expr
        if expr.op == "*":
            decayed = operand_type.decay()
            if not isinstance(decayed, ty.PointerType):
                raise SemanticError(f"cannot dereference {operand_type}",
                                    expr.location)
            if decayed.target.is_void:
                raise SemanticError("cannot dereference void*", expr.location)
            expr.type = decayed.target
            expr.is_lvalue = not isinstance(decayed.target, ty.ArrayType)
            return expr
        if expr.op == "!":
            self._require_scalar(expr.operand)
            expr.type = ty.INT
            return expr
        if expr.op in ("+", "-"):
            if not operand_type.is_arithmetic:
                raise SemanticError(f"unary {expr.op} needs an arithmetic operand",
                                    expr.location)
            expr.type = ty.promote(operand_type)
            expr.operand = self._convert(expr.operand, expr.type)
            return expr
        if expr.op == "~":
            if not operand_type.is_integer:
                raise SemanticError("~ needs an integer operand", expr.location)
            expr.type = ty.promote(operand_type)
            expr.operand = self._convert(expr.operand, expr.type)
            return expr
        raise SemanticError(f"unknown unary operator {expr.op!r}", expr.location)

    def _take_address(self, operand: ast.Expr) -> None:
        """Mark the root symbol of an lvalue path as address-taken."""
        node = operand
        while True:
            if isinstance(node, ast.Ident) and node.symbol is not None:
                node.symbol.address_taken = True
                return
            if isinstance(node, ast.Index):
                node = node.base
            elif isinstance(node, ast.Unary) and node.op == "*":
                return  # address derives from a pointer value, not a symbol
            elif isinstance(node, ast.Cast):
                node = node.operand
            else:
                return

    def _expr_IncDec(self, expr: ast.IncDec, scope: Scope) -> ast.Expr:
        expr.operand = self._analyze_expr(expr.operand, scope)
        if not expr.operand.is_lvalue:
            raise SemanticError(f"{expr.op} needs an lvalue", expr.location)
        operand_type = expr.operand.type
        assert operand_type is not None
        if not (operand_type.is_arithmetic or operand_type.is_pointer):
            raise SemanticError(f"{expr.op} needs a scalar operand", expr.location)
        self._mark_written(expr.operand)
        expr.type = operand_type
        return expr

    def _expr_Binary(self, expr: ast.Binary, scope: Scope) -> ast.Expr:
        expr.lhs = self._analyze_expr(expr.lhs, scope)
        expr.rhs = self._analyze_expr(expr.rhs, scope)
        lhs_type = expr.lhs.type.decay()  # type: ignore[union-attr]
        rhs_type = expr.rhs.type.decay()  # type: ignore[union-attr]
        op = expr.op
        if op in LOGICAL_OPS:
            self._require_scalar(expr.lhs)
            self._require_scalar(expr.rhs)
            expr.type = ty.INT
            return expr
        if op in COMPARE_OPS:
            if lhs_type.is_arithmetic and rhs_type.is_arithmetic:
                common = ty.usual_arithmetic(lhs_type, rhs_type)
                expr.lhs = self._convert(expr.lhs, common)
                expr.rhs = self._convert(expr.rhs, common)
            elif ty.common_pointer(lhs_type, rhs_type) is not None:
                pass
            elif lhs_type.is_pointer and _is_null_literal(expr.rhs):
                expr.rhs = self._convert(expr.rhs, lhs_type)
            elif rhs_type.is_pointer and _is_null_literal(expr.lhs):
                expr.lhs = self._convert(expr.lhs, rhs_type)
            else:
                raise SemanticError(
                    f"invalid comparison between {lhs_type} and {rhs_type}",
                    expr.location,
                )
            expr.type = ty.INT
            return expr
        if op in ("<<", ">>"):
            if not (lhs_type.is_integer and rhs_type.is_integer):
                raise SemanticError("shift operands must be integers",
                                    expr.location)
            expr.type = ty.promote(lhs_type)
            expr.lhs = self._convert(expr.lhs, expr.type)
            expr.rhs = self._convert(expr.rhs, ty.promote(rhs_type))
            return expr
        if op in ("+", "-"):
            if lhs_type.is_pointer and rhs_type.is_integer:
                expr.type = lhs_type
                return expr
            if op == "+" and lhs_type.is_integer and rhs_type.is_pointer:
                expr.type = rhs_type
                return expr
            if op == "-" and lhs_type.is_pointer and rhs_type.is_pointer:
                if ty.common_pointer(lhs_type, rhs_type) is None:
                    raise SemanticError("subtracting incompatible pointers",
                                        expr.location)
                expr.type = ty.LONG
                return expr
        if op in ARITH_OPS:
            if op in ("%", "&", "|", "^") and not (
                lhs_type.is_integer and rhs_type.is_integer
            ):
                raise SemanticError(f"{op} operands must be integers",
                                    expr.location)
            if not (lhs_type.is_arithmetic and rhs_type.is_arithmetic):
                raise SemanticError(
                    f"invalid operands to {op}: {lhs_type}, {rhs_type}",
                    expr.location,
                )
            common = ty.usual_arithmetic(lhs_type, rhs_type)
            expr.lhs = self._convert(expr.lhs, common)
            expr.rhs = self._convert(expr.rhs, common)
            expr.type = common
            return expr
        raise SemanticError(f"unknown binary operator {op!r}", expr.location)

    def _expr_Assign(self, expr: ast.Assign, scope: Scope) -> ast.Expr:
        expr.target = self._analyze_expr(expr.target, scope)
        expr.value = self._analyze_expr(expr.value, scope)
        if not expr.target.is_lvalue:
            raise SemanticError("assignment target is not an lvalue",
                                expr.location)
        target_type = expr.target.type
        value_type = expr.value.type
        assert target_type is not None and value_type is not None
        if expr.op == "=":
            if not ty.assignable(target_type, value_type):
                if not _is_null_constant(expr.value, target_type):
                    raise SemanticError(
                        f"cannot assign {value_type} to {target_type}",
                        expr.location,
                    )
            expr.value = self._convert(expr.value, target_type.decay())
        else:
            binary_op = expr.op[:-1]
            if target_type.is_pointer and binary_op in ("+", "-"):
                if not value_type.decay().is_integer:
                    raise SemanticError("pointer increment must be an integer",
                                        expr.location)
            elif binary_op in ("%", "&", "|", "^", "<<", ">>"):
                if not (target_type.is_integer and value_type.is_integer):
                    raise SemanticError(
                        f"{expr.op} operands must be integers", expr.location
                    )
            elif not (target_type.is_arithmetic and value_type.is_arithmetic):
                raise SemanticError(
                    f"invalid operands to {expr.op}: {target_type}, {value_type}",
                    expr.location,
                )
        self._mark_written(expr.target)
        expr.type = target_type
        return expr

    def _expr_Conditional(self, expr: ast.Conditional, scope: Scope) -> ast.Expr:
        expr.cond = self._require_scalar(self._analyze_expr(expr.cond, scope))
        expr.then = self._analyze_expr(expr.then, scope)
        expr.otherwise = self._analyze_expr(expr.otherwise, scope)
        then_type = expr.then.type.decay()  # type: ignore[union-attr]
        else_type = expr.otherwise.type.decay()  # type: ignore[union-attr]
        if then_type.is_arithmetic and else_type.is_arithmetic:
            common = ty.usual_arithmetic(then_type, else_type)
            expr.then = self._convert(expr.then, common)
            expr.otherwise = self._convert(expr.otherwise, common)
            expr.type = common
        else:
            common_ptr = ty.common_pointer(then_type, else_type)
            if common_ptr is None:
                raise SemanticError(
                    f"incompatible conditional arms: {then_type}, {else_type}",
                    expr.location,
                )
            expr.type = common_ptr
        return expr

    def _expr_Index(self, expr: ast.Index, scope: Scope) -> ast.Expr:
        expr.base = self._analyze_expr(expr.base, scope)
        expr.index = self._analyze_expr(expr.index, scope)
        base_type = expr.base.type.decay()  # type: ignore[union-attr]
        index_type = expr.index.type.decay()  # type: ignore[union-attr]
        if not isinstance(base_type, ty.PointerType):
            raise SemanticError(f"cannot index into {expr.base.type}",
                                expr.location)
        if not index_type.is_integer:
            raise SemanticError("array index must be an integer", expr.location)
        expr.type = base_type.target
        expr.is_lvalue = not isinstance(base_type.target, ty.ArrayType)
        return expr

    def _expr_Call(self, expr: ast.Call, scope: Scope) -> ast.Expr:
        if not isinstance(expr.callee, ast.Ident):
            raise SemanticError("calls through pointers are not supported",
                                expr.location)
        expr.callee = self._analyze_expr(expr.callee, scope)
        callee_type = expr.callee.type
        if not isinstance(callee_type, ty.FuncType):
            raise SemanticError(f"{expr.callee} is not a function", expr.location)
        if len(expr.args) != len(callee_type.params):
            raise SemanticError(
                f"call passes {len(expr.args)} arguments, function takes "
                f"{len(callee_type.params)}", expr.location,
            )
        new_args: list[ast.Expr] = []
        for arg, param_type in zip(expr.args, callee_type.params):
            arg = self._analyze_expr(arg, scope)
            assert arg.type is not None
            if not ty.assignable(param_type, arg.type):
                if not _is_null_constant(arg, param_type):
                    raise SemanticError(
                        f"cannot pass {arg.type} as {param_type}", expr.location
                    )
            new_args.append(self._convert(arg, param_type))
        expr.args = new_args
        expr.type = callee_type.return_type
        return expr

    def _expr_Cast(self, expr: ast.Cast, scope: Scope) -> ast.Expr:
        expr.operand = self._analyze_expr(expr.operand, scope)
        operand_type = expr.operand.type.decay()  # type: ignore[union-attr]
        target = expr.target_type
        if target.is_void:
            expr.type = ty.VOID
            return expr
        if not (target.is_scalar and operand_type.is_scalar):
            raise SemanticError(
                f"invalid cast from {operand_type} to {target}", expr.location
            )
        if operand_type.is_float and target.is_pointer:
            raise SemanticError("cannot cast float to pointer", expr.location)
        if operand_type.is_pointer and target.is_float:
            raise SemanticError("cannot cast pointer to float", expr.location)
        expr.type = target
        return expr

    def _expr_SizeOf(self, expr: ast.SizeOf, scope: Scope) -> ast.Expr:
        if isinstance(expr.target, ast.Expr):
            analyzed = self._analyze_expr(expr.target, scope)
            assert analyzed.type is not None
            size = analyzed.type.size
        else:
            size = expr.target.size
        lit = ast.IntLit(size, expr.location)
        lit.type = ty.ULONG
        return lit

    def _expr_Comma(self, expr: ast.Comma, scope: Scope) -> ast.Expr:
        expr.lhs = self._analyze_expr(expr.lhs, scope)
        expr.rhs = self._analyze_expr(expr.rhs, scope)
        expr.type = expr.rhs.type
        return expr

    # ------------------------------------------------------------------
    # Helpers

    def _require_scalar(self, expr: ast.Expr) -> ast.Expr:
        decayed = expr.type.decay()  # type: ignore[union-attr]
        if not decayed.is_scalar:
            raise SemanticError(f"expected a scalar, found {expr.type}",
                                expr.location)
        return expr

    def _convert(self, expr: ast.Expr, target: ty.Type) -> ast.Expr:
        """Insert an implicit cast if the expression's type differs."""
        source = expr.type
        assert source is not None
        if source == target:
            return expr
        if isinstance(source, ty.ArrayType) and isinstance(target, ty.PointerType):
            return expr  # decay is handled during lowering
        cast = ast.Cast(target, expr, expr.location, implicit=True)
        cast.type = target
        return cast

    def _mark_written(self, target: ast.Expr) -> None:
        if isinstance(target, ast.Ident) and target.symbol is not None:
            target.symbol.is_written = True


def _is_null_literal(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.IntLit) and expr.value == 0


def _is_null_constant(expr: ast.Expr, target: ty.Type) -> bool:
    return target.is_pointer and _is_null_literal(expr)


def fold_const(expr: ast.Expr) -> int | float | None:
    """Evaluate a constant expression, or return None if not constant.

    Supports the operators that appear in initializers: literals, unary
    ``+ - ~ !``, binary arithmetic/bitwise/shift operators, and casts.
    """
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.Cast):
        inner = fold_const(expr.operand)
        if inner is None:
            return None
        target = expr.target_type
        if isinstance(target, ty.IntType):
            return target.wrap(int(inner))
        if isinstance(target, ty.FloatType):
            return float(inner)
        return None
    if isinstance(expr, ast.Unary):
        inner = fold_const(expr.operand)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "+":
            return inner
        if expr.op == "~" and isinstance(inner, int):
            return ~inner
        if expr.op == "!":
            return 0 if inner else 1
        return None
    if isinstance(expr, ast.Binary):
        lhs = fold_const(expr.lhs)
        rhs = fold_const(expr.rhs)
        if lhs is None or rhs is None:
            return None
        try:
            return _fold_binary(expr.op, lhs, rhs)
        except (ZeroDivisionError, TypeError):
            return None
    return None


def _fold_binary(op: str, lhs: int | float, rhs: int | float):
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if isinstance(lhs, int) and isinstance(rhs, int):
            quotient = abs(lhs) // abs(rhs)
            return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
        return lhs / rhs
    if op == "%":
        remainder = abs(lhs) % abs(rhs)
        return remainder if lhs >= 0 else -remainder
    if op == "<<":
        return lhs << rhs
    if op == ">>":
        return lhs >> rhs
    if op == "&":
        return lhs & rhs
    if op == "|":
        return lhs | rhs
    if op == "^":
        return lhs ^ rhs
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "<":
        return int(lhs < rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">=":
        return int(lhs >= rhs)
    raise TypeError(f"cannot fold {op}")


def analyze(program: ast.Program) -> ast.Program:
    """Run semantic analysis on a parsed program (mutates and returns it)."""
    return Analyzer(program).run()
