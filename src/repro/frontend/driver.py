"""Frontend driver: source text in, type-checked AST out."""

from __future__ import annotations

from repro.frontend.ast import Program
from repro.frontend.parser import parse_source
from repro.frontend.sema import analyze


def parse_program(source: str, filename: str = "<input>") -> Program:
    """Lex, parse, and type-check MiniC source text.

    Raises :class:`~repro.errors.FrontendError` subclasses on invalid input.
    """
    return analyze(parse_source(source, filename))
