"""MiniC frontend: lexer, parser, and semantic analysis.

MiniC is the C subset the reproduction compiles: all integer widths, floats,
pointers, one-dimensional arrays, functions, the full C expression and
statement repertoire, simple ``#define`` constants, and the paper's
``#pragma independent`` annotation (§7.1).

The public entry point is :func:`parse_program`, which returns a type-checked
:class:`~repro.frontend.ast.Program` ready for CFG lowering.
"""

from repro.frontend.ast import Program
from repro.frontend.driver import parse_program

__all__ = ["parse_program", "Program"]
