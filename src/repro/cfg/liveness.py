"""Classic backward liveness analysis over temps.

The Pegasus builder needs, at each hyperblock boundary, the set of temps
whose values must flow across (as merge/eta pairs). Standard worklist
dataflow: ``live_in(b) = use(b) ∪ (live_out(b) − def(b))``.
"""

from __future__ import annotations

from repro.cfg import ir


class Liveness:
    def __init__(self, func: ir.Function):
        self.func = func
        self.live_in: dict[ir.BasicBlock, frozenset[ir.Temp]] = {}
        self.live_out: dict[ir.BasicBlock, frozenset[ir.Temp]] = {}
        self._compute()

    def _block_use_def(self, block: ir.BasicBlock):
        use: set[ir.Temp] = set()
        defined: set[ir.Temp] = set()
        for instr in block.instrs:
            for operand in instr.uses():
                if isinstance(operand, ir.Temp) and operand not in defined:
                    use.add(operand)
            dest = instr.defs()
            if dest is not None:
                defined.add(dest)
        term = block.terminator
        if isinstance(term, ir.Branch) and isinstance(term.cond, ir.Temp):
            if term.cond not in defined:
                use.add(term.cond)
        if isinstance(term, ir.Ret) and isinstance(term.value, ir.Temp):
            if term.value not in defined:
                use.add(term.value)
        return use, defined

    def _compute(self) -> None:
        blocks = self.func.reachable_blocks()
        use_def = {b: self._block_use_def(b) for b in blocks}
        live_in: dict[ir.BasicBlock, set[ir.Temp]] = {b: set() for b in blocks}
        live_out: dict[ir.BasicBlock, set[ir.Temp]] = {b: set() for b in blocks}
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):  # postorder converges fast
                out: set[ir.Temp] = set()
                for succ in block.successors():
                    out |= live_in[succ]
                use, defined = use_def[block]
                new_in = use | (out - defined)
                if out != live_out[block] or new_in != live_in[block]:
                    live_out[block] = out
                    live_in[block] = new_in
                    changed = True
        self.live_in = {b: frozenset(s) for b, s in live_in.items()}
        self.live_out = {b: frozenset(s) for b, s in live_out.items()}
