"""Three-address control-flow-graph middle end.

The AST is lowered to a conventional CFG (``ir``/``lower``); calls are
flattened by the inliner (spatial computation instantiates every call site
in hardware, ``inline``); dominators and natural loops are computed
(``dominators``/``loops``); and blocks are grouped into hyperblocks
(``hyperblocks``) — the unit over which Pegasus applies predication (§3.1).
"""

from repro.cfg.ir import Function, BasicBlock
from repro.cfg.lower import lower_program, LoweredProgram
from repro.cfg.inline import inline_program
from repro.cfg.hyperblocks import form_hyperblocks, Hyperblock

__all__ = [
    "Function",
    "BasicBlock",
    "lower_program",
    "LoweredProgram",
    "inline_program",
    "form_hyperblocks",
    "Hyperblock",
]
