"""AST → three-address CFG lowering.

The lowering implements the paper's register assignment rule (§3.3): local
scalars whose address is never taken live in virtual registers; all other
data — arrays, globals, address-taken locals — is manipulated by explicit
load and store instructions through pointers.

Short-circuit operators and the conditional operator lower to control flow;
hyperblock formation later re-merges those diamonds and Pegasus predication
turns them back into straight-line speculative code, exactly as CASH does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LoweringError
from repro.frontend import ast
from repro.frontend import types as ty
from repro.cfg import ir

CMP_OPS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
ARITH_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
             "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr"}


@dataclass
class LoweredProgram:
    """All functions lowered to CFGs plus program-level memory objects."""

    functions: dict[str, ir.Function]
    globals: list[ast.Symbol]
    source: ast.Program | None = None

    def function(self, name: str) -> ir.Function:
        if name not in self.functions:
            raise KeyError(f"no lowered function named {name!r}")
        return self.functions[name]


def lower_program(program: ast.Program) -> LoweredProgram:
    """Lower every function of a type-checked program."""
    functions: dict[str, ir.Function] = {}
    for func in program.functions:
        functions[func.name] = FunctionLowerer(func).lower()
    return LoweredProgram(functions=functions, globals=list(program.globals),
                          source=program)


@dataclass
class _LoopContext:
    break_target: ir.BasicBlock
    continue_target: ir.BasicBlock


class FunctionLowerer:
    """Lowers one function definition to an :class:`ir.Function`."""

    def __init__(self, func: ast.FuncDef):
        self.func = func
        func_type = func.symbol.type
        assert isinstance(func_type, ty.FuncType)
        self.ir = ir.Function(func.name, func_type.return_type)
        self.ir.independent_pairs = list(func.independent_pairs)
        self.block: ir.BasicBlock | None = None
        # Register-resident scalars: symbol -> the temp acting as its register.
        self.registers: dict[ast.Symbol, ir.Temp] = {}
        self.loop_stack: list[_LoopContext] = []
        self.exit_block: ir.BasicBlock | None = None
        self.ret_temp: ir.Temp | None = None

    # ------------------------------------------------------------------

    def lower(self) -> ir.Function:
        entry = self.ir.new_block("entry")
        self.ir.entry = entry
        self.block = entry
        self.exit_block = self.ir.new_block("exit")
        if not self.ir.return_type.is_void:
            self.ret_temp = self.ir.new_temp(self.ir.return_type)
        self.exit_block.terminator = ir.Ret(self.ret_temp)

        for param in self.func.params:
            temp = self.ir.new_temp(param.type)
            self.ir.params.append((param, temp))
            if self._lives_in_register(param):
                self.registers[param] = temp
            else:
                # Address-taken parameter: spill into a stack slot.
                self.ir.stack_objects.append(param)
                self.emit(ir.Store(ir.SymAddr(param), temp, param.type))

        self.lower_block(self.func.body)
        if self.block is not None and self.block.terminator is None:
            # Fall off the end: return 0/void.
            if self.ret_temp is not None:
                zero = ir.Const(0, self.ir.return_type)
                self.emit(ir.Copy(self.ret_temp, zero))
            self.block.terminator = ir.Jump(self.exit_block)
        self.ir.remove_unreachable()
        simplify_cfg(self.ir)
        return self.ir

    def _lives_in_register(self, symbol: ast.Symbol) -> bool:
        if symbol.kind == "global":
            return False
        if isinstance(symbol.type, ty.ArrayType):
            return False
        return not symbol.address_taken

    # ------------------------------------------------------------------
    # Emission helpers

    def emit(self, instr: ir.Instr) -> None:
        assert self.block is not None, "emitting into a dead region"
        self.block.append(instr)

    def _start_block(self, block: ir.BasicBlock) -> None:
        self.block = block

    def _end_block(self, terminator: ir.Terminator) -> None:
        assert self.block is not None
        self.block.terminator = terminator
        self.block = None

    def _new_temp(self, type_: ty.Type) -> ir.Temp:
        return self.ir.new_temp(type_)

    # ------------------------------------------------------------------
    # Statements

    def lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            if self.block is None:
                return  # unreachable code after break/continue/return
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            self.lower_decl(stmt)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self.lower_decl(decl)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._end_block(ir.Jump(self.loop_stack[-1].break_target))
        elif isinstance(stmt, ast.Continue):
            self._end_block(ir.Jump(self.loop_stack[-1].continue_target))
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:
            raise LoweringError(f"cannot lower statement {stmt!r}")

    def lower_decl(self, stmt: ast.DeclStmt) -> None:
        symbol = stmt.symbol
        if self._lives_in_register(symbol):
            temp = self._new_temp(symbol.type)
            self.registers[symbol] = temp
            if stmt.init is not None:
                value = self.lower_expr(stmt.init)
                self.emit(ir.Copy(temp, value))
            else:
                self.emit(ir.Copy(temp, ir.Const(0, symbol.type)))
            return
        self.ir.stack_objects.append(symbol)
        if isinstance(symbol.type, ty.ArrayType) and symbol.init_values:
            element = symbol.type.element
            for index, value in enumerate(symbol.init_values):
                offset = ir.Const(index * element.size, ty.ULONG)
                addr = self._new_temp(ty.PointerType(element))
                self.emit(ir.BinOp(addr, "add", ir.SymAddr(symbol), offset,
                                   ty.ULONG))
                self.emit(ir.Store(addr, ir.Const(value, element), element))
        elif stmt.init is not None:
            value = self.lower_expr(stmt.init)
            self.emit(ir.Store(ir.SymAddr(symbol), value, symbol.type))

    def lower_if(self, stmt: ast.If) -> None:
        cond = self.lower_expr(stmt.cond)
        then_block = self.ir.new_block("then")
        join_block = self.ir.new_block("join")
        else_block = self.ir.new_block("else") if stmt.otherwise else join_block
        self._end_block(ir.Branch(cond, then_block, else_block))
        self._start_block(then_block)
        self.lower_stmt(stmt.then)
        if self.block is not None:
            self._end_block(ir.Jump(join_block))
        if stmt.otherwise is not None:
            self._start_block(else_block)
            self.lower_stmt(stmt.otherwise)
            if self.block is not None:
                self._end_block(ir.Jump(join_block))
        self._start_block(join_block)

    def lower_while(self, stmt: ast.While) -> None:
        header = self.ir.new_block("while")
        body = self.ir.new_block("body")
        exit_block = self.ir.new_block("endwhile")
        self._end_block(ir.Jump(header))
        self._start_block(header)
        cond = self.lower_expr(stmt.cond)
        self._end_block(ir.Branch(cond, body, exit_block))
        self._start_block(body)
        self.loop_stack.append(_LoopContext(exit_block, header))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        if self.block is not None:
            self._end_block(ir.Jump(header))
        self._start_block(exit_block)

    def lower_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.ir.new_block("do")
        cond_block = self.ir.new_block("docond")
        exit_block = self.ir.new_block("enddo")
        self._end_block(ir.Jump(body))
        self._start_block(body)
        self.loop_stack.append(_LoopContext(exit_block, cond_block))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        if self.block is not None:
            self._end_block(ir.Jump(cond_block))
        self._start_block(cond_block)
        cond = self.lower_expr(stmt.cond)
        self._end_block(ir.Branch(cond, body, exit_block))
        self._start_block(exit_block)

    def lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header = self.ir.new_block("for")
        body = self.ir.new_block("body")
        step_block = self.ir.new_block("step")
        exit_block = self.ir.new_block("endfor")
        self._end_block(ir.Jump(header))
        self._start_block(header)
        if stmt.cond is not None:
            cond = self.lower_expr(stmt.cond)
            self._end_block(ir.Branch(cond, body, exit_block))
        else:
            self._end_block(ir.Jump(body))
        self._start_block(body)
        self.loop_stack.append(_LoopContext(exit_block, step_block))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        if self.block is not None:
            self._end_block(ir.Jump(step_block))
        self._start_block(step_block)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self._end_block(ir.Jump(header))
        self._start_block(exit_block)

    def lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            value = self.lower_expr(stmt.value)
            assert self.ret_temp is not None
            self.emit(ir.Copy(self.ret_temp, value))
        elif self.ret_temp is not None:
            self.emit(ir.Copy(self.ret_temp, ir.Const(0, self.ir.return_type)))
        assert self.exit_block is not None
        self._end_block(ir.Jump(self.exit_block))

    # ------------------------------------------------------------------
    # Expressions

    def lower_expr(self, expr: ast.Expr) -> ir.Operand:
        method = getattr(self, f"_lower_{type(expr).__name__}", None)
        if method is None:
            raise LoweringError(f"cannot lower expression {expr!r}")
        return method(expr)

    def _lower_IntLit(self, expr: ast.IntLit) -> ir.Operand:
        assert expr.type is not None
        return ir.Const(expr.value, expr.type)

    def _lower_FloatLit(self, expr: ast.FloatLit) -> ir.Operand:
        assert expr.type is not None
        return ir.Const(expr.value, expr.type)

    def _lower_StringLit(self, expr: ast.StringLit) -> ir.Operand:
        assert expr.symbol is not None
        return ir.SymAddr(expr.symbol)

    def _lower_Ident(self, expr: ast.Ident) -> ir.Operand:
        symbol = expr.symbol
        assert symbol is not None
        if symbol in self.registers:
            return self.registers[symbol]
        if isinstance(symbol.type, ty.ArrayType):
            return ir.SymAddr(symbol)  # array decays to its address
        if isinstance(symbol.type, ty.FuncType):
            raise LoweringError(f"function {symbol.name} used as a value")
        dest = self._new_temp(symbol.type)
        self.emit(ir.Load(dest, ir.SymAddr(symbol), symbol.type))
        return dest

    def _lower_Unary(self, expr: ast.Unary) -> ir.Operand:
        if expr.op == "&":
            addr, _ = self.lower_lvalue(expr.operand)
            return addr
        if expr.op == "*":
            addr = self.lower_expr(expr.operand)
            assert expr.type is not None
            if isinstance(expr.type, ty.ArrayType):
                return addr  # *p on pointer-to-array yields the array address
            dest = self._new_temp(expr.type)
            self.emit(ir.Load(dest, addr, expr.type))
            return dest
        operand = self.lower_expr(expr.operand)
        assert expr.type is not None
        dest = self._new_temp(expr.type)
        if expr.op == "-":
            self.emit(ir.UnOp(dest, "neg", operand, expr.type))
        elif expr.op == "+":
            return operand
        elif expr.op == "~":
            self.emit(ir.UnOp(dest, "bnot", operand, expr.type))
        elif expr.op == "!":
            operand_type = expr.operand.type.decay()  # type: ignore[union-attr]
            self.emit(ir.UnOp(dest, "lnot", operand, operand_type))
        else:
            raise LoweringError(f"cannot lower unary {expr.op!r}")
        return dest

    def _lower_Binary(self, expr: ast.Binary) -> ir.Operand:
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_logical(expr)
        lhs_type = expr.lhs.type.decay()  # type: ignore[union-attr]
        rhs_type = expr.rhs.type.decay()  # type: ignore[union-attr]
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        assert expr.type is not None
        if op in CMP_OPS:
            # Comparison semantics follow the (common) operand type.
            operand_type = lhs_type if lhs_type == rhs_type else ty.ULONG
            dest = self._new_temp(ty.INT)
            self.emit(ir.BinOp(dest, CMP_OPS[op], lhs, rhs, operand_type))
            return dest
        if op in ("+", "-") and lhs_type.is_pointer and rhs_type.is_integer:
            return self._pointer_offset(lhs, lhs_type, rhs, rhs_type,
                                        negate=(op == "-"))
        if op == "+" and lhs_type.is_integer and rhs_type.is_pointer:
            return self._pointer_offset(rhs, rhs_type, lhs, lhs_type,
                                        negate=False)
        if op == "-" and lhs_type.is_pointer and rhs_type.is_pointer:
            assert isinstance(lhs_type, ty.PointerType)
            diff = self._new_temp(ty.LONG)
            self.emit(ir.BinOp(diff, "sub", lhs, rhs, ty.LONG))
            size = lhs_type.target.size
            if size == 1:
                return diff
            dest = self._new_temp(ty.LONG)
            self.emit(ir.BinOp(dest, "div", diff, ir.Const(size, ty.LONG),
                               ty.LONG))
            return dest
        dest = self._new_temp(expr.type)
        self.emit(ir.BinOp(dest, ARITH_OPS[op], lhs, rhs, expr.type))
        return dest

    def _pointer_offset(self, pointer: ir.Operand, pointer_type: ty.Type,
                        index: ir.Operand, index_type: ty.Type,
                        negate: bool) -> ir.Operand:
        """pointer ± index*sizeof(*pointer), computed in 64-bit arithmetic."""
        assert isinstance(pointer_type, ty.PointerType)
        index = self._widen_index(index, index_type)
        size = pointer_type.target.size
        scaled = index
        if size != 1:
            scaled = self._new_temp(ty.LONG)
            self.emit(ir.BinOp(scaled, "mul", index, ir.Const(size, ty.LONG),
                               ty.LONG))
        dest = self._new_temp(pointer_type)
        opcode = "sub" if negate else "add"
        self.emit(ir.BinOp(dest, opcode, pointer, scaled, ty.ULONG))
        return dest

    def _widen_index(self, index: ir.Operand, index_type: ty.Type) -> ir.Operand:
        if isinstance(index_type, ty.IntType) and index_type.size != 8:
            widened = self._new_temp(ty.LONG)
            self.emit(ir.CastOp(widened, index, index_type, ty.LONG))
            return widened
        return index

    def _lower_logical(self, expr: ast.Binary) -> ir.Operand:
        dest = self._new_temp(ty.INT)
        rhs_block = self.ir.new_block("sc_rhs")
        short_block = self.ir.new_block("sc_short")
        join_block = self.ir.new_block("sc_join")
        cond = self.lower_expr(expr.lhs)
        if expr.op == "&&":
            self._end_block(ir.Branch(cond, rhs_block, short_block))
            short_value = 0
        else:
            self._end_block(ir.Branch(cond, short_block, rhs_block))
            short_value = 1
        self._start_block(rhs_block)
        rhs = self.lower_expr(expr.rhs)
        rhs_type = expr.rhs.type.decay()  # type: ignore[union-attr]
        self.emit(ir.BinOp(dest, "ne", rhs, ir.Const(0, rhs_type), rhs_type))
        self._end_block(ir.Jump(join_block))
        self._start_block(short_block)
        self.emit(ir.Copy(dest, ir.Const(short_value, ty.INT)))
        self._end_block(ir.Jump(join_block))
        self._start_block(join_block)
        return dest

    def _lower_Conditional(self, expr: ast.Conditional) -> ir.Operand:
        assert expr.type is not None
        dest = self._new_temp(expr.type)
        then_block = self.ir.new_block("cond_then")
        else_block = self.ir.new_block("cond_else")
        join_block = self.ir.new_block("cond_join")
        cond = self.lower_expr(expr.cond)
        self._end_block(ir.Branch(cond, then_block, else_block))
        self._start_block(then_block)
        self.emit(ir.Copy(dest, self.lower_expr(expr.then)))
        self._end_block(ir.Jump(join_block))
        self._start_block(else_block)
        self.emit(ir.Copy(dest, self.lower_expr(expr.otherwise)))
        self._end_block(ir.Jump(join_block))
        self._start_block(join_block)
        return dest

    def _lower_Index(self, expr: ast.Index) -> ir.Operand:
        assert expr.type is not None
        if isinstance(expr.type, ty.ArrayType):
            addr, _ = self.lower_lvalue(expr)
            return addr
        addr, value_type = self.lower_lvalue(expr)
        dest = self._new_temp(value_type)
        self.emit(ir.Load(dest, addr, value_type))
        return dest

    def _lower_Assign(self, expr: ast.Assign) -> ir.Operand:
        target_type = expr.target.type
        assert target_type is not None
        if expr.op == "=":
            # Evaluate the target address before the value, C-style l-to-r.
            place = self._lvalue_place(expr.target)
            value = self.lower_expr(expr.value)
            self._store_place(place, value, target_type)
            return value
        binary_op = expr.op[:-1]
        place = self._lvalue_place(expr.target)
        current = self._load_place(place, target_type)
        rhs_type = expr.value.type.decay()  # type: ignore[union-attr]
        rhs = self.lower_expr(expr.value)
        if target_type.is_pointer and binary_op in ("+", "-"):
            result = self._pointer_offset(current, target_type, rhs, rhs_type,
                                          negate=(binary_op == "-"))
            self._store_place(place, result, target_type)
            return result
        # Compound assignment computes in the common type, then narrows back.
        if binary_op in ("<<", ">>"):
            compute_type = ty.promote(target_type)
        else:
            compute_type = ty.usual_arithmetic(target_type, rhs_type)
        widened = self._convert_operand(current, target_type, compute_type)
        rhs = self._convert_operand(rhs, rhs_type, compute_type)
        result = self._new_temp(compute_type)
        self.emit(ir.BinOp(result, ARITH_OPS[binary_op], widened, rhs,
                           compute_type))
        narrowed = self._convert_operand(result, compute_type, target_type)
        self._store_place(place, narrowed, target_type)
        return narrowed

    def _lower_IncDec(self, expr: ast.IncDec) -> ir.Operand:
        target_type = expr.operand.type
        assert target_type is not None
        place = self._lvalue_place(expr.operand)
        old = self._load_place(place, target_type)
        if target_type.is_pointer:
            assert isinstance(target_type, ty.PointerType)
            step = ir.Const(target_type.target.size, ty.LONG)
            new = self._new_temp(target_type)
            opcode = "add" if expr.op == "++" else "sub"
            self.emit(ir.BinOp(new, opcode, old, step, ty.ULONG))
        else:
            one = ir.Const(1, target_type)
            new = self._new_temp(target_type)
            opcode = "add" if expr.op == "++" else "sub"
            self.emit(ir.BinOp(new, opcode, old, one, target_type))
        self._store_place(place, new, target_type)
        return new if expr.is_prefix else old

    def _lower_Call(self, expr: ast.Call) -> ir.Operand:
        assert isinstance(expr.callee, ast.Ident)
        args = [self.lower_expr(arg) for arg in expr.args]
        assert expr.type is not None
        if expr.type.is_void:
            self.emit(ir.Call(None, expr.callee.name, args))
            return ir.Const(0, ty.INT)
        dest = self._new_temp(expr.type)
        self.emit(ir.Call(dest, expr.callee.name, args))
        return dest

    def _lower_Cast(self, expr: ast.Cast) -> ir.Operand:
        operand = self.lower_expr(expr.operand)
        from_type = expr.operand.type.decay()  # type: ignore[union-attr]
        to_type = expr.target_type
        if to_type.is_void:
            return ir.Const(0, ty.INT)
        return self._convert_operand(operand, from_type, to_type)

    def _lower_Comma(self, expr: ast.Comma) -> ir.Operand:
        self.lower_expr(expr.lhs)
        return self.lower_expr(expr.rhs)

    # ------------------------------------------------------------------
    # Lvalues

    def lower_lvalue(self, expr: ast.Expr) -> tuple[ir.Operand, ty.Type]:
        """Lower an lvalue (or array) to an address and its value type."""
        if isinstance(expr, ast.Ident):
            symbol = expr.symbol
            assert symbol is not None
            if symbol in self.registers:
                raise LoweringError(
                    f"address of register symbol {symbol.name} (sema should "
                    "have spilled it)"
                )
            value_type = symbol.type
            if isinstance(value_type, ty.ArrayType):
                value_type = value_type.element
            return ir.SymAddr(symbol), value_type
        if isinstance(expr, ast.Unary) and expr.op == "*":
            addr = self.lower_expr(expr.operand)
            pointer_type = expr.operand.type.decay()  # type: ignore[union-attr]
            assert isinstance(pointer_type, ty.PointerType)
            return addr, pointer_type.target
        if isinstance(expr, ast.Index):
            base = self.lower_expr(expr.base)
            base_type = expr.base.type.decay()  # type: ignore[union-attr]
            assert isinstance(base_type, ty.PointerType)
            index_type = expr.index.type.decay()  # type: ignore[union-attr]
            index = self.lower_expr(expr.index)
            addr = self._pointer_offset(base, base_type, index, index_type,
                                        negate=False)
            element = base_type.target
            if isinstance(element, ty.ArrayType):
                return addr, element.element
            return addr, element
        if isinstance(expr, ast.Cast):
            return self.lower_lvalue(expr.operand)
        raise LoweringError(f"not an lvalue: {expr!r}")

    def _lvalue_place(self, expr: ast.Expr):
        """A 'place' is either ('reg', temp) or ('mem', addr, value_type)."""
        if isinstance(expr, ast.Ident) and expr.symbol in self.registers:
            return ("reg", self.registers[expr.symbol])
        addr, value_type = self.lower_lvalue(expr)
        return ("mem", addr, value_type)

    def _load_place(self, place, value_type: ty.Type) -> ir.Operand:
        if place[0] == "reg":
            # Snapshot the register: callers (notably postfix ++/--) keep
            # using the loaded value after the register is overwritten.
            snapshot = self._new_temp(value_type)
            self.emit(ir.Copy(snapshot, place[1]))
            return snapshot
        dest = self._new_temp(value_type)
        self.emit(ir.Load(dest, place[1], value_type))
        return dest

    def _store_place(self, place, value: ir.Operand, value_type: ty.Type) -> None:
        if place[0] == "reg":
            self.emit(ir.Copy(place[1], value))
        else:
            self.emit(ir.Store(place[1], value, value_type))

    # ------------------------------------------------------------------

    def _convert_operand(self, operand: ir.Operand, from_type: ty.Type,
                         to_type: ty.Type) -> ir.Operand:
        from_type = from_type.decay()
        to_type = to_type.decay()
        if from_type == to_type:
            return operand
        if isinstance(operand, ir.Const) and isinstance(operand.value, (int, float)):
            folded = _convert_const(operand.value, to_type)
            if folded is not None:
                return ir.Const(folded, to_type)
        dest = self._new_temp(to_type)
        self.emit(ir.CastOp(dest, operand, from_type, to_type))
        return dest


def _convert_const(value: int | float, to_type: ty.Type) -> int | float | None:
    if isinstance(to_type, ty.IntType):
        return to_type.wrap(int(value))
    if isinstance(to_type, ty.FloatType):
        import struct
        result = float(value)
        if to_type.size == 4:
            result = struct.unpack("<f", struct.pack("<f", result))[0]
        return result
    if isinstance(to_type, ty.PointerType) and isinstance(value, int):
        return value
    return None


# ---------------------------------------------------------------------------
# CFG simplification


def simplify_cfg(func: ir.Function) -> None:
    """Thread trivial jumps, merge linear chains, drop unreachable blocks.

    Keeps the CFG small so hyperblock formation sees the real structure
    rather than lowering artifacts (empty join blocks and jump chains).
    """
    changed = True
    while changed:
        changed = False
        func.remove_unreachable()
        # Thread jumps through empty forwarding blocks.
        forward: dict[ir.BasicBlock, ir.BasicBlock] = {}
        for block in func.blocks:
            if not block.instrs and isinstance(block.terminator, ir.Jump):
                forward[block] = block.terminator.target

        def resolve(block: ir.BasicBlock) -> ir.BasicBlock:
            seen = set()
            while block in forward and block not in seen:
                seen.add(block)
                block = forward[block]
            return block

        for block in func.blocks:
            term = block.terminator
            if isinstance(term, ir.Jump):
                target = resolve(term.target)
                if target is not term.target:
                    term.target = target
                    changed = True
            elif isinstance(term, ir.Branch):
                if resolve(term.if_true) is not term.if_true:
                    term.if_true = resolve(term.if_true)
                    changed = True
                if resolve(term.if_false) is not term.if_false:
                    term.if_false = resolve(term.if_false)
                    changed = True
                if term.if_true is term.if_false:
                    block.terminator = ir.Jump(term.if_true)
                    changed = True
        if func.entry in forward:
            func.entry = resolve(func.entry)
            changed = True
        func.remove_unreachable()
        # Merge a block into its unique jump successor when that successor
        # has no other predecessors.
        preds = func.predecessors()
        for block in list(func.blocks):
            term = block.terminator
            if not isinstance(term, ir.Jump):
                continue
            succ = term.target
            if succ is block or succ is func.entry:
                continue
            if len(preds[succ]) != 1:
                continue
            block.instrs.extend(succ.instrs)
            block.terminator = succ.terminator
            func.blocks.remove(succ)
            changed = True
            break  # predecessor map is stale; restart the scan
