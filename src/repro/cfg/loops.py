"""Natural loop detection.

The lowering only produces reducible CFGs, so every cycle is a natural loop:
a back edge ``latch -> header`` where the header dominates the latch. The
loop body is found by walking predecessors backwards from the latch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg import ir
from repro.cfg.dominators import DominatorTree


@dataclass
class Loop:
    header: ir.BasicBlock
    latches: list[ir.BasicBlock] = field(default_factory=list)
    blocks: set[ir.BasicBlock] = field(default_factory=set)
    parent: "Loop | None" = None

    @property
    def depth(self) -> int:
        depth = 1
        loop = self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def __repr__(self) -> str:
        return f"Loop(header={self.header.name}, blocks={len(self.blocks)})"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class LoopInfo:
    """All natural loops of a function plus the block -> innermost-loop map."""

    def __init__(self, func: ir.Function, dom: DominatorTree | None = None):
        self.func = func
        self.dom = dom or DominatorTree(func)
        self.loops: list[Loop] = []
        self.innermost: dict[ir.BasicBlock, Loop | None] = {}
        self._find_loops()
        self._nest_loops()

    def _find_loops(self) -> None:
        preds = self.func.predecessors()
        by_header: dict[ir.BasicBlock, Loop] = {}
        for block in self.func.reachable_blocks():
            for succ in block.successors():
                if self.dom.dominates(succ, block):
                    loop = by_header.setdefault(succ, Loop(header=succ))
                    loop.latches.append(block)
                    self._collect_body(loop, block, preds)
        self.loops = list(by_header.values())

    def _collect_body(self, loop: Loop, latch: ir.BasicBlock, preds) -> None:
        loop.blocks.add(loop.header)
        stack = [latch]
        while stack:
            block = stack.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            stack.extend(preds[block])

    def _nest_loops(self) -> None:
        # Order loops by body size so the innermost (smallest) wins per block.
        for block in self.func.blocks:
            self.innermost[block] = None
        for loop in sorted(self.loops, key=lambda l: -len(l.blocks)):
            for block in loop.blocks:
                inner = self.innermost.get(block)
                if inner is not None and inner is not loop:
                    if loop.blocks >= inner.blocks:
                        continue
                self.innermost[block] = loop
        # Parent links: the smallest strictly-enclosing loop.
        for loop in self.loops:
            candidates = [
                other for other in self.loops
                if other is not loop and loop.blocks < other.blocks
                and loop.header in other.blocks
            ]
            if candidates:
                loop.parent = min(candidates, key=lambda l: len(l.blocks))

    def loop_of(self, block: ir.BasicBlock) -> Loop | None:
        return self.innermost.get(block)

    def is_header(self, block: ir.BasicBlock) -> bool:
        return any(loop.header is block for loop in self.loops)

    def back_edges(self) -> set[tuple[ir.BasicBlock, ir.BasicBlock]]:
        """All (latch, header) pairs."""
        edges: set[tuple[ir.BasicBlock, ir.BasicBlock]] = set()
        for loop in self.loops:
            for latch in loop.latches:
                edges.add((latch, loop.header))
        return edges
